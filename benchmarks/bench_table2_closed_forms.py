"""TAB2 — sufficient-budget equilibria, connected vs standalone.

Reproduces Table II: closed-form prices and requests for both edge
operation modes, cross-checked against the full numeric Stackelberg
solver. Key paper claims: the standalone ESP prices higher and profits
more; the CSP prices lower in the standalone regime's shadow.
"""

import pytest

from repro.analysis import table2_closed_forms


def test_table2_closed_forms(run_experiment):
    table = run_experiment(table2_closed_forms)
    rows = {r[0]: r[1:] for r in table.rows}
    conn_cf, conn_num, sa_cf, sa_num = range(4)

    # Closed forms track the numeric solver.
    assert rows["P_e*"][conn_cf] == pytest.approx(rows["P_e*"][conn_num],
                                                  rel=0.01)
    assert rows["P_c*"][sa_cf] == pytest.approx(rows["P_c*"][sa_num],
                                                rel=0.02)
    assert rows["e* per miner"][sa_cf] == pytest.approx(
        rows["e* per miner"][sa_num], rel=0.01)

    # Paper claims.
    assert rows["P_e*"][sa_cf] > rows["P_e*"][conn_cf]
    assert rows["V_e*"][sa_cf] > rows["V_e*"][conn_cf]
    assert rows["P_c*"][sa_cf] > 0
    # The standalone ESP sells exactly its capacity.
    assert rows["e* per miner"][sa_cf] * 5 == pytest.approx(80.0)
