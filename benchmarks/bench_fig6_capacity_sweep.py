"""FIG6 — standalone capacity effects and the CSP-price crossover.

Reproduces Fig. 6: (a) edge requests grow with the standalone ESP's
capacity until unconstrained demand is reached, while the connected mode
(transfer risk 1-h) discourages ESP purchases; (b) the "cross": under a
longer CSP delay the CSP's optimal price starts higher but ends lower as
``P_e`` grows.
"""

from repro.analysis import fig6_capacity_sweep, fig6_csp_price_crossover


def test_fig6_capacity_sweep(run_experiment):
    table = run_experiment(fig6_capacity_sweep,
                           e_max_values=[20, 40, 60, 80, 120, 160, 240,
                                         320, 400])
    assert table.assert_monotone("E_total", increasing=True)
    assert table.assert_monotone("nu_shadow_price", increasing=False)
    # The "cross" of Fig. 6: the rising standalone curve crosses the flat
    # connected-mode baseline as capacity grows.
    e_sa = table.column("E_total")
    e_conn = table.column("connected_E_total")
    below = [s < c for s, c in zip(e_sa, e_conn)]
    assert below[0] and not below[-1]
    # Saturation at unconstrained demand once capacity is slack.
    last = table.rows[-1]
    cols = {c: last[i] for i, c in enumerate(table.columns)}
    assert cols["nu_shadow_price"] == 0.0


def test_fig6_csp_price_crossover(run_experiment):
    table = run_experiment(fig6_csp_price_crossover)
    lo_delay = table.column("p_c_star_beta_0.1")
    hi_delay = table.column("p_c_star_beta_0.3")
    # The longer the communication delay, the lower the CSP's optimal
    # price — uniformly across the ESP-price sweep.
    assert all(h < l for h, l in zip(hi_delay, lo_delay))
    # Both reaction curves rise with P_e.
    assert table.assert_monotone("p_c_star_beta_0.1", increasing=True)
    assert table.assert_monotone("p_c_star_beta_0.3", increasing=True)
