"""ABL2 — satisfaction-weight models in the dynamic scenario.

Compares the paper's literal 0.5/0.5 mixture (Eq. 26), the h-consistent
constant, and the two mechanistic capacity-derived models. All must
converge; the capacity-derived models are the ones that reproduce the
paper's "uncertainty inflates ESP aggressiveness" conclusion.
"""

from repro.analysis import ablation_dynamic_weights


def test_ablation_dynamic_weights(run_experiment):
    table = run_experiment(ablation_dynamic_weights)
    rows = {r[0]: r for r in table.rows}
    cols = table.columns
    conv = cols.index("converged")
    e_star = cols.index("e_star")
    for name in ("capacity", "service", "paper", "h"):
        assert rows[name][conv]
        assert rows[name][e_star] > 0
    # Constant-weight models ignore capacity and demand more edge than the
    # hard-rejection model at the same prices.
    assert rows["h"][e_star] > rows["capacity"][e_star]
