"""Benchmark helpers.

Each paper artifact gets one benchmark that (a) times the full experiment
once (``rounds=1`` — these are minutes-scale reproductions, not
microbenchmarks), (b) prints the regenerated table so the benchmark output
IS the reproduced figure, and (c) asserts the paper's qualitative shape.
Micro-benchmarks of the hot solver paths live in
``bench_solver_performance.py`` and use normal repetition.
"""

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under the benchmark clock and print
    the resulting table."""

    def _run(fn, *args, **kwargs):
        table = benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                   rounds=1, iterations=1)
        print()
        print(table)
        return table

    return _run
