"""FIG5 — fork-rate (CSP delay) effects on the CSP and total SP welfare.

Reproduces Fig. 5(a-c): a larger β (longer delay) cuts the CSP's units and
revenue; total SP-side revenue stays pinned at the miners' aggregate
budget while budgets bind.
"""

import numpy as np

from repro.analysis import fig5_delay_sweep


def test_fig5_delay_sweep(run_experiment):
    table = run_experiment(fig5_delay_sweep)
    assert table.assert_monotone("C_total", increasing=False, strict=True)
    assert table.assert_monotone("csp_revenue", increasing=False,
                                 strict=True)
    # Fig. 5(c): total SP revenue ~ constant = aggregate budgets.
    totals = np.array(table.column("total_sp_revenue"))
    budgets = np.array(table.column("total_budget"))
    assert np.allclose(totals, budgets, rtol=1e-3)
