"""OBS1 — §VI-B text: SP welfare vs miner budgets and the mining reward.

Reproduces the paper's prose observations: total SP revenue is bounded by
(equals) the aggregate miner budgets while budgets bind, then saturates at
a level set by the mining reward.
"""

import numpy as np
import pytest

from repro.analysis import PaperSetup, welfare_observations


def test_welfare_vs_budgets(run_experiment):
    table = run_experiment(welfare_observations)
    rev = np.array(table.column("total_sp_revenue"))
    agg = np.array(table.column("aggregate_budget"))
    binding = table.column("budget_binding")
    # While binding: welfare == aggregate budgets exactly.
    for r, a, b in zip(rev, agg, binding):
        if b:
            assert r == pytest.approx(a, rel=1e-3)
    # Saturation thereafter.
    assert rev[-1] == pytest.approx(rev[-2], rel=1e-3)


def test_saturated_welfare_scales_with_reward(run_experiment):
    """§VI-B: once budgets are sufficient, SP welfare is set by R."""
    lo = welfare_observations(budgets=[5000.0],
                              setup=PaperSetup(reward=1000.0))
    hi = run_experiment(welfare_observations, budgets=[5000.0],
                        setup=PaperSetup(reward=2000.0))
    rev_lo = lo.column("total_sp_revenue")[0]
    rev_hi = hi.column("total_sp_revenue")[0]
    assert rev_hi == pytest.approx(2.0 * rev_lo, rel=1e-3)
