"""EXT1-EXT4 — extension experiments beyond the paper's evaluation.

These quantify properties the paper leaves implicit: equilibrium
efficiency (rent dissipation), learning-theoretic convergence (fictitious
play), the coupling to PoW difficulty retargeting, and differential
sensitivities of the follower equilibrium.
"""

import numpy as np
import pytest

from repro.analysis import (ext1_rent_dissipation, ext2_fictitious_play,
                            ext3_difficulty_retargeting, ext4_elasticities)


def test_ext1_rent_dissipation(run_experiment):
    table = run_experiment(ext1_rent_dissipation)
    # Accounting identity SW == miners + SPs.
    for r in table.column("accounting_residual"):
        assert abs(r) < 1e-6
    # All dissipation shares strictly inside (0, 1): the SE wastes part
    # of the reward but never all of it.
    for d in table.column("dissipation"):
        assert 0.0 < d < 1.0


def test_ext2_fictitious_play(run_experiment):
    table = run_experiment(ext2_fictitious_play)
    gaps = table.column("profile_gap")
    ni = table.column("ni_residual")
    assert gaps[-1] < 1e-3
    assert ni[-1] < 1e-6
    # Monotone improvement across checkpoints.
    assert all(b <= a * 1.01 for a, b in zip(gaps, gaps[1:]))


def test_ext3_difficulty_retargeting(run_experiment):
    table = run_experiment(ext3_difficulty_retargeting)
    intervals = table.column("mean_interval_s")
    # Each demand segment's tail returns near the 600 s target.
    for segment in (slice(3, 6), slice(9, 12), slice(15, 18)):
        assert np.mean(intervals[segment]) == pytest.approx(600.0,
                                                            rel=0.25)


def test_ext4_elasticities(run_experiment):
    table = run_experiment(ext4_elasticities)
    rows = {(r[0], r[1]): r[2:] for r in table.rows}
    # Exact values from the closed forms (binding regime at R=1500):
    # eps_E(P_e) = -P_e/(P_e-P_c) = -2, cross-price +1.
    assert rows[("connected", "P_e")][0] == pytest.approx(-2.0, abs=1e-2)
    assert rows[("connected", "P_c")][0] == pytest.approx(1.0, abs=1e-2)
    # Standalone with slack budgets: S* ∝ R and E* = E_max.
    assert rows[("standalone", "R")][2] == pytest.approx(1.0, abs=1e-2)
    assert rows[("standalone", "E_max")][0] == pytest.approx(1.0,
                                                             abs=1e-2)


def test_ext5_topology_calibration(run_experiment):
    from repro.analysis import ext5_topology_calibration
    table = run_experiment(ext5_topology_calibration)
    assert table.assert_monotone("beta", increasing=True, strict=True)
    assert table.assert_monotone("edge_share", increasing=True)
    # The calibration is physical: cloud propagation grows linearly-ish
    # with block size over WAN bandwidth.
    assert table.column("cloud_prop_s")[-1] > table.column(
        "cloud_prop_s")[0]


def test_ext6_edge_competition(run_experiment):
    from repro.analysis import ext6_edge_competition
    table = run_experiment(ext6_edge_competition)
    assert table.assert_monotone("scarce_price", increasing=False,
                                 strict=True)
    assert all(table.column("verified"))
    # Bertrand collapse with ample capacity and any competition.
    ample = table.column("ample_industry_profit")
    assert ample[0] > 0 and all(v == 0 for v in ample[1:])


def test_ext7_optimal_block_size(run_experiment):
    from repro.analysis import ext7_optimal_block_size
    table = run_experiment(ext7_optimal_block_size)
    rev = table.column("expected_revenue")
    best = rev.index(max(rev))
    # The optimum is interior: fees saturate, fork risk keeps rising.
    assert 0 < best < len(rev) - 1
    assert table.assert_monotone("beta", increasing=True, strict=True)


def test_ext8_risk_aversion(run_experiment):
    from repro.analysis import ext8_risk_aversion
    table = run_experiment(ext8_risk_aversion)
    assert table.assert_monotone("solo_demand", increasing=False,
                                 strict=True)
    assert table.assert_monotone("solo_active", increasing=False)
    # The pool sustains at least as much demand at every risk level.
    for row in table.rows:
        cols = {c: row[i] for i, c in enumerate(table.columns)}
        assert cols["pool_demand"] >= 0.95 * cols["solo_demand"]


def test_ext9_private_budgets(run_experiment):
    from repro.analysis import ext9_private_budgets
    table = run_experiment(ext9_private_budgets)
    cols = table.columns
    voi = cols.index("value_of_information")
    # Information about rivals is worth most to the unconstrained type.
    vois = [row[voi] for row in table.rows]
    assert vois[-1] == max(vois)
    assert vois[-1] > 1.0
