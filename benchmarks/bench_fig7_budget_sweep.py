"""FIG7 — miner-side budget effects (heterogeneous miners).

Reproduces Fig. 7: miner 1's budget sweeps 20→200 (others fixed at 200);
its requests to both SPs and its utility keep increasing, and its total
requests are similar across CSP delays.
"""

from repro.analysis import fig7_budget_sweep


def test_fig7_budget_sweep(run_experiment):
    table = run_experiment(fig7_budget_sweep)
    for beta in (0.1, 0.2):
        assert table.assert_monotone(f"e1_beta_{beta}", increasing=True)
        assert table.assert_monotone(f"c1_beta_{beta}", increasing=True)
        assert table.assert_monotone(f"U1_beta_{beta}", increasing=True)
    # Totals similar across delays (within 15 %) at every budget.
    lo = table.column("r1_total_beta_0.1")
    hi = table.column("r1_total_beta_0.2")
    for a, b in zip(lo, hi):
        assert abs(a - b) / max(a, b) < 0.15
