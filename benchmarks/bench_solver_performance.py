"""Micro-benchmarks of the hot solver paths (true pytest-benchmark runs).

These quantify the costs the experiment harness relies on: a single miner
best response, a full NEP solve, the GNEP decomposition, the closed-form
demand oracle, and a 50-block RL epoch.
"""

import pytest

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)
from repro.core.homogeneous_demand import homogeneous_demand
from repro.core.miner_best_response import (ResponseContext,
                                            solve_best_response)
from repro.learning import RLTrainer
from repro.population import GaussianPopulation

PRICES = Prices(p_e=2.0, p_c=1.0)


@pytest.fixture(scope="module")
def connected_params():
    return homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)


@pytest.fixture(scope="module")
def standalone_params():
    return homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                       mode=EdgeMode.STANDALONE, e_max=80.0)


def test_bench_miner_best_response(benchmark):
    ctx = ResponseContext(e_others=100.0, s_others=500.0)
    result = benchmark(solve_best_response, ctx, reward=1000.0, beta=0.2,
                       h=0.8, p_e=2.0, p_c=1.0, budget=200.0)
    assert result.e > 0


def test_bench_nep_solve(benchmark, connected_params):
    eq = benchmark(solve_connected_equilibrium, connected_params, PRICES)
    assert eq.converged


def test_bench_nep_solve_n50(benchmark):
    params = homogeneous(50, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
    eq = benchmark(solve_connected_equilibrium, params, PRICES)
    assert eq.converged


def test_bench_nep_solve_n256_vectorized(benchmark):
    params = homogeneous(256, 200.0, reward=1000.0, fork_rate=0.2,
                         h=0.8)
    eq = benchmark(solve_connected_equilibrium, params, PRICES,
                   kernel="vectorized")
    assert eq.converged


def test_bench_nep_solve_n256_scalar_capped(benchmark):
    # The scalar Gauss-Seidel contraction rate is 1 - O(1/n): a full
    # n=256 solve needs ~30*n sweeps (minutes).  Benchmark a capped
    # 150-sweep attempt instead; the timing is a lower bound on the
    # true scalar solve, so speedups derived from it are conservative.
    params = homogeneous(256, 200.0, reward=1000.0, fork_rate=0.2,
                         h=0.8)
    eq = benchmark.pedantic(solve_connected_equilibrium,
                            args=(params, PRICES),
                            kwargs={"max_iter": 150},
                            rounds=3, iterations=1)
    assert not eq.converged  # capped on purpose


def test_vectorized_speedup_n256():
    # ISSUE acceptance: >= 5x at n=256.  Compare one vectorized full
    # solve against one capped (150-sweep) scalar attempt; since the
    # cap undercounts the scalar cost, the measured ratio is a lower
    # bound on the true speedup.
    import time

    params = homogeneous(256, 200.0, reward=1000.0, fork_rate=0.2,
                         h=0.8)
    start = time.perf_counter()
    vec = solve_connected_equilibrium(params, PRICES,
                                      kernel="vectorized")
    t_vec = time.perf_counter() - start
    assert vec.converged
    start = time.perf_counter()
    solve_connected_equilibrium(params, PRICES, max_iter=150)
    t_scalar_capped = time.perf_counter() - start
    assert t_scalar_capped >= 5.0 * t_vec, (
        f"vectorized {t_vec:.3f}s vs capped scalar "
        f"{t_scalar_capped:.3f}s: below the 5x floor")


def test_bench_gnep_decomposition(benchmark, standalone_params):
    eq = benchmark(solve_standalone_equilibrium, standalone_params, PRICES)
    assert eq.total_edge == pytest.approx(80.0, rel=1e-4)


def test_bench_closed_form_demand(benchmark, connected_params):
    d = benchmark(homogeneous_demand, connected_params, PRICES)
    assert d.e > 0


def test_bench_rl_epoch(benchmark):
    trainer = RLTrainer(GaussianPopulation(5, 2), budget=200.0,
                        reward=1000.0, fork_rate=0.2, e_max=80.0, seed=0)
    result = benchmark.pedantic(trainer.run_epoch, args=(2.0, 1.0),
                                rounds=3, iterations=1)
    assert result.blocks == 50
