"""Micro-benchmarks of the hot solver paths (true pytest-benchmark runs).

These quantify the costs the experiment harness relies on: a single miner
best response, a full NEP solve, the GNEP decomposition, the closed-form
demand oracle, and a 50-block RL epoch.
"""

import pytest

from repro.core import (EdgeMode, Prices, homogeneous,
                        solve_connected_equilibrium,
                        solve_standalone_equilibrium)
from repro.core.homogeneous_demand import homogeneous_demand
from repro.core.miner_best_response import (ResponseContext,
                                            solve_best_response)
from repro.learning import RLTrainer
from repro.population import GaussianPopulation

PRICES = Prices(p_e=2.0, p_c=1.0)


@pytest.fixture(scope="module")
def connected_params():
    return homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)


@pytest.fixture(scope="module")
def standalone_params():
    return homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                       mode=EdgeMode.STANDALONE, e_max=80.0)


def test_bench_miner_best_response(benchmark):
    ctx = ResponseContext(e_others=100.0, s_others=500.0)
    result = benchmark(solve_best_response, ctx, reward=1000.0, beta=0.2,
                       h=0.8, p_e=2.0, p_c=1.0, budget=200.0)
    assert result.e > 0


def test_bench_nep_solve(benchmark, connected_params):
    eq = benchmark(solve_connected_equilibrium, connected_params, PRICES)
    assert eq.converged


def test_bench_nep_solve_n50(benchmark):
    params = homogeneous(50, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
    eq = benchmark(solve_connected_equilibrium, params, PRICES)
    assert eq.converged


def test_bench_gnep_decomposition(benchmark, standalone_params):
    eq = benchmark(solve_standalone_equilibrium, standalone_params, PRICES)
    assert eq.total_edge == pytest.approx(80.0, rel=1e-4)


def test_bench_closed_form_demand(benchmark, connected_params):
    d = benchmark(homogeneous_demand, connected_params, PRICES)
    assert d.e > 0


def test_bench_rl_epoch(benchmark):
    trainer = RLTrainer(GaussianPopulation(5, 2), budget=200.0,
                        reward=1000.0, fork_rate=0.2, e_max=80.0, seed=0)
    result = benchmark.pedantic(trainer.run_epoch, args=(2.0, 1.0),
                                rounds=3, iterations=1)
    assert result.blocks == 50
