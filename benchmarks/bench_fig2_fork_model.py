"""FIG2 — block collision PDF and split-rate CDF vs communication delay.

Reproduces Fig. 2: the exponential collision PDF, the (near-linear for
small delay) split-rate CDF, and — beyond the paper — a mechanistic
cross-check from the event-driven mining simulator.
"""

import numpy as np

from repro.analysis import fig2_fork_model


def test_fig2_fork_model(run_experiment):
    table = run_experiment(fig2_fork_model)
    # Shape: CDF increasing, PDF decreasing (exponential).
    assert table.assert_monotone("fork_rate_cdf", increasing=True,
                                 strict=True)
    assert table.assert_monotone("collision_pdf", increasing=False,
                                 strict=True)
    # Near-linearity at small delays (<= 2 s): relative error < 10 %.
    for row in table.rows:
        delay, _, cdf, lin = row[0], row[1], row[2], row[3]
        if delay <= 2.0:
            assert abs(lin - cdf) / cdf < 0.10
    # Mechanistic validation: simulator orphan rate tracks the
    # exponential-window prediction.
    sim = np.array(table.column("sim_cloud_orphan_rate"))
    pred = np.array(table.column("sim_predicted"))
    assert np.max(np.abs(sim - pred)) < 0.03
