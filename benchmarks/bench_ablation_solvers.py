"""ABL1 — GNEP solver ablation: shadow-price decomposition vs joint-VI
extragradient. Both must land on the same variational equilibrium; the
decomposition should be much faster."""

import pytest

from repro.analysis import ablation_gnep_solvers


def test_ablation_gnep_solvers(run_experiment):
    table = run_experiment(ablation_gnep_solvers)
    for row in table.rows:
        cols = {c: row[i] for i, c in enumerate(table.columns)}
        assert cols["E_decomp"] == pytest.approx(cols["E_extragrad"],
                                                 abs=1e-3)
        assert cols["max_profile_diff"] < 1e-3
        assert cols["nu_decomp"] == pytest.approx(cols["nu_extragrad"],
                                                  abs=1e-2)
        assert cols["t_decomp_s"] < cols["t_extragrad_s"]
