"""FIG3 — Gaussian miner-count toy example (μ=10, σ²=4).

Reproduces Fig. 3: the discretized pmf against sampled frequencies.
"""

import numpy as np

from repro.analysis import fig3_population


def test_fig3_population(run_experiment):
    table = run_experiment(fig3_population, samples=50000)
    pmf = np.array(table.column("pmf"))
    emp = np.array(table.column("empirical"))
    assert np.max(np.abs(pmf - emp)) < 0.01
    # Unimodal around the mean, as in the paper's histogram.
    ks = table.column("k")
    mode_k = ks[int(np.argmax(pmf))]
    assert mode_k == 10
