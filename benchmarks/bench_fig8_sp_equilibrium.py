"""FIG8 — SP equilibrium prices vs the ESP's unit operating cost.

Reproduces Fig. 8 with full Stackelberg solves per cost point, in both
edge operation modes: ``P_e`` rises with ``C_e`` and stays above ``P_c``;
the standalone mode lets the ESP price higher and profit more while the
CSP earns less.
"""

from repro.analysis import fig8_sp_equilibrium


def test_fig8_sp_equilibrium(run_experiment):
    table = run_experiment(fig8_sp_equilibrium)
    assert table.assert_monotone("P_e_connected", increasing=True)
    # Standalone P_e is the capacity-clearing price: flat in C_e while the
    # capacity binds, then rising once the ESP prices demand off its
    # capacity (tolerance covers the optimizer noise on the plateau).
    assert table.assert_monotone("P_e_standalone", increasing=True,
                                 tol=1e-2)
    for row in table.rows:
        cols = {c: row[i] for i, c in enumerate(table.columns)}
        assert cols["P_e_connected"] > cols["P_c_connected"]
        assert cols["P_e_standalone"] > cols["P_c_standalone"]
        # Standalone favors the ESP, hurts the CSP (paper §VI-B), in the
        # regime where its capacity actually binds (moderate costs).
        if cols["C_e"] <= 0.4:
            assert cols["P_e_standalone"] >= cols["P_e_connected"]
            assert cols["V_e_standalone"] >= 0.9 * cols["V_e_connected"]
