"""FIG9 — population uncertainty: analytic model vs the RL framework.

Reproduces Fig. 9(a) (fixed vs Gaussian miner count: uncertainty makes
miners more ESP-aggressive, expected demand can exceed E_max) and
Fig. 9(b) (a larger variance makes miners more ESP-prone). Lines are the
expected-utility fixed points; points are the converged RL strategies.
"""

from repro.analysis import fig9_population_uncertainty, fig9_variance_sweep


def test_fig9a_population_uncertainty(run_experiment):
    table = run_experiment(fig9_population_uncertainty, sigma=2.5)
    rows = {r[0]: r for r in table.rows}
    fixed = rows["fixed N"]
    dyn = rows["N~Gaussian"]
    cols = table.columns
    model_e = cols.index("model_e")
    rl_e = cols.index("rl_e")
    ne = cols.index("model_Ne")
    overload = cols.index("overload_prob")
    # Paper finding 1: uncertainty inflates ESP requests (model and RL).
    assert dyn[model_e] > fixed[model_e]
    assert dyn[rl_e] > fixed[rl_e]
    # Paper finding 2: expected aggregate edge demand exceeds capacity.
    assert dyn[ne] > dyn[cols.index("E_max")]
    assert dyn[overload] > 0.3
    # RL tracks the model within grid resolution.
    assert abs(dyn[rl_e] - dyn[model_e]) / dyn[model_e] < 0.35


def test_fig9b_variance_sweep(run_experiment):
    table = run_experiment(fig9_variance_sweep, sigmas=[0.5, 1.5, 2.5])
    model = table.column("model_e")
    # Larger variance -> more ESP-prone miners (per-miner request).
    assert model[-1] > model[0]
    # Expected aggregate edge demand also grows with the variance.
    assert table.assert_monotone("expected_Ne", increasing=True)
