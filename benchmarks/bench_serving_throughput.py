"""Serving-engine throughput: cold vs cached vs warm-started batches.

Serves the same >=64-scenario price grid three ways and reports a JSON
summary (hit rate, p50/p95 per-scenario latency, speedups):

* **cold** — serial engine, no cache reuse, no warm starts: the
  baseline a hand-rolled sweep loop would pay;
* **warm** — serial engine with nearest-neighbor warm starts chaining
  through the batch;
* **cached** — a populated engine with ``max_workers > 1`` re-serving
  the batch, i.e. the steady state of a long-lived serving process.

A fourth pass benchmarks **cross-scenario batching**: a cold grid of
explicit ``kernel="vectorized"`` scenarios served once per-scenario
(``batch_mode="none"``) and once through the multi-scenario kernel
(``batch_mode="multiscenario"``), asserting the batched pass is
bit-identical and at least 5x faster on the full 64-scenario grid
(threshold scaled down for shrunk smoke grids).

Runnable as a pytest module (the test asserts the acceptance bar: the
cached parallel pass is at least 3x faster than the serial cold path
and all three passes agree within solver tolerance) or as a script::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py

``REPRO_BENCH_SCENARIOS`` shrinks the grid for smoke runs (minimum 8).
"""

import json
import os
import statistics
import time

import numpy as np

from repro.core import Prices, homogeneous
from repro.serving import ScenarioSpec, ServingEngine

N_SCENARIOS = max(8, int(os.environ.get("REPRO_BENCH_SCENARIOS", "64")))
WORKERS = max(2, int(os.environ.get("REPRO_BENCH_WORKERS", "2")))


def make_grid(n=N_SCENARIOS, lo=0.4, hi=1.6):
    """An ``n``-point CSP price grid over the paper's default game."""
    params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8)
    step = (hi - lo) / (n - 1)
    return [ScenarioSpec(params, Prices(2.0, round(lo + k * step, 9)))
            for k in range(n)]


def _latency_stats(results):
    lat = sorted(1e3 * r.elapsed for r in results)
    return {
        "p50_ms": round(statistics.median(lat), 4),
        "p95_ms": round(lat[min(len(lat) - 1,
                                int(0.95 * len(lat)))], 4),
    }


def _timed_batch(engine, specs):
    start = time.perf_counter()
    results = engine.serve_batch(specs)
    return results, time.perf_counter() - start


def _profile(result):
    eq = getattr(result.value, "miners", result.value)
    return np.concatenate([eq.e, eq.c])


def run_serving_benchmark(n_scenarios=N_SCENARIOS, workers=WORKERS):
    """Run the three passes; returns the JSON-ready summary dict."""
    specs = make_grid(n_scenarios)

    cold_engine = ServingEngine(max_workers=0, warm_start=False,
                                use_guard=False)
    cold, cold_s = _timed_batch(cold_engine, specs)

    warm_engine = ServingEngine(max_workers=0, warm_start=True,
                                use_guard=False)
    warm, warm_s = _timed_batch(warm_engine, specs)

    cached_engine = ServingEngine(max_workers=workers, use_guard=False)
    cached_engine.serve_batch(specs)  # populate
    cached, cached_s = _timed_batch(cached_engine, specs)

    assert all(r.ok for r in cold + warm + cached)
    agreement = max(
        float(np.max(np.abs(_profile(a) - _profile(b))))
        for pass_results in (warm, cached)
        for a, b in zip(cold, pass_results))

    return {
        "scenarios": n_scenarios,
        "workers": workers,
        "cold": {"seconds": round(cold_s, 4), **_latency_stats(cold)},
        "warm": {"seconds": round(warm_s, 4), **_latency_stats(warm),
                 "warm_started": sum(r.warm_key is not None
                                     for r in warm)},
        "cached": {"seconds": round(cached_s, 4),
                   **_latency_stats(cached),
                   "hit_rate": cached_engine.stats.hit_rate},
        "speedup_warm_vs_cold": round(cold_s / warm_s, 2),
        "speedup_cached_vs_cold": round(cold_s / cached_s, 2),
        "max_abs_profile_difference": agreement,
    }


def make_vectorized_grid(n=N_SCENARIOS, miners=24):
    """A cold price grid pinned to the aggregate (vectorized) kernel.

    Heterogeneous budgets force the iterative follower path (no closed
    forms), so every miss is a real kernel solve and the grid is
    eligible for cross-scenario batching.
    """
    from repro.core import GameParameters

    params = GameParameters(
        reward=1500.0, fork_rate=0.2, h=0.8,
        budgets=[150.0 + 4.0 * i for i in range(miners)])
    return [ScenarioSpec(params, Prices(2.0, round(0.4 + 1.2 * k / (n - 1), 9)),
                         kernel="vectorized")
            for k in range(n)]


def run_multiscenario_benchmark(n_scenarios=N_SCENARIOS):
    """Cold per-scenario serial vs one cross-scenario batched solve."""
    specs = make_vectorized_grid(n_scenarios)

    serial_engine = ServingEngine(max_workers=0, warm_start=False,
                                  use_guard=False, batch_mode="none")
    serial, serial_s = _timed_batch(serial_engine, specs)

    batched_engine = ServingEngine(max_workers=0, warm_start=False,
                                   use_guard=False,
                                   batch_mode="multiscenario")
    batched, batched_s = _timed_batch(batched_engine, specs)

    assert all(r.ok for r in serial + batched)
    identical = all(
        np.array_equal(_profile(a), _profile(b))
        for a, b in zip(serial, batched))
    return {
        "scenarios": n_scenarios,
        "serial_seconds": round(serial_s, 4),
        "batched_seconds": round(batched_s, 4),
        "speedup_batched_vs_serial": round(serial_s / batched_s, 2),
        "batched_solver_counts": {
            solver: sum(r.solver == solver for r in batched)
            for solver in {r.solver for r in batched}},
        "bit_identical": identical,
    }


def test_bench_serving_throughput():
    summary = run_serving_benchmark()
    print()
    print(json.dumps(summary, indent=2))
    # Acceptance: warm cache + workers beats the serial cold path >=3x
    # on the same grid, without moving the equilibria.
    assert summary["speedup_cached_vs_cold"] >= 3.0
    assert summary["cached"]["hit_rate"] >= 0.5
    assert summary["max_abs_profile_difference"] < 1e-6
    assert summary["warm"]["warm_started"] >= summary["scenarios"] - 1


def test_bench_multiscenario_batching():
    summary = run_multiscenario_benchmark()
    print()
    print(json.dumps(summary, indent=2))
    # Acceptance: the cross-scenario batched cold sweep is >=5x faster
    # than per-scenario serial on the full 64-scenario grid (relaxed
    # for shrunk smoke grids, where fixed overheads dominate), every
    # scenario is answered by the batched kernel, and the results are
    # bit-identical to the per-scenario path.
    threshold = 5.0 if summary["scenarios"] >= 64 else 2.0
    assert summary["speedup_batched_vs_serial"] >= threshold
    assert summary["batched_solver_counts"] == {
        "nep-multiscenario": summary["scenarios"]}
    assert summary["bit_identical"] is True


if __name__ == "__main__":
    print(json.dumps(run_serving_benchmark(), indent=2))
    print(json.dumps(run_multiscenario_benchmark(), indent=2))
