"""Online-service load benchmark: 10^5-request seeded replay.

Drives a live :class:`~repro.service.EquilibriumService` through the
in-process client with the :mod:`repro.service.loadgen` harness — a
zipf-mixed, bursty, seeded request stream — and asserts the service's
acceptance bar:

* **zero failed requests** across the whole replay;
* **measured coalescing** — duplicate-key traffic joins in-flight
  solves, so total solves equal the number of unique keys;
* **no shedding** at the default (unconstrained-rate) settings, and
  shed-only-when-overloaded in the constrained pass;
* **latency SLO** — p50/p95/p99 from the ``service_request_seconds``
  telemetry histogram under generous bounds.

Runnable as a pytest module or a script::

    PYTHONPATH=src python benchmarks/bench_service_load.py

``REPRO_BENCH_REQUESTS`` scales the replay (default 10^5; minimum
1000); set it to 1000000 for the full million-request run.
"""

import asyncio
import json
import os

from repro.service import (EquilibriumService, InProcessClient, LoadPlan,
                           run_load)
from repro.telemetry import telemetry_session

N_REQUESTS = max(1000, int(os.environ.get("REPRO_BENCH_REQUESTS",
                                          "100000")))
UNIQUE = max(8, int(os.environ.get("REPRO_BENCH_UNIQUE", "256")))


def run_service_load(requests=N_REQUESTS, unique=UNIQUE, seed=7):
    """One full replay; returns the JSON-ready load report."""

    async def _run():
        service = EquilibriumService(max_inflight=8, max_queue=512)
        try:
            client = InProcessClient(service)
            plan = LoadPlan(requests=requests, unique=unique,
                            mix="zipf", zipf_a=1.2, burst=64, seed=seed,
                            slo_p50=0.5, slo_p95=2.0, slo_p99=10.0)
            report = await run_load(client, plan)
            return report.to_dict()
        finally:
            service.close()

    with telemetry_session():
        return asyncio.run(_run())


def run_overload(requests=4096, unique=64, seed=11):
    """A deliberately overloaded pass: tiny admission bounds, full
    bursts — shedding must engage (and only the queue-full kind, since
    no rate limit is configured)."""

    async def _run():
        service = EquilibriumService(max_inflight=1, max_queue=1)
        try:
            client = InProcessClient(service)
            plan = LoadPlan(requests=requests, unique=unique,
                            mix="uniform", burst=128, seed=seed)
            report = await run_load(client, plan)
            return report.to_dict()
        finally:
            service.close()

    with telemetry_session():
        return asyncio.run(_run())


def test_bench_service_load():
    summary = run_service_load()
    print()
    print(json.dumps(summary, indent=2))
    assert summary["requests"] == N_REQUESTS
    assert summary["errors"] == 0
    assert summary["shed_total"] == 0
    # Coalescing bar: duplicates never trigger duplicate solves.
    assert summary["solves"] == summary["unique_keys"]
    assert summary["unique_keys"] <= UNIQUE
    assert summary["slo_ok"], summary["slo"]
    assert not summary["failed"]


def test_bench_service_overload_sheds():
    summary = run_overload()
    print()
    print(json.dumps(summary, indent=2))
    assert summary["errors"] == 0
    assert summary["shed_total"] > 0
    assert set(summary["shed"]) == {"queue-full"}
    # Shed requests never consumed a solve; admitted traffic still
    # coalesces down to one solve per successfully answered key (a key
    # whose requests were all shed is allowed to stay unsolved).
    assert summary["solves"] == summary["unique_ok_keys"]


if __name__ == "__main__":
    print(json.dumps(run_service_load(), indent=2))
