"""FIG4 — miner-subgame NE vs a unilateral CSP price increase.

Reproduces Fig. 4 (connected mode, 5 homogeneous miners, B=200): raising
``P_c`` pushes miners toward the ESP, raising ESP units sold and revenue.
"""

from repro.analysis import fig4_price_sweep


def test_fig4_price_sweep(run_experiment):
    table = run_experiment(fig4_price_sweep)
    assert table.assert_monotone("e_per_miner", increasing=True,
                                 strict=True)
    assert table.assert_monotone("E_total", increasing=True, strict=True)
    assert table.assert_monotone("esp_revenue", increasing=True,
                                 strict=True)
    # Cloud requests shrink as the CSP overprices itself.
    assert table.assert_monotone("c_per_miner", increasing=False,
                                 strict=True)
