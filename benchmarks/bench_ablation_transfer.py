"""ABL3 — Eq. (9)'s marginal transfer semantics vs the physical joint
process. The marginal simulation must match Eq. (9) to sampling error; the
independent-transfer process overshoots it by a small Jensen gap."""

from repro.analysis import ablation_transfer_semantics


def test_ablation_transfer_semantics(run_experiment):
    table = run_experiment(ablation_transfer_semantics, rounds=200000)
    rows = {r[0]: r for r in table.rows}
    gap = table.columns.index("abs_gap")
    emp = table.columns.index("empirical_W0")
    model = table.columns.index("model_W0")
    assert rows["marginal"][gap] < 0.005
    assert rows["independent"][emp] > rows["independent"][model]
