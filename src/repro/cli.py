"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    repro-mining list                 # or: repro-mining --list
    repro-mining fig4
    repro-mining table2 --output table2.json
    repro-mining ext6 --output ext6.csv --quiet
    repro-mining all
    repro-mining serve --grid p_c:0.5:1.3:16 --workers 4 \\
        --cache-dir .repro_cache
    repro-mining metrics --grid p_c:0.8:1.2:8 --format prom
    repro-mining bench --quick --output BENCH_solvers.json
    repro-mining lint src tests --format json
    repro-mining control --check
    repro-mining control --run --scenario retry-storm --events ctrl.jsonl
    repro-mining chaos --with-control
    repro-mining fig4 --trace trace.json
    repro-mining serve-online --port 8765 --shards 8 --ttl 600 \\
        --max-inflight 8
    repro-mining loadgen --requests 100000 --seed 7 --output load.json
    repro-mining loadgen --port 8765 --requests 500  # vs a live server

Every subcommand accepts ``--trace PATH``: telemetry is enabled for the
run and the nested span tree is written to PATH as JSON.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path
from typing import (Any, Callable, Dict, FrozenSet, Iterator,
                    List, Optional, Sequence, Tuple)

from .analysis import (ablation_dynamic_weights, ablation_gnep_solvers,
                       ablation_transfer_semantics,
                       chaos_control_comparison, chaos_outage_sweep,
                       ext1_rent_dissipation, ext2_fictitious_play,
                       ext3_difficulty_retargeting, ext4_elasticities,
                       ext5_topology_calibration,
                       ext6_edge_competition, ext7_optimal_block_size,
                       ext8_risk_aversion, ext9_private_budgets,
                       fig2_fork_model,
                       fig3_population, fig4_price_sweep, fig5_delay_sweep,
                       fig6_capacity_sweep, fig6_csp_price_crossover,
                       fig7_budget_sweep, fig8_sp_equilibrium,
                       fig9_population_uncertainty, fig9_variance_sweep,
                       table2_closed_forms, welfare_observations)
from .analysis.reporting import save
from .exceptions import ReproError

EXPERIMENTS: Dict[str, Callable[..., Any]] = {
    "fig2": fig2_fork_model,
    "fig3": fig3_population,
    "fig4": fig4_price_sweep,
    "fig5": fig5_delay_sweep,
    "fig6": fig6_capacity_sweep,
    "fig6-cross": fig6_csp_price_crossover,
    "fig7": fig7_budget_sweep,
    "fig8": fig8_sp_equilibrium,
    "fig9a": fig9_population_uncertainty,
    "fig9b": fig9_variance_sweep,
    "table2": table2_closed_forms,
    "welfare": welfare_observations,
    "abl1": ablation_gnep_solvers,
    "abl2": ablation_dynamic_weights,
    "abl3": ablation_transfer_semantics,
    "chaos": chaos_outage_sweep,
    "chaos-control": chaos_control_comparison,
    "ext1": ext1_rent_dissipation,
    "ext2": ext2_fictitious_play,
    "ext3": ext3_difficulty_retargeting,
    "ext4": ext4_elasticities,
    "ext5": ext5_topology_calibration,
    "ext6": ext6_edge_competition,
    "ext7": ext7_optimal_block_size,
    "ext8": ext8_risk_aversion,
    "ext9": ext9_private_budgets,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining",
        description="Regenerate the evaluation artifacts of 'Hierarchical "
                    "Edge-Cloud Computing for Mobile Blockchain Mining "
                    "Game' (ICDCS 2019).")
    parser.add_argument(
        "experiment", nargs="?", default=None,
        help="experiment id (one of: %s), 'list', 'all', 'report' "
             "(markdown report of the fast experiments; use --ids to "
             "select), 'serve' (batch equilibrium serving; see "
             "'serve --help'), 'serve-online' (asyncio HTTP service; "
             "see 'serve-online --help'), 'loadgen' (seeded load "
             "replay; see 'loadgen --help'), or 'bench' "
             "(solver-kernel benchmark; see 'bench --help')"
             % ", ".join(sorted(EXPERIMENTS)))
    parser.add_argument(
        "--list", action="store_true", dest="list_experiments",
        help="print the available experiment ids and exit")
    parser.add_argument(
        "--ids", default=None, metavar="ID[,ID...]",
        help="comma-separated experiment ids for 'report'")
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="also write the result table to PATH (.json or .csv)")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the rendered table on stdout")
    parser.add_argument(
        "--with-control", action="store_true",
        help="for 'chaos': run the controlled-vs-baseline comparison "
             "(equivalent to the 'chaos-control' experiment id)")
    _add_trace_flag(parser)
    return parser


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable telemetry and write the nested span timing tree "
             "to PATH as JSON")


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining serve",
        description="Serve a grid of equilibrium scenarios through the "
                    "batch serving engine (cache + warm starts + "
                    "worker pool).")
    parser.add_argument(
        "--grid", default="p_c:0.5:1.3:16", metavar="KNOB:LO:HI:N",
        help="swept knob and range: one of p_c, p_e, beta, e_max, "
             "budget, edge_cost (default: %(default)s)")
    parser.add_argument(
        "--mode", choices=("connected", "standalone"),
        default="connected", help="edge operation mode")
    parser.add_argument(
        "--stackelberg", action="store_true",
        help="serve full leader-stage (Stackelberg) solves instead of "
             "miner-stage equilibria at fixed prices")
    parser.add_argument(
        "--miners", type=int, default=None, metavar="N",
        help="miner count of every grid point (default: the paper "
             "setup's n)")
    parser.add_argument(
        "--n-types", type=int, default=None, metavar="K",
        help="solve in compressed type space with at most K weighted "
             "budget types (certified approximation; default: exact)")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool width for cache misses (0/1 = serial)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="JSON persistence directory (e.g. .repro_cache); omit "
             "for a memory-only cache")
    parser.add_argument(
        "--no-warm-start", action="store_true",
        help="disable nearest-neighbor warm starts")
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="K",
        help="serve the batch K times (repeats exercise the cache)")
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="write the result table to PATH (.json or .csv)")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the rendered table on stdout")
    _add_trace_flag(parser)
    return parser


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining metrics",
        description="Run a serving grid with telemetry enabled and "
                    "export the collected counters, gauges, and "
                    "histograms.")
    parser.add_argument(
        "--grid", default="p_c:0.5:1.3:16", metavar="KNOB:LO:HI:N",
        help="swept knob and range, as in 'serve' (default: "
             "%(default)s)")
    parser.add_argument(
        "--mode", choices=("connected", "standalone"),
        default="connected", help="edge operation mode")
    parser.add_argument(
        "--stackelberg", action="store_true",
        help="serve full leader-stage solves instead of miner-stage "
             "equilibria")
    parser.add_argument(
        "--miners", type=int, default=None, metavar="N",
        help="miner count of every grid point (default: the paper "
             "setup's n)")
    parser.add_argument(
        "--n-types", type=int, default=None, metavar="K",
        help="solve in compressed type space with at most K weighted "
             "budget types (certified approximation; default: exact)")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="process-pool width for cache misses (0/1 = serial)")
    parser.add_argument(
        "--repeat", type=int, default=2, metavar="K",
        help="serve the batch K times (default 2: the second pass "
             "exercises the cache counters)")
    parser.add_argument(
        "--format", choices=("json", "prom", "both"), default="both",
        dest="fmt", help="exposition format printed to stdout")
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="also write the exposition to PATH (.json or .prom picked "
             "by --format; 'both' writes PATH.json and PATH.prom)")
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="stream structured telemetry events to PATH (JSON lines)")
    _add_trace_flag(parser)
    return parser


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining bench",
        description="Benchmark the solver kernels (scalar / running / "
                    "vectorized) across problem sizes, write the "
                    "perf-trajectory JSON, and flag regressions "
                    "against a baseline report.")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI-smoke preset: sizes (8, 64) and 3 repeats per case")
    parser.add_argument(
        "--sizes", default=None, metavar="N[,N...]",
        help="comma-separated miner counts (overrides the preset)")
    parser.add_argument(
        "--typespace-sizes", default=None, metavar="N[,N...]",
        help="comma-separated miner counts of the compressed "
             "type-space cases ('none' to skip; default: "
             "10000,100000,1000000 on full runs, none with --quick)")
    parser.add_argument(
        "--repeats", type=int, default=None, metavar="K",
        help="timed solves per case (default: 5, or 3 with --quick)")
    parser.add_argument(
        "--output", "-o", default="BENCH_solvers.json", metavar="PATH",
        help="where to write the report (default: %(default)s)")
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline report to compare against; defaults to the "
             "previous contents of --output when that file exists")
    parser.add_argument(
        "--tolerance", type=float, default=0.25, metavar="FRAC",
        help="relative regression tolerance on normalized medians "
             "(default: %(default)s)")
    parser.add_argument(
        "--no-compare", action="store_true",
        help="skip the regression comparison entirely")
    parser.add_argument(
        "--multiscenario", action="store_true",
        help="also time the cross-scenario batched kernel against a "
             "serial loop over the identical grid, and fail unless the "
             "batched path converges and beats per-scenario serial")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the result table on stdout")
    return parser


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``bench`` subcommand.

    Exit codes: 0 — benchmark ran (and no regressions), 1 — regressions
    beyond the tolerance, 2 — bad arguments or unreadable baseline.
    """
    from .kernels import (compare_reports, load_report, run_bench,
                          write_report)

    args = build_bench_parser().parse_args(argv)
    sizes = None
    if args.sizes is not None:
        try:
            sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
        except ValueError:
            print(f"bad --sizes {args.sizes!r}: expected integers",
                  file=sys.stderr)
            return 2
    typespace_sizes = None
    if args.typespace_sizes is not None:
        if args.typespace_sizes.strip().lower() == "none":
            typespace_sizes = []
        else:
            try:
                typespace_sizes = [
                    int(s) for s in args.typespace_sizes.split(",")
                    if s.strip()]
            except ValueError:
                print(f"bad --typespace-sizes "
                      f"{args.typespace_sizes!r}: expected integers "
                      f"or 'none'", file=sys.stderr)
                return 2
    baseline = None
    baseline_path = args.baseline
    if baseline_path is None and not args.no_compare and \
            Path(args.output).exists():
        baseline_path = args.output
    if baseline_path is not None and not args.no_compare:
        try:
            baseline = load_report(baseline_path)
        except (OSError, ValueError, KeyError, TypeError) as ex:
            print(f"could not load baseline {baseline_path!r}: {ex}",
                  file=sys.stderr)
            return 2

    try:
        report = run_bench(sizes=sizes, repeats=args.repeats,
                           quick=args.quick,
                           typespace_sizes=typespace_sizes,
                           multiscenario=args.multiscenario)
    except ValueError as ex:
        print(f"bench failed: {ex}", file=sys.stderr)
        return 2
    if not args.quiet:
        print("\n".join(report.summary_lines()))
        for note in report.notes:
            print(f"note: {note}", file=sys.stderr)
    write_report(report, args.output)
    print(f"wrote {args.output}", file=sys.stderr)
    if args.multiscenario:
        failures = []
        batched = [c for c in report.cases
                   if c.kernel == "multiscenario"]
        if not batched:
            failures.append("no multiscenario cases ran")
        for case in batched:
            if not case.converged:
                failures.append(f"{case.case_id}: batched grid did "
                                f"not fully converge")
            speedup = report.speedups.get(
                f"{case.solver}/n={case.n}/multiscenario")
            if speedup is None or speedup <= 1.0:
                failures.append(
                    f"{case.case_id}: batched median does not beat "
                    f"per-scenario serial "
                    f"(speedup {speedup if speedup else 0.0:.2f}x)")
        if failures:
            for line in failures:
                print(f"MULTISCENARIO {line}", file=sys.stderr)
            return 1
        print("multiscenario gate: batched path converged and beat "
              "per-scenario serial at every size", file=sys.stderr)
    if baseline is not None:
        regressions = compare_reports(report, baseline,
                                      tolerance=args.tolerance)
        if regressions:
            for line in regressions:
                print(f"REGRESSION {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {baseline_path} "
              f"(tolerance {args.tolerance:.0%})", file=sys.stderr)
    return 0


def _run_one(name: str, output: Optional[str], quiet: bool) -> int:
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; try 'repro-mining list'",
              file=sys.stderr)
        return 2
    try:
        table = runner()
    except ReproError as ex:
        # Covers the whole library hierarchy — ConvergenceError from a
        # diverging solver, TransientProviderError surfacing past the
        # retry budget, ConfigurationError, ... — one line, exit code 1.
        print(f"experiment {name!r} failed: "
              f"{type(ex).__name__}: {ex}", file=sys.stderr)
        return 1
    if not quiet:
        print(table)
    if output is not None:
        try:
            path = save(table, output)
        except ReproError as ex:
            print(f"could not write {output!r}: {ex}", file=sys.stderr)
            return 2
        print(f"wrote {path}", file=sys.stderr)
    return 0


def _parse_grid(grid: str) -> "Tuple[str, List[float]]":
    """Parse ``KNOB:LO:HI:N`` into ``(knob, [values...])``."""
    parts = grid.split(":")
    if len(parts) != 4:
        raise ValueError(
            f"grid must look like KNOB:LO:HI:N, got {grid!r}")
    knob, lo, hi, count = parts
    knob = knob.strip().lower()
    valid = ("p_c", "p_e", "beta", "e_max", "budget", "edge_cost")
    if knob not in valid:
        raise ValueError(f"unknown grid knob {knob!r}; pick one of "
                         f"{', '.join(valid)}")
    lo, hi, count = float(lo), float(hi), int(count)
    if count < 1:
        raise ValueError(f"grid needs at least 1 point, got {count}")
    if count == 1:
        return knob, [lo]
    step = (hi - lo) / (count - 1)
    return knob, [round(lo + step * k, 12) for k in range(count)]


def _serve_spec(knob: str, value: float, mode: str, stackelberg: bool,
                n_miners: Optional[int] = None,
                n_types: Optional[int] = None) -> "ScenarioSpec":
    """Build the ScenarioSpec for one grid point off the paper setup."""
    from .analysis.experiments import DEFAULTS as setup
    from .core import EdgeMode, Prices, homogeneous
    from .serving import ScenarioSpec

    fields = {
        "reward": setup.reward, "fork_rate": setup.beta,
        "edge_cost": setup.edge_cost, "cloud_cost": setup.cloud_cost,
    }
    budget = setup.budget
    p_e, p_c = setup.p_e, setup.p_c
    e_max = setup.e_max
    if knob == "beta":
        fields["fork_rate"] = value
    elif knob == "edge_cost":
        fields["edge_cost"] = value
    elif knob == "budget":
        budget = value
    elif knob == "p_e":
        p_e = value
    elif knob == "p_c":
        p_c = value
    elif knob == "e_max":
        e_max = value
    n = setup.n if n_miners is None else int(n_miners)
    if mode == "standalone":
        params = homogeneous(n, budget,
                             mode=EdgeMode.STANDALONE, e_max=e_max,
                             **fields)
    else:
        params = homogeneous(n, budget, h=setup.h, **fields)
    prices = None if stackelberg else Prices(p_e=p_e, p_c=p_c)
    return ScenarioSpec(params, prices, n_types=n_types)


@contextlib.contextmanager
def _maybe_trace(trace_path: Optional[str]) -> "Iterator[None]":
    """Enable telemetry for the block and dump the span tree after.

    A no-op (telemetry stays disabled, nothing written) when
    ``trace_path`` is None.
    """
    if trace_path is None:
        yield
        return
    from .telemetry import telemetry_session
    with telemetry_session() as tel:
        try:
            yield
        finally:
            Path(trace_path).write_text(
                json.dumps(tel.tracer.tree(), indent=1))
            print(f"wrote span tree to {trace_path}", file=sys.stderr)


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``serve`` subcommand."""
    from .analysis.series import ResultTable
    from .serving import ServingEngine

    args = build_serve_parser().parse_args(argv)
    try:
        knob, values = _parse_grid(args.grid)
    except ValueError as ex:
        print(f"bad --grid: {ex}", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("--repeat must be at least 1", file=sys.stderr)
        return 2
    try:
        specs = [_serve_spec(knob, v, args.mode, args.stackelberg,
                             n_miners=args.miners, n_types=args.n_types)
                 for v in values]
    except ReproError as ex:
        print(f"bad grid point: {type(ex).__name__}: {ex}",
              file=sys.stderr)
        return 2

    engine = ServingEngine(cache_dir=args.cache_dir,
                           max_workers=args.workers,
                           warm_start=not args.no_warm_start)
    start = time.perf_counter()
    with _maybe_trace(args.trace):
        for _ in range(args.repeat):
            results = engine.serve_batch(specs)
    elapsed = time.perf_counter() - start

    table = ResultTable(
        title=f"serve — {len(values)}-point {knob} grid "
              f"({args.mode}{', stackelberg' if args.stackelberg else ''}"
              f", x{args.repeat})",
        columns=[knob, "P_e", "P_c", "E_total", "C_total", "source",
                 "ms"],
        notes=f"workers={args.workers}, "
              f"warm_start={not args.no_warm_start}, "
              f"cache_dir={args.cache_dir or '-'}")
    errors = 0
    for value, res in zip(values, results):
        if not res.ok:
            errors += 1
            table.add_row(value, float("nan"), float("nan"),
                          float("nan"), float("nan"),
                          f"error: {res.error}", 1e3 * res.elapsed)
            continue
        eq = res.value
        miners = getattr(eq, "miners", eq)
        table.add_row(value, eq.prices.p_e, eq.prices.p_c,
                      miners.total_edge, miners.total_cloud,
                      res.source + ("+warm" if res.warm_key else ""),
                      1e3 * res.elapsed)
    if not args.quiet:
        print(table)
    stats = engine.stats.to_dict()
    print(f"served {args.repeat}x{len(values)} scenarios in "
          f"{elapsed:.3f}s; cache: " +
          ", ".join(f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                    for k, v in stats.items()), file=sys.stderr)
    if args.output is not None:
        try:
            path = save(table, args.output)
        except ReproError as ex:
            print(f"could not write {args.output!r}: {ex}",
                  file=sys.stderr)
            return 2
        print(f"wrote {path}", file=sys.stderr)
    return 1 if errors else 0


def metrics_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``metrics`` subcommand."""
    from .serving import ServingEngine
    from .telemetry import (render_json, render_prometheus,
                            telemetry_session)

    args = build_metrics_parser().parse_args(argv)
    try:
        knob, values = _parse_grid(args.grid)
    except ValueError as ex:
        print(f"bad --grid: {ex}", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("--repeat must be at least 1", file=sys.stderr)
        return 2
    try:
        specs = [_serve_spec(knob, v, args.mode, args.stackelberg,
                             n_miners=args.miners, n_types=args.n_types)
                 for v in values]
    except ReproError as ex:
        print(f"bad grid point: {type(ex).__name__}: {ex}",
              file=sys.stderr)
        return 2

    engine = ServingEngine(max_workers=args.workers)
    errors = 0
    with telemetry_session(event_path=args.events) as tel:
        for _ in range(args.repeat):
            results = engine.serve_batch(specs)
        errors = sum(1 for r in results if not r.ok)
        json_text = render_json(tel.metrics)
        prom_text = render_prometheus(tel.metrics)
        if args.trace is not None:
            Path(args.trace).write_text(
                json.dumps(tel.tracer.tree(), indent=1))
            print(f"wrote span tree to {args.trace}", file=sys.stderr)

    if args.fmt in ("json", "both"):
        print(json_text)
    if args.fmt in ("prom", "both"):
        print(prom_text, end="")
    if args.output is not None:
        base = Path(args.output)
        try:
            if args.fmt == "both":
                base.with_suffix(base.suffix + ".json").write_text(
                    json_text)
                base.with_suffix(base.suffix + ".prom").write_text(
                    prom_text)
            else:
                base.write_text(json_text if args.fmt == "json"
                                else prom_text)
        except OSError as ex:
            print(f"could not write {args.output!r}: {ex}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if errors else 0


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining lint",
        description="Domain-aware static analysis (RPR rules) over the "
                    "solver stack; exits 1 when findings remain.")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", dest="fmt",
                        choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run "
                             "(e.g. RPR001,RPR003)")
    parser.add_argument("--ignore", default=None, metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--statistics", action="store_true",
                        help="append per-rule counts to the text report")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--output", default=None,
                        help="also write the report to this path")
    parser.add_argument("--project", action="store_true",
                        help="run the whole-program analyzer "
                             "(cross-module call graph, RPR010-RPR013 "
                             "and transitive RPR009) instead of the "
                             "per-file rules")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="with --project: suppress findings "
                             "recorded in this baseline file; only "
                             "regressions gate")
    parser.add_argument("--write-baseline", action="store_true",
                        help="with --project: rewrite the --baseline "
                             "file from the current findings "
                             "(justifications of surviving entries "
                             "are preserved) and exit 0")
    return parser


def _parse_rule_ids(raw: str,
                    known: FrozenSet[str]) -> FrozenSet[str]:
    ids = frozenset(part.strip().upper()
                    for part in raw.split(",") if part.strip())
    unknown = ids - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    return ids


def _project_lint(args: argparse.Namespace,
                  select: Optional[FrozenSet[str]],
                  ignore: FrozenSet[str]) -> int:
    """The ``lint --project`` path: whole-program rules + baseline."""
    from .lint import (LintConfig, analyze_project, apply_baseline,
                       load_baseline, render_project_json,
                       render_project_text, write_baseline)

    config = LintConfig(select=select, ignore=ignore)
    findings = analyze_project(args.paths, config)
    if args.write_baseline:
        target = args.baseline or "lint-baseline.json"
        previous = load_baseline(target)
        written = write_baseline(findings, target, previous=previous)
        print(f"wrote {target}: {len(written)} entr"
              f"{'y' if len(written) == 1 else 'ies'}",
              file=sys.stderr)
        return 0
    baseline_result = None
    if args.baseline is not None:
        baseline_result = apply_baseline(
            findings, load_baseline(args.baseline))
        findings = baseline_result.new
    if args.fmt == "json":
        report = render_project_json(findings,
                                     baseline=baseline_result)
    else:
        report = render_project_text(findings,
                                     baseline=baseline_result,
                                     statistics=args.statistics)
    print(report)
    if args.output is not None:
        try:
            Path(args.output).write_text(report + "\n")
        except OSError as ex:
            print(f"could not write {args.output!r}: {ex}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if findings else 0


def lint_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``lint`` subcommand."""
    from .lint import (ALL_RULES, PROJECT_RULES, LintConfig, lint_paths,
                       project_rule_catalog, render_json, render_text,
                       rule_catalog)

    args = build_lint_parser().parse_args(argv)
    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['id']} {entry['name']} "
                  f"[{entry['severity']}]")
            print(f"    {entry['description']}")
        print()
        print("whole-program rules (--project):")
        for entry in project_rule_catalog():
            print(f"{entry['id']} {entry['name']} "
                  f"[{entry['severity']}]")
            print(f"    {entry['description']}")
        return 0
    known = frozenset(rule.id for rule in ALL_RULES)
    if args.project:
        known = frozenset(rule.id for rule in PROJECT_RULES)
    try:
        select = (_parse_rule_ids(args.select, known)
                  if args.select else None)
        ignore = (_parse_rule_ids(args.ignore, known)
                  if args.ignore else frozenset())
    except ValueError as ex:
        print(str(ex), file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    if args.project:
        return _project_lint(args, select, ignore)
    config = LintConfig(select=select, ignore=ignore)
    findings = lint_paths(args.paths, config)
    if args.fmt == "json":
        report = render_json(findings)
    else:
        report = render_text(findings, statistics=args.statistics)
    print(report)
    if args.output is not None:
        try:
            Path(args.output).write_text(report + "\n")
        except OSError as ex:
            print(f"could not write {args.output!r}: {ex}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if findings else 0


def build_control_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining control",
        description="The self-tuning control plane: run the golden "
                    "differential battery (--check), or induce a "
                    "seeded anomaly scenario and drive the detect -> "
                    "propose -> verify -> apply loop over it (--run).")
    parser.add_argument(
        "--check", action="store_true",
        help="run the golden/differential checks for --kernel and exit "
             "1 if any disagrees")
    parser.add_argument(
        "--run", action="store_true",
        help="induce --scenario and run the control loop for "
             "--windows windows; exit 1 unless at least one "
             "remediation completed the detected -> verified -> "
             "applied chain")
    parser.add_argument(
        "--dry-run", action="store_true",
        help="with --run: verify every proposal but never apply it "
             "(the exit criterion becomes >= 1 verified proposal)")
    parser.add_argument(
        "--scenario", choices=("cache-collapse", "retry-storm",
                               "solver-divergence", "warm-drift",
                               "slo-breach"),
        default="cache-collapse",
        help="seeded anomaly induction for --run "
             "(default: %(default)s)")
    parser.add_argument(
        "--windows", type=int, default=3, metavar="K",
        help="control windows (loop ticks) to run (default: "
             "%(default)s)")
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="seed of the induction (default: %(default)s)")
    parser.add_argument(
        "--kernel", choices=("scalar", "running", "vectorized", "auto"),
        default="vectorized",
        help="kernel the --check battery exercises (default: "
             "%(default)s; 'auto' picks running/vectorized by miner "
             "count)")
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="stream the control decision chain (and all other "
             "telemetry events) to PATH as JSON lines")
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="write the per-window control reports to PATH as JSON")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the per-window report lines on stdout")
    return parser


def control_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``control`` subcommand.

    Exit codes: 0 — checks passed / the loop completed a verified
    remediation chain, 1 — a check failed or no chain completed,
    2 — bad arguments.
    """
    from .control import (ControlLoop, ControlTarget, induce,
                          run_golden_checks)
    from .serving import ServingEngine
    from .telemetry import telemetry_session

    args = build_control_parser().parse_args(argv)
    if not args.check and not args.run:
        build_control_parser().print_usage(sys.stderr)
        print("one of --check or --run is required", file=sys.stderr)
        return 2
    if args.windows < 1:
        print("--windows must be at least 1", file=sys.stderr)
        return 2

    failed = 0
    if args.check:
        for res in run_golden_checks(args.kernel):
            status = "ok  " if res.ok else "FAIL"
            err = ("" if res.max_error != res.max_error
                   else f" max_error={res.max_error:.3g}")
            detail = f" ({res.detail})" if res.detail else ""
            print(f"{status} {res.name}{err}{detail}")
            failed += 0 if res.ok else 1
        if not args.run:
            return 1 if failed else 0

    with telemetry_session(event_path=args.events) as tel:
        scenario = induce(args.scenario, seed=args.seed)
        engine = scenario.engine or ServingEngine(warm_start=False,
                                                  use_guard=False)
        target = ControlTarget(engine=engine,
                               dispatcher=scenario.dispatcher)
        loop = ControlLoop(target, dry_run=args.dry_run)
        for _ in range(args.windows):
            report = loop.run_once()
            if not args.quiet:
                anomalies = ", ".join(a.kind for a in report.anomalies) \
                    or "none"
                decisions = ", ".join(
                    f"{d.remediation.kind}->{d.outcome}"
                    for d in report.decisions) or "none"
                print(f"window {report.tick}: anomalies [{anomalies}]; "
                      f"decisions [{decisions}]")
        summary = loop.summary()
        if args.events is not None:
            print(f"wrote {len(tel.events)} events to {args.events}",
                  file=sys.stderr)

    print(f"{summary['ticks']} window(s): {summary['anomalies']} "
          f"anomaly(ies), {summary['actions_applied']} applied, "
          f"outcomes {summary['outcomes'] or '{}'}", file=sys.stderr)
    if args.output is not None:
        try:
            Path(args.output).write_text(json.dumps(
                [r.to_dict() for r in loop.reports], indent=1))
        except OSError as ex:
            print(f"could not write {args.output!r}: {ex}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    outcomes = summary["outcomes"]
    chain_done = (outcomes.get("dry-run", 0) if args.dry_run
                  else outcomes.get("applied", 0))
    return 1 if (failed or not chain_done) else 0


def build_serve_online_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining serve-online",
        description="Run the online equilibrium service: an asyncio "
                    "HTTP server with request coalescing, admission "
                    "control, and a sharded TTL cache. Endpoints: "
                    "POST /solve, GET /healthz /stats /metrics, "
                    "POST /admin/invalidate /admin/admission.")
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=8765, metavar="N",
        help="bind port; 0 picks a free one (default: %(default)s)")
    parser.add_argument(
        "--shards", type=int, default=8, metavar="N",
        help="scenario-cache shard count (default: %(default)s)")
    parser.add_argument(
        "--maxsize", type=int, default=4096, metavar="N",
        help="total cache capacity across shards "
             "(default: %(default)s)")
    parser.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="cache entry time-to-live (default: no expiry)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help="per-shard JSON persistence root; omit for memory-only")
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="concurrent solves admitted (default: %(default)s)")
    parser.add_argument(
        "--max-queue", type=int, default=256, metavar="N",
        help="requests allowed to wait for a solve slot before "
             "queue-full shedding (default: %(default)s)")
    parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="token-bucket sustained request rate (default: "
             "unlimited)")
    parser.add_argument(
        "--burst", type=float, default=None, metavar="N",
        help="token-bucket burst capacity (default: --rate)")
    parser.add_argument(
        "--solver-threads", type=int, default=1, metavar="N",
        help="solver thread-pool width (default: %(default)s)")
    parser.add_argument(
        "--events", default=None, metavar="PATH",
        help="stream telemetry events to PATH as JSON lines")
    return parser


def serve_online_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``serve-online`` subcommand.

    Runs in the foreground until interrupted; exit code 0 on a clean
    shutdown (Ctrl-C), 2 on bad arguments.
    """
    import asyncio

    from .service import EquilibriumService, ServiceServer
    from .telemetry import telemetry_session

    args = build_serve_online_parser().parse_args(argv)
    try:
        service = EquilibriumService(
            n_shards=args.shards, maxsize=args.maxsize, ttl=args.ttl,
            cache_dir=args.cache_dir, max_inflight=args.max_inflight,
            max_queue=args.max_queue, rate=args.rate, burst=args.burst,
            solver_threads=args.solver_threads)
    except ReproError as ex:
        print(f"bad service configuration: {ex}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        server = ServiceServer(service, host=args.host, port=args.port)
        await server.start()
        print(f"serving on http://{args.host}:{server.port} "
              f"(shards={args.shards}, maxsize={args.maxsize}, "
              f"ttl={args.ttl or '-'}, "
              f"max_inflight={args.max_inflight})", file=sys.stderr)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    with telemetry_session(event_path=args.events):
        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("shutting down", file=sys.stderr)
        finally:
            service.close()
    return 0


def build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining loadgen",
        description="Replay a seeded scenario-request stream against "
                    "the online service and report latency quantiles "
                    "from the telemetry histograms. Without --port a "
                    "throwaway in-process service is driven; with "
                    "--port a live serve-online server is.")
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="server address for HTTP mode (default: %(default)s)")
    parser.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="server port; omit to run against an in-process service")
    parser.add_argument(
        "--requests", type=int, default=100_000, metavar="N",
        help="requests to replay (default: %(default)s)")
    parser.add_argument(
        "--unique", type=int, default=64, metavar="N",
        help="distinct scenarios in the pool (default: %(default)s)")
    parser.add_argument(
        "--mix", choices=("zipf", "uniform"), default="zipf",
        help="key-popularity mix (default: %(default)s)")
    parser.add_argument(
        "--zipf-a", type=float, default=1.2, metavar="A",
        help="zipf exponent (default: %(default)s)")
    parser.add_argument(
        "--burst", type=int, default=64, metavar="N",
        help="requests launched concurrently per wave "
             "(default: %(default)s)")
    parser.add_argument(
        "--seed", type=int, default=7, metavar="N",
        help="seed of the scenario pool and request stream "
             "(default: %(default)s)")
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="in-process mode: admitted solve concurrency "
             "(default: %(default)s)")
    parser.add_argument(
        "--slo-p50", type=float, default=None, metavar="SECONDS",
        help="p50 latency SLO bound; breaching it fails the run")
    parser.add_argument(
        "--slo-p95", type=float, default=None, metavar="SECONDS",
        help="p95 latency SLO bound")
    parser.add_argument(
        "--slo-p99", type=float, default=None, metavar="SECONDS",
        help="p99 latency SLO bound")
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="write the JSON load report to PATH")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the report on stdout")
    return parser


def loadgen_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``loadgen`` subcommand.

    Exit codes: 0 — replay completed with zero errors and every SLO
    met, 1 — errors or an SLO breach, 2 — bad arguments.
    """
    import asyncio

    from .service import (EquilibriumService, HttpClient,
                          InProcessClient, LoadPlan, run_load)
    from .telemetry import telemetry_session

    args = build_loadgen_parser().parse_args(argv)
    try:
        plan = LoadPlan(requests=args.requests, unique=args.unique,
                        mix=args.mix, zipf_a=args.zipf_a,
                        burst=args.burst, seed=args.seed,
                        slo_p50=args.slo_p50, slo_p95=args.slo_p95,
                        slo_p99=args.slo_p99)
    except ReproError as ex:
        print(f"bad load plan: {ex}", file=sys.stderr)
        return 2

    async def _http() -> "object":
        client = HttpClient(host=args.host, port=args.port)
        try:
            return await run_load(client, plan)
        finally:
            await client.close()

    async def _in_process() -> "object":
        service = EquilibriumService(max_inflight=args.max_inflight)
        try:
            return await run_load(InProcessClient(service), plan)
        finally:
            service.close()

    if args.port is not None:
        try:
            report = asyncio.run(_http())
        except (ConnectionError, OSError) as ex:
            print(f"could not reach {args.host}:{args.port}: {ex}",
                  file=sys.stderr)
            return 2
    else:
        with telemetry_session():
            report = asyncio.run(_in_process())

    summary = report.to_dict()
    if not args.quiet:
        print(json.dumps(summary, indent=2))
    print(f"{summary['requests']} requests in "
          f"{summary['elapsed_seconds']:.2f}s "
          f"({summary['rps']:.0f} rps): {summary['ok']} ok, "
          f"{summary['shed_total']} shed, {summary['errors']} errors; "
          f"{summary['coalesced']} coalesced, "
          f"{summary['solves']} solves / "
          f"{summary['unique_ok_keys']} served keys; "
          f"p50={summary['latency']['p50']:.4g}s "
          f"p95={summary['latency']['p95']:.4g}s "
          f"p99={summary['latency']['p99']:.4g}s", file=sys.stderr)
    if args.output is not None:
        try:
            Path(args.output).write_text(json.dumps(summary, indent=2))
        except OSError as ex:
            print(f"could not write {args.output!r}: {ex}",
                  file=sys.stderr)
            return 2
        print(f"wrote {args.output}", file=sys.stderr)
    return 1 if summary["failed"] else 0


def _print_experiments() -> None:
    for key in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[key].__doc__ or "").strip().splitlines()[0]
        print(f"{key:12s} {doc}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0].lower() == "serve":
        return serve_main(argv[1:])
    if argv and argv[0].lower() == "metrics":
        return metrics_main(argv[1:])
    if argv and argv[0].lower() == "bench":
        return bench_main(argv[1:])
    if argv and argv[0].lower() == "lint":
        return lint_main(argv[1:])
    if argv and argv[0].lower() == "control":
        return control_main(argv[1:])
    if argv and argv[0].lower() == "serve-online":
        return serve_online_main(argv[1:])
    if argv and argv[0].lower() == "loadgen":
        return loadgen_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list_experiments:
        _print_experiments()
        return 0
    if args.experiment is None:
        build_parser().print_usage(sys.stderr)
        print("an experiment id (or --list) is required",
              file=sys.stderr)
        return 2
    name = args.experiment.lower()
    if name == "chaos" and args.with_control:
        name = "chaos-control"
    if name == "list":
        _print_experiments()
        return 0
    if name == "report":
        from .analysis.report import build_report
        ids = args.ids.split(",") if args.ids else \
            ["fig3", "fig4", "fig5", "fig6", "fig7", "welfare"]
        try:
            with _maybe_trace(args.trace):
                document = build_report(EXPERIMENTS, path=args.output,
                                        ids=ids)
        except ReproError as ex:
            print(str(ex), file=sys.stderr)
            return 2
        if not args.quiet:
            print(document)
        if args.output:
            print(f"wrote {args.output}", file=sys.stderr)
        return 0
    if name == "all":
        if args.output is not None:
            print("--output is per-experiment; run ids individually",
                  file=sys.stderr)
            return 2
        with _maybe_trace(args.trace):
            for key in sorted(EXPERIMENTS):
                code = _run_one(key, None, args.quiet)
                if code != 0:
                    return code
                if not args.quiet:
                    print()
        return 0
    with _maybe_trace(args.trace):
        return _run_one(name, args.output, args.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
