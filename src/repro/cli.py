"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    repro-mining list
    repro-mining fig4
    repro-mining table2 --output table2.json
    repro-mining ext6 --output ext6.csv --quiet
    repro-mining all
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .analysis import (ablation_dynamic_weights, ablation_gnep_solvers,
                       ablation_transfer_semantics, chaos_outage_sweep,
                       ext1_rent_dissipation, ext2_fictitious_play,
                       ext3_difficulty_retargeting, ext4_elasticities,
                       ext5_topology_calibration,
                       ext6_edge_competition, ext7_optimal_block_size,
                       ext8_risk_aversion, ext9_private_budgets,
                       fig2_fork_model,
                       fig3_population, fig4_price_sweep, fig5_delay_sweep,
                       fig6_capacity_sweep, fig6_csp_price_crossover,
                       fig7_budget_sweep, fig8_sp_equilibrium,
                       fig9_population_uncertainty, fig9_variance_sweep,
                       table2_closed_forms, welfare_observations)
from .analysis.reporting import save
from .exceptions import ReproError

EXPERIMENTS: Dict[str, Callable] = {
    "fig2": fig2_fork_model,
    "fig3": fig3_population,
    "fig4": fig4_price_sweep,
    "fig5": fig5_delay_sweep,
    "fig6": fig6_capacity_sweep,
    "fig6-cross": fig6_csp_price_crossover,
    "fig7": fig7_budget_sweep,
    "fig8": fig8_sp_equilibrium,
    "fig9a": fig9_population_uncertainty,
    "fig9b": fig9_variance_sweep,
    "table2": table2_closed_forms,
    "welfare": welfare_observations,
    "abl1": ablation_gnep_solvers,
    "abl2": ablation_dynamic_weights,
    "abl3": ablation_transfer_semantics,
    "chaos": chaos_outage_sweep,
    "ext1": ext1_rent_dissipation,
    "ext2": ext2_fictitious_play,
    "ext3": ext3_difficulty_retargeting,
    "ext4": ext4_elasticities,
    "ext5": ext5_topology_calibration,
    "ext6": ext6_edge_competition,
    "ext7": ext7_optimal_block_size,
    "ext8": ext8_risk_aversion,
    "ext9": ext9_private_budgets,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mining",
        description="Regenerate the evaluation artifacts of 'Hierarchical "
                    "Edge-Cloud Computing for Mobile Blockchain Mining "
                    "Game' (ICDCS 2019).")
    parser.add_argument(
        "experiment",
        help="experiment id (one of: %s), 'list', 'all', or 'report' "
             "(markdown report of the fast experiments; use --ids to "
             "select)" % ", ".join(sorted(EXPERIMENTS)))
    parser.add_argument(
        "--ids", default=None, metavar="ID[,ID...]",
        help="comma-separated experiment ids for 'report'")
    parser.add_argument(
        "--output", "-o", default=None, metavar="PATH",
        help="also write the result table to PATH (.json or .csv)")
    parser.add_argument(
        "--quiet", "-q", action="store_true",
        help="suppress the rendered table on stdout")
    return parser


def _run_one(name: str, output, quiet: bool) -> int:
    runner = EXPERIMENTS.get(name)
    if runner is None:
        print(f"unknown experiment {name!r}; try 'repro-mining list'",
              file=sys.stderr)
        return 2
    try:
        table = runner()
    except ReproError as ex:
        # Covers the whole library hierarchy — ConvergenceError from a
        # diverging solver, TransientProviderError surfacing past the
        # retry budget, ConfigurationError, ... — one line, exit code 1.
        print(f"experiment {name!r} failed: "
              f"{type(ex).__name__}: {ex}", file=sys.stderr)
        return 1
    if not quiet:
        print(table)
    if output is not None:
        try:
            path = save(table, output)
        except ReproError as ex:
            print(f"could not write {output!r}: {ex}", file=sys.stderr)
            return 2
        print(f"wrote {path}", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    name = args.experiment.lower()
    if name == "list":
        for key in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[key].__doc__ or "").strip().splitlines()[0]
            print(f"{key:12s} {doc}")
        return 0
    if name == "report":
        from .analysis.report import build_report
        ids = args.ids.split(",") if args.ids else \
            ["fig3", "fig4", "fig5", "fig6", "fig7", "welfare"]
        try:
            document = build_report(EXPERIMENTS, path=args.output,
                                    ids=ids)
        except ReproError as ex:
            print(str(ex), file=sys.stderr)
            return 2
        if not args.quiet:
            print(document)
        if args.output:
            print(f"wrote {args.output}", file=sys.stderr)
        return 0
    if name == "all":
        if args.output is not None:
            print("--output is per-experiment; run ids individually",
                  file=sys.stderr)
            return 2
        for key in sorted(EXPERIMENTS):
            code = _run_one(key, None, args.quiet)
            if code != 0:
                return code
            if not args.quiet:
                print()
        return 0
    return _run_one(name, args.output, args.quiet)


if __name__ == "__main__":
    raise SystemExit(main())
