"""Physical network substrate: peer topologies, gossip propagation, and
the calibration that turns topology + block size into the game's
``D_avg``/``β`` parameters (Section III-A's "underlying factors")."""

from .gossip import (DelayCalibration, GossipModel, calibrate_game_delays,
                     propagation_time)
from .topology import (CSP_NODE, ESP_NODE, LAN, METRO, WAN, LinkProfile,
                       edge_cloud_topology, scale_free_topology,
                       small_world_topology)

__all__ = [
    "DelayCalibration",
    "GossipModel",
    "calibrate_game_delays",
    "propagation_time",
    "CSP_NODE",
    "ESP_NODE",
    "LAN",
    "METRO",
    "WAN",
    "LinkProfile",
    "edge_cloud_topology",
    "scale_free_topology",
    "small_world_topology",
]
