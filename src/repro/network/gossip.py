"""Gossip propagation over a weighted peer graph.

A block found at an origin vertex reaches each peer along the fastest
path, where traversing a link costs ``latency + block_size / bandwidth``
(store-and-forward relaying, the standard first-order model of Bitcoin
propagation). Propagation *time of a block* is the time until a target
fraction of miners has received it — consensus in the paper's sense.

:func:`propagation_time` computes these times exactly with Dijkstra;
:func:`calibrate_game_delays` converts a topology + block size into the
game's abstract parameters: the edge-vs-cloud delay gap ``D_avg`` and,
through a :class:`~repro.blockchain.forks.ForkModel`, the fork rate
``β`` — closing the loop from physical network to game parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import networkx as nx
import numpy as np

from ..blockchain.forks import ForkModel
from ..exceptions import ConfigurationError
from .topology import CSP_NODE, ESP_NODE

__all__ = ["GossipModel", "DelayCalibration", "propagation_time",
           "calibrate_game_delays"]


@dataclass(frozen=True)
class GossipModel:
    """Per-link cost model for block relay.

    Attributes:
        block_size: Block size in bytes.
        validation_delay: Per-hop verification cost in seconds (each
            relay validates before forwarding).
    """

    block_size: float = 1e6
    validation_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        if self.validation_delay < 0:
            raise ConfigurationError("validation_delay must be >= 0")

    def link_cost(self, latency: float, bandwidth: float) -> float:
        """Seconds to push one block across one link."""
        return latency + self.block_size / bandwidth + \
            self.validation_delay


def _arrival_times(graph: nx.Graph, origin: Any,
                   model: GossipModel) -> Dict[Any, float]:
    def weight(u: Any, v: Any, data: Dict[str, float]) -> float:
        return model.link_cost(data["latency"], data["bandwidth"])

    return nx.single_source_dijkstra_path_length(graph, origin,
                                                 weight=weight)


def propagation_time(graph: nx.Graph, origin: Any,
                     model: GossipModel,
                     coverage: float = 1.0) -> float:
    """Time for a block found at ``origin`` to reach ``coverage`` of the
    miner vertices.

    Args:
        graph: Topology with ``latency``/``bandwidth`` edge attributes.
        origin: Vertex where the block is found (e.g. :data:`ESP_NODE`).
        model: Relay cost model.
        coverage: Fraction of miners that must have received the block
            (1.0 = full propagation; Bitcoin studies often use 0.95).
    """
    if not 0.0 < coverage <= 1.0:
        raise ConfigurationError("coverage must be in (0, 1]")
    arrivals = _arrival_times(graph, origin, model)
    miner_times = sorted(t for node, t in arrivals.items()
                         if graph.nodes[node].get("role") == "miner")
    if not miner_times:
        raise ConfigurationError("topology contains no miner vertices")
    index = max(int(np.ceil(coverage * len(miner_times))) - 1, 0)
    return float(miner_times[index])


@dataclass(frozen=True)
class DelayCalibration:
    """Topology-derived game parameters.

    Attributes:
        edge_delay: Propagation time of an edge-solved block.
        cloud_delay: Propagation time of a cloud-solved block.
        d_avg: The exposure gap ``cloud_delay - edge_delay`` — the game's
            ``D_avg`` (the window during which a cloud block can lose to
            an edge block).
        fork_rate: ``β = ForkModel.fork_rate(d_avg)``.
    """

    edge_delay: float
    cloud_delay: float
    d_avg: float
    fork_rate: float


def calibrate_game_delays(graph: nx.Graph, model: GossipModel,
                          fork_model: Optional[ForkModel] = None,
                          coverage: float = 1.0) -> DelayCalibration:
    """Derive ``D_avg`` and ``β`` from a physical topology.

    The paper's abstraction sets the edge delay to ~0 and charges the
    cloud ``D_avg``; here both are computed from the graph, and the fork
    rate follows from the *gap* (an edge-solved conflicting block only
    needs to beat the cloud block's extra exposure).
    """
    edge_delay = propagation_time(graph, ESP_NODE, model,
                                  coverage=coverage)
    cloud_delay = propagation_time(graph, CSP_NODE, model,
                                   coverage=coverage)
    gap = max(cloud_delay - edge_delay, 0.0)
    fm = fork_model if fork_model is not None else ForkModel()
    return DelayCalibration(edge_delay=edge_delay,
                            cloud_delay=cloud_delay, d_avg=gap,
                            fork_rate=float(fm.fork_rate(gap)))
