"""P2P network topologies for block propagation.

Section III-A attributes propagation time to "underlying factors like
network topology and block size". This package makes those factors
explicit: build a peer graph, place the ESP and CSP on it, and compute
block propagation times by gossip over weighted links. The result
calibrates the abstract ``D_avg``/``β`` parameters of the game from
physical quantities.

Topology builders return :class:`networkx.Graph` objects whose edges
carry:

* ``latency`` — per-hop propagation latency (seconds);
* ``bandwidth`` — link bandwidth (bytes/second), which converts block
  size into per-hop transmission delay.

Node roles: miner nodes plus two special vertices, :data:`ESP_NODE`
(adjacent to every miner with LAN-grade links — "communication delay
between the ESP and miners is negligible") and :data:`CSP_NODE`
(reachable over WAN-grade links).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

import networkx as nx
import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ESP_NODE", "CSP_NODE", "LinkProfile", "edge_cloud_topology",
           "small_world_topology", "scale_free_topology"]

#: Vertex id of the edge service provider.
ESP_NODE = "esp"
#: Vertex id of the cloud service provider.
CSP_NODE = "csp"


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth profile of one link class.

    Attributes:
        latency: One-way propagation latency in seconds.
        bandwidth: Bytes per second.
        jitter: Relative standard deviation applied when sampling
            per-link values (0 = deterministic).
    """

    latency: float
    bandwidth: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError("latency must be non-negative")
        if self.bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")

    def sample(self, rng: np.random.Generator
               ) -> Tuple[float, float]:
        """Sample a (latency, bandwidth) pair with jitter applied."""
        if self.jitter == 0.0:  # repro: noqa[RPR002] — config sentinel
            return self.latency, self.bandwidth
        lat = self.latency * max(
            1.0 + self.jitter * rng.standard_normal(), 0.05)
        bw = self.bandwidth * max(
            1.0 + self.jitter * rng.standard_normal(), 0.05)
        return lat, bw


#: Default link classes, loosely calibrated to measured P2P networks.
LAN = LinkProfile(latency=0.002, bandwidth=125e6)        # 1 Gb/s, 2 ms
METRO = LinkProfile(latency=0.02, bandwidth=12.5e6)      # 100 Mb/s, 20 ms
WAN = LinkProfile(latency=0.12, bandwidth=3.125e6)       # 25 Mb/s, 120 ms

__all__ += ["LAN", "METRO", "WAN"]


def _attach_providers(graph: nx.Graph, miners: Iterable[int],
                      rng: np.random.Generator,
                      edge_profile: LinkProfile,
                      cloud_profile: LinkProfile) -> nx.Graph:
    """Add the ESP (LAN to every miner) and CSP (WAN) vertices."""
    graph.add_node(ESP_NODE, role="esp")
    graph.add_node(CSP_NODE, role="csp")
    for m in miners:
        lat, bw = edge_profile.sample(rng)
        graph.add_edge(ESP_NODE, m, latency=lat, bandwidth=bw)
        lat, bw = cloud_profile.sample(rng)
        graph.add_edge(CSP_NODE, m, latency=lat, bandwidth=bw)
    return graph


def edge_cloud_topology(n_miners: int, peer_degree: int = 3,
                        peer_profile: LinkProfile = METRO,
                        edge_profile: LinkProfile = LAN,
                        cloud_profile: LinkProfile = WAN,
                        seed: int = 0) -> nx.Graph:
    """The paper's Fig. 1 network: miners meshed over metro links, the
    ESP one LAN hop away, the CSP one WAN hop away.

    Args:
        n_miners: Number of miner vertices (``0..n-1``).
        peer_degree: Peer links per miner (regular random graph; clipped
            to feasibility).
        peer_profile / edge_profile / cloud_profile: Link classes.
        seed: RNG seed for jitter and wiring.
    """
    if n_miners < 2:
        raise ConfigurationError("need at least 2 miners")
    rng = np.random.default_rng(seed)
    degree = min(max(peer_degree, 1), n_miners - 1)
    if (degree * n_miners) % 2 == 1:
        degree = max(degree - 1, 1)
    graph = nx.random_regular_graph(degree, n_miners, seed=seed)
    for u, v in graph.edges:
        lat, bw = peer_profile.sample(rng)
        graph[u][v]["latency"] = lat
        graph[u][v]["bandwidth"] = bw
    for m in graph.nodes:
        graph.nodes[m]["role"] = "miner"
    return _attach_providers(graph, range(n_miners), rng, edge_profile,
                             cloud_profile)


def small_world_topology(n_miners: int, k: int = 4, rewire: float = 0.2,
                         peer_profile: LinkProfile = METRO,
                         edge_profile: LinkProfile = LAN,
                         cloud_profile: LinkProfile = WAN,
                         seed: int = 0) -> nx.Graph:
    """Watts–Strogatz miner mesh with providers attached."""
    if n_miners < 3:
        raise ConfigurationError("need at least 3 miners")
    rng = np.random.default_rng(seed)
    graph = nx.watts_strogatz_graph(n_miners, min(k, n_miners - 1),
                                    rewire, seed=seed)
    for u, v in graph.edges:
        lat, bw = peer_profile.sample(rng)
        graph[u][v]["latency"] = lat
        graph[u][v]["bandwidth"] = bw
    for m in graph.nodes:
        graph.nodes[m]["role"] = "miner"
    return _attach_providers(graph, range(n_miners), rng, edge_profile,
                             cloud_profile)


def scale_free_topology(n_miners: int, attachments: int = 2,
                        peer_profile: LinkProfile = METRO,
                        edge_profile: LinkProfile = LAN,
                        cloud_profile: LinkProfile = WAN,
                        seed: int = 0) -> nx.Graph:
    """Barabási–Albert miner mesh with providers attached."""
    if n_miners < 3:
        raise ConfigurationError("need at least 3 miners")
    rng = np.random.default_rng(seed)
    graph = nx.barabasi_albert_graph(n_miners,
                                     min(attachments, n_miners - 1),
                                     seed=seed)
    for u, v in graph.edges:
        lat, bw = peer_profile.sample(rng)
        graph[u][v]["latency"] = lat
        graph[u][v]["bandwidth"] = bw
    for m in graph.nodes:
        graph.nodes[m]["role"] = "miner"
    return _attach_providers(graph, range(n_miners), rng, edge_profile,
                             cloud_profile)
