"""Batched miner best responses: the vectorized form of Eqs. (12)-(15).

The scalar reference (:mod:`repro.core.miner_best_response`) solves one
miner's 2-variable concave program semi-analytically: closed-form
Eq. (14) candidates for a fixed budget multiplier ``λ``, corner
fallbacks via scalar root-finding, and ``brentq`` on the monotone
spending curve for the complementary-slackness ``λ`` (Eq. 15).  This
module evaluates the same KKT system for **all miners at once**:

* every closed-form branch (mixed interior, cloud-only, and the
  single-pool edge-only corners) is an array expression over the
  per-miner opponent aggregates ``(ē_i, s̄_i)`` and budgets ``B_i``;
* the two-pool edge-only marginal equation
  ``R(1-β) s̄/(s̄+e)² + Rγ ē/(ē+e)² = a_e`` — the only branch with no
  closed form — is solved by vectorized bisection on its strictly
  decreasing left-hand side;
* the budget multiplier is found by vectorized bracketing + bisection
  on the (strictly decreasing) batched spending curve, one ``λ_i`` per
  budget-bound miner, all advanced in lockstep.

Monotone bisection is run to ~1e-15 relative bracket width, so batched
and scalar responses agree far inside the ``1e-9`` contract pinned by
``tests/kernels/test_equivalence.py`` (they are not bit-identical:
``brentq`` and bisection stop on different ulps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

import numpy as np

from ..exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.params import GameParameters, Prices

__all__ = ["BatchedBestResponse", "batched_best_response",
           "jacobi_sweep", "gauss_seidel_sweep_running"]

#: Absolute spending slack below which the budget is considered free,
#: matching ``repro.core.miner_best_response._TOL``.
_TOL = 1e-13

#: Bisection sweeps for the implicit equations.  The bracket halves each
#: sweep, so 110 sweeps shrink any double-precision bracket to its ulp
#: floor; loops exit early once every lane's bracket is degenerate.
_BISECT_SWEEPS = 110


@dataclass(frozen=True)
class BatchedBestResponse:
    """All miners' best responses, solved simultaneously.

    Attributes:
        e: Optimal ESP requests ``e_i*`` (shape ``(n,)``).
        c: Optimal CSP requests ``c_i*`` (shape ``(n,)``).
        budget_multiplier: Per-miner KKT multipliers ``λ_i`` (0 where
            the budget is slack).
        spending: ``P_e e_i + P_c c_i`` at the optimum.
    """

    e: np.ndarray
    c: np.ndarray
    budget_multiplier: np.ndarray
    spending: np.ndarray


def _edge_only_batch(s_bar: np.ndarray, e_bar: np.ndarray,
                     a_e: np.ndarray, reward: float, beta: float,
                     gamma: float) -> np.ndarray:
    """Vectorized e-only maximizer: ``g_S(s̄+e) + g_E(ē+e) = a_e``.

    Mirrors the case split of the scalar ``_edge_only``/``_cloud_only``
    helpers: single-pool corners reduce to closed forms, and only the
    genuinely two-pool marginal needs (vectorized) bisection.
    """
    e = np.zeros_like(a_e)
    ks = reward * (1.0 - beta)
    ke = reward * gamma

    # Single-pool closed forms: with one pool empty the marginal is
    # k x̄/(x̄+e)^2 = a_e, i.e. e = sqrt(k x̄ / a_e) - x̄.
    s_only = (s_bar > 0.0) & ((e_bar <= 0.0) | (gamma <= 0.0))
    if np.any(s_only):
        e[s_only] = np.maximum(
            np.sqrt(ks * s_bar[s_only] / a_e[s_only]) - s_bar[s_only], 0.0)
    e_only = (s_bar <= 0.0) & (e_bar > 0.0) & (gamma > 0.0)
    if np.any(e_only):
        e[e_only] = np.maximum(
            np.sqrt(ke * e_bar[e_only] / a_e[e_only]) - e_bar[e_only], 0.0)

    both = (s_bar > 0.0) & (e_bar > 0.0) & (gamma > 0.0)
    if not np.any(both):
        return e
    sb = s_bar[both]
    eb = e_bar[both]
    ae = a_e[both]

    def marginal(x: np.ndarray) -> np.ndarray:
        ts = sb + x
        te = eb + x
        return ks * sb / (ts * ts) + ke * eb / (te * te)

    profitable = marginal(np.zeros_like(ae)) > ae
    if not np.any(profitable):
        return e
    sb, eb, ae = sb[profitable], eb[profitable], ae[profitable]

    def marg(x: np.ndarray) -> np.ndarray:
        ts = sb + x
        te = eb + x
        return ks * sb / (ts * ts) + ke * eb / (te * te)

    hi = np.ones_like(ae)
    for _ in range(64):
        grow = marg(hi) > ae
        if not np.any(grow):
            break
        hi[grow] *= 2.0
        if np.any(hi > 1e16):
            raise ConfigurationError(
                "edge-only best response diverged; check prices > 0")
    else:
        if np.any(marg(hi) > ae):
            raise ConfigurationError(
                "edge-only best response diverged; check prices > 0")
    lo = np.zeros_like(ae)
    for _ in range(_BISECT_SWEEPS):
        mid = 0.5 * (lo + hi)
        if np.all((mid <= lo) | (mid >= hi)):
            break
        high = marg(mid) > ae
        lo = np.where(high, mid, lo)
        hi = np.where(high, hi, mid)
    root = 0.5 * (lo + hi)
    sub = e[both]
    sub[profitable] = root
    e[both] = sub
    return e


def _candidate_batch(s_bar: np.ndarray, e_bar: np.ndarray,
                     lam: np.ndarray, reward: float, beta: float,
                     gamma: float, q_e: float, q_c: float,
                     p_e: float, p_c: float
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized stationary point for fixed multipliers ``λ_i``.

    Branch-for-branch mirror of the scalar ``_candidate`` (Eq. 14 and
    its corner fallbacks), evaluated through boolean masks so every
    miner lands in exactly the branch the scalar code would take.
    """
    a_e = q_e + lam * p_e
    a_c = q_c + lam * p_c
    delta = a_e - a_c
    e = np.zeros_like(s_bar)
    c = np.zeros_like(s_bar)
    ks = reward * (1.0 - beta)
    pool = (gamma > 0.0) & (e_bar > 0.0)

    deg = s_bar <= 0.0                  # opponents buy nothing
    edge_deg = deg & pool               # ... but the edge pool pays
    corner = ~deg & (~pool | (delta <= 0.0))
    edge_corner = corner & ((pool & (delta <= 0.0)) | (~pool & (a_e < a_c)))
    cloud_corner = corner & ~edge_corner
    mixed = ~deg & ~corner              # interior Eq. (14) attempt

    if np.any(mixed):
        sb = s_bar[mixed]
        eb = e_bar[mixed]
        s_target = np.sqrt(ks * sb / a_c[mixed])
        e_target = np.sqrt(reward * gamma * eb / delta[mixed])
        e_m = e_target - eb
        c_m = (s_target - sb) - e_m
        drop_to_cloud = e_m < 0.0
        drop_to_edge = ~drop_to_cloud & (c_m < 0.0)
        interior = ~drop_to_cloud & ~drop_to_edge
        sub_idx = np.flatnonzero(mixed)
        e[sub_idx[interior]] = e_m[interior]
        c[sub_idx[interior]] = c_m[interior]
        cloud_corner = cloud_corner.copy()
        cloud_corner[sub_idx[drop_to_cloud]] = True
        edge_corner = edge_corner.copy()
        edge_corner[sub_idx[drop_to_edge]] = True

    edge_mask = edge_deg | edge_corner
    if np.any(edge_mask):
        e[edge_mask] = _edge_only_batch(
            s_bar[edge_mask], e_bar[edge_mask], a_e[edge_mask],
            reward, beta, gamma)
    if np.any(cloud_corner):
        sb = s_bar[cloud_corner]
        c[cloud_corner] = np.maximum(
            np.sqrt(ks * sb / a_c[cloud_corner]) - sb, 0.0)
    return e, c


def batched_best_response(e_others: np.ndarray, s_others: np.ndarray, *,
                          reward: float, beta: float, h: float,
                          p_e: float, p_c: float, budgets: np.ndarray,
                          nu: float = 0.0) -> BatchedBestResponse:
    """Exact best responses of all ``n`` miners, vectorized.

    Args:
        e_others: Opponent edge aggregates ``ē_i`` (shape ``(n,)``).
        s_others: Opponent total aggregates ``s̄_i`` (shape ``(n,)``).
        reward: Mining reward ``R``.
        beta: Fork rate ``β`` in ``[0, 1)``.
        h: Edge satisfaction probability (``γ = β h``).
        p_e: ESP unit price (budget and, plus ``nu``, objective).
        p_c: CSP unit price.
        budgets: Per-miner budgets ``B_i`` (shape ``(n,)``).
        nu: Shared-capacity multiplier of the GNEP decomposition.

    Returns:
        :class:`BatchedBestResponse` with all per-miner optima.
    """
    if p_e <= 0 or p_c <= 0:
        raise ConfigurationError("prices must be positive")
    if nu < 0:
        raise ConfigurationError("capacity multiplier nu must be >= 0")
    if not 0.0 <= beta < 1.0:
        raise ConfigurationError("beta must be in [0, 1)")
    e_bar = np.asarray(e_others, dtype=float)
    s_bar = np.asarray(s_others, dtype=float)
    budgets = np.asarray(budgets, dtype=float)
    if e_bar.shape != s_bar.shape or e_bar.shape != budgets.shape:
        raise ConfigurationError(
            "e_others, s_others, and budgets must share one shape")
    if np.any(budgets <= 0):
        raise ConfigurationError("budget must be positive")
    if np.any(e_bar < 0) or np.any(s_bar < 0):
        raise ConfigurationError("opponent aggregates must be >= 0")
    gamma = beta * h
    q_e = p_e + nu
    q_c = p_c

    lam = np.zeros_like(budgets)
    e, c = _candidate_batch(s_bar, e_bar, lam, reward, beta, gamma,
                            q_e, q_c, p_e, p_c)
    cost = p_e * e + p_c * c
    over = cost > budgets + _TOL
    if np.any(over):
        sb = s_bar[over]
        eb = e_bar[over]
        bb = budgets[over]

        def spend(lams: np.ndarray) -> np.ndarray:
            es, cs = _candidate_batch(sb, eb, lams, reward, beta, gamma,
                                      q_e, q_c, p_e, p_c)
            return p_e * es + p_c * cs

        # Bracket each λ_i (Eq. 15: spending is strictly decreasing).
        lo = np.zeros_like(bb)
        hi = np.ones_like(bb)
        for _ in range(70):
            grow = spend(hi) > bb
            if not np.any(grow):
                break
            lo = np.where(grow, hi, lo)
            hi = np.where(grow, 2.0 * hi, hi)
            if np.any(hi > 1e18):
                raise ConfigurationError(
                    "budget multiplier bracket diverged; model is "
                    "degenerate")
        else:
            if np.any(spend(hi) > bb):
                raise ConfigurationError(
                    "budget multiplier bracket diverged; model is "
                    "degenerate")
        for _ in range(_BISECT_SWEEPS):
            mid = 0.5 * (lo + hi)
            if np.all((mid <= lo) | (mid >= hi)):
                break
            high = spend(mid) > bb
            lo = np.where(high, mid, lo)
            hi = np.where(high, hi, mid)
        lam_b = 0.5 * (lo + hi)
        eb_opt, cb_opt = _candidate_batch(sb, eb, lam_b, reward, beta,
                                          gamma, q_e, q_c, p_e, p_c)
        # Re-scale exactly onto the budget plane (same slack rule as the
        # scalar kernel): only when the correction is within the root-
        # finder's own tolerance band.
        cost_b = p_e * eb_opt + p_c * cb_opt
        safe = np.where(cost_b > 0.0, cost_b, 1.0)
        scale = np.where(
            (cost_b > 0.0) & (np.abs(bb / safe - 1.0) < 1e-6),
            bb / safe, 1.0)
        eb_opt *= scale
        cb_opt *= scale
        # scale is exactly 1.0 where untouched. # repro: noqa[RPR002]
        cost_b = np.where(scale != 1.0, bb, cost_b)  # repro: noqa[RPR002]
        e[over] = eb_opt
        c[over] = cb_opt
        cost[over] = cost_b
        lam[over] = lam_b
    return BatchedBestResponse(e=e, c=c, budget_multiplier=lam,
                               spending=cost)


def jacobi_sweep(e: np.ndarray, c: np.ndarray, params: "GameParameters",
                 prices: "Prices",
                 nu: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
    """One simultaneous best-response sweep over all miners.

    The Jacobi counterpart of
    :func:`repro.core.nep.best_response_profile`: every miner responds
    to the *frozen* profile, so the opponent aggregates are plain array
    expressions and one batched solve replaces ``n`` scalar solves.

    Args:
        e, c: Current profile (not modified).
        params: :class:`~repro.core.params.GameParameters`.
        prices: :class:`~repro.core.params.Prices`.
        nu: Shared-capacity multiplier (GNEP decomposition).
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E = float(np.sum(e))
    S = E + float(np.sum(c))
    e_others = np.maximum(E - e, 0.0)
    s_others = np.maximum(S - e - c, 0.0)
    # Guard ulp-level inversions: ``s̄_i >= ē_i`` holds exactly in real
    # arithmetic but the two subtractions can disagree in the last bit.
    s_others = np.maximum(s_others, e_others)
    br = batched_best_response(
        e_others, s_others, reward=params.reward, beta=params.fork_rate,
        h=params.effective_h, p_e=prices.p_e, p_c=prices.p_c,
        budgets=params.budget_array, nu=nu)
    return br.e, br.c


def gauss_seidel_sweep_running(e: np.ndarray, c: np.ndarray,
                               params: "GameParameters", prices: "Prices",
                               nu: float = 0.0
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Asynchronous sweep with running aggregates: ``O(n)`` per sweep.

    The paper's Gauss–Seidel scheme updates miners in place, so each
    miner's opponent aggregates depend on the miners already updated
    this sweep.  The reference path re-sums the profile for every miner
    (``O(n^2)`` per sweep); this variant maintains running totals
    ``E``, ``S`` and applies single-element deltas — the results agree
    with the reference to within 1 ulp per aggregate but are **not**
    bit-identical (incremental and re-summed floating-point addition
    round differently; measured in ``docs/PERFORMANCE.md``), which is
    why the reference arithmetic remains the golden-pinned default.
    """
    from ..core.miner_best_response import (ResponseContext,
                                            solve_best_response)

    e_new = np.array(e, dtype=float, copy=True)
    c_new = np.array(c, dtype=float, copy=True)
    budgets = params.budget_array
    h = params.effective_h
    E = float(np.sum(e_new))
    C = float(np.sum(c_new))
    for i in range(params.n):
        old_e = float(e_new[i])
        old_c = float(c_new[i])
        e_others = E - old_e
        s_others = e_others + C - old_c
        ctx = ResponseContext(e_others=max(e_others, 0.0),
                              s_others=max(s_others, 0.0))
        br = solve_best_response(
            ctx, reward=params.reward, beta=params.fork_rate, h=h,
            p_e=prices.p_e, p_c=prices.p_c, budget=float(budgets[i]),
            nu=nu)
        e_new[i] = br.e
        c_new[i] = br.c
        E += br.e - old_e
        C += br.c - old_c
    return e_new, c_new
