"""Cross-scenario batched aggregate kernel for the connected-mode NEP.

The paper's headline figures are *sweeps*: the same miner game solved at
dozens of nearby ``(price, fork-rate, budget)`` points.  The aggregate
kernel of :mod:`repro.kernels.aggregate` already makes one solve
``O(n)`` per consistency evaluation, but a sweep still pays the full
root-finding iteration count ``B`` times over — and at small ``n`` the
per-evaluation work is far too little to amortize Python dispatch, which
is exactly why ``BENCH_solvers.json`` shows the vectorized kernel losing
to the scalar sweeps at ``n = 8``.

This module batches the *scenario* axis instead.  ``B`` independent
games are stacked into ``(B, n)`` arrays (types become ``(B, k)`` via
the same ``weights`` hook as the type-space kernel) and every stage of
the aggregate solve runs across all scenarios at once:

* the two consistency roots are found by a **vectorized masked ITP
  iteration** (interpolate–truncate–project: superlinear like Brent on
  the well-behaved excess curves, with bisection's worst-case guarantee)
  whose active set shrinks as scenarios converge;
* the per-miner budget multipliers of *all* scenarios' over-budget lanes
  are resolved in one flattened bracket-and-bisect pass;
* every bracketing, bisection, and ITP update is **per-lane frozen**: a
  converged lane's state is never rewritten by the extra iterations its
  batch neighbors need.  Batch composition therefore cannot perturb a
  scenario's result — solving ``[A, B, C]`` together is bit-identical
  to solving each alone, and :mod:`repro.kernels.aggregate` delegates
  its single-scenario path to this kernel with ``B = 1`` so
  ``kernel="vectorized"`` *is* the batch-of-one special case.

Per-scenario failure stays per-scenario: a diverging budget-multiplier
bracket marks that scenario ``failed`` instead of aborting the batch
(the ``B = 1`` wrapper re-raises it as the usual
:class:`~repro.exceptions.ConvergenceError`).

:func:`solve_connected_multiscenario` is the solver-level entry point:
it batches the aggregate solves, then certifies each scenario with the
same exact Jacobi best-response sweep as
:func:`repro.core.nep.solve_connected_equilibrium`'s vectorized path,
returning ``None`` for any scenario whose verification residual misses
tolerance (callers fall back to the per-scenario solver, so batching
never degrades accuracy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BatchAggregateSolution", "MULTISCENARIO_MAX_N",
           "solve_aggregate_batch", "solve_connected_multiscenario"]

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.nep import MinerEquilibrium
    from ..core.params import GameParameters, Prices

#: Largest miner count at which cross-scenario batching is a measured
#: win.  Batching amortizes per-solve dispatch, which dominates at
#: small ``n``; by ``n ~ 768`` a solo ``(n,)`` aggregate solve is
#: already bandwidth-efficient and the lockstep ``(B, n)`` iteration
#: (converged lanes ride along until the active set drops them) turns
#: into pure overhead — ~3.6x faster at ``n=256``, ~1.15x at ``n=512``,
#: ~0.8x (slower) at ``n=768`` on the 64-scenario bench grid.  Both
#: kernels stay bit-identical at every ``n``; auto-batching callers
#: (the serving engine, the bench twins) respect this bound, direct
#: calls may exceed it.
MULTISCENARIO_MAX_N = 512

#: Budget slack below which the constraint is treated as free (the
#: scalar kernel's ``_TOL``).
_TOL = 1e-13

#: Bisection sweeps for the per-miner budget multipliers.
_LAM_SWEEPS = 110

#: Hard cap on masked ITP iterations.  ITP's worst case is plain
#: bisection — ~60 halvings to collapse any double-precision bracket —
#: so this is a generous safety margin, not a tuning knob.
_ITP_MAX_ITERS = 220

#: ITP truncation gain ``kappa_1 = 0.2 / (b0 - a0)`` (the reference
#: parameterization of Oliveira & Takahashi 2020), ``kappa_2 = 2``.
_ITP_K1_SCALE = 0.2

# A callback evaluating the (per-lane decreasing) excess function at
# compressed points ``x`` for the active lanes ``act`` (indices into
# the root-finder's lane axis).
_ExcessFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _wsum_rows(values: np.ndarray,
               weights: Optional[np.ndarray]) -> np.ndarray:
    """Row-wise ``Σ values`` (unweighted) or ``Σ w · values``.

    ``np.sum(..., axis=1)`` on a ``(m, n)`` stack performs the same
    pairwise reduction per row as the 1-D sum the solo kernel takes, so
    the batched totals are bit-identical to the per-scenario ones.
    """
    if weights is None:
        return np.sum(values, axis=1)
    return np.sum(weights * values, axis=1)


def _itp_root(f: _ExcessFn, lo: np.ndarray, hi: np.ndarray,
              f_lo: np.ndarray, f_hi: np.ndarray) -> np.ndarray:
    """Vectorized masked ITP root-finding on per-lane brackets.

    Finds the root of a per-lane *decreasing* function ``f`` inside
    ``[lo, hi]`` (``f_lo > 0 > f_hi``) for every lane simultaneously.
    Each iteration evaluates ``f`` once on the shrinking active set;
    converged lanes are frozen, so a lane's trajectory — and hence its
    root bits — is independent of what else shares the batch.

    Convergence is "exact" in the brentq ``xtol=1e-30`` sense: a lane
    finishes when its bracket midpoint collides with an endpoint, i.e.
    the bracket has collapsed to adjacent doubles (or an evaluation
    hits 0 exactly).
    """
    a = np.array(lo, dtype=float, copy=True)
    b = np.array(hi, dtype=float, copy=True)
    fa = np.array(f_lo, dtype=float, copy=True)
    fb = np.array(f_hi, dtype=float, copy=True)
    lanes = a.shape[0]
    if lanes == 1:
        # Scalar fast path: every float64 operation below corresponds
        # 1:1 to an elementwise operation of the array path, so the
        # root bits are identical — this only strips numpy dispatch
        # overhead from single-lane (B = 1 / deep-nested) brackets.
        return np.array([_itp_root_scalar(f, float(a[0]), float(b[0]),
                                          float(fa[0]), float(fb[0]))])
    width0 = b - a
    k1 = _ITP_K1_SCALE / width0
    eps_x = np.spacing(np.maximum(np.abs(a), np.abs(b)))
    # Iterations a pure bisection would need to reach ~eps_x brackets;
    # ITP is guaranteed to do no worse than nmax = nbisect + n0 (n0=1).
    # Computed through math.log2 (not np.log2, whose SIMD path may
    # round differently) so the scalar fast path below sees the exact
    # same projection radii as this array path.
    n_max = np.array([
        math.ceil(math.log2(max(w / (2.0 * ex), 1.0))) + 1.0
        for w, ex in zip(width0.tolist(), eps_x.tolist())])
    root = 0.5 * (a + b)
    done = np.zeros(lanes, dtype=bool)
    for j in range(_ITP_MAX_ITERS):
        mid = 0.5 * (a + b)
        exhausted = ~done & ((mid <= a) | (mid >= b))
        root = np.where(exhausted, mid, root)
        done |= exhausted
        act = np.nonzero(~done)[0]
        if act.size == 0:
            break
        if act.size == lanes:
            aa, bb, mm, faa, fbb = a, b, mid, fa, fb
            k1a, epsa, nma = k1, eps_x, n_max
        else:
            aa = a[act]
            bb = b[act]
            mm = mid[act]
            faa = fa[act]
            fbb = fb[act]
            k1a = k1[act]
            epsa = eps_x[act]
            nma = n_max[act]
        # Interpolate (regula falsi), truncate toward the midpoint,
        # project into the bisection-guarantee interval of radius r.
        xf = (bb * faa - aa * fbb) / (faa - fbb)
        sigma = np.sign(mm - xf)
        delta = k1a * (bb - aa) * (bb - aa)
        xt = np.where(delta <= np.abs(mm - xf), xf + sigma * delta, mm)
        r = (epsa * np.exp2(np.minimum(
            np.maximum(nma - j, 0.0), 1023.0)) - 0.5 * (bb - aa))
        r = np.maximum(r, 0.0)
        x = np.where(np.abs(xt - mm) <= r, xt, mm - sigma * r)
        x = np.minimum(np.maximum(x, np.nextafter(aa, bb)),
                       np.nextafter(bb, aa))
        fx = f(x, act)
        neg = fx < 0.0
        pos = fx > 0.0
        hit = ~neg & ~pos  # exact zero (or a non-finite lane: freeze it)
        b[act[neg]] = x[neg]
        fb[act[neg]] = fx[neg]
        a[act[pos]] = x[pos]
        fa[act[pos]] = fx[pos]
        if hit.any():
            root[act[hit]] = x[hit]
            done[act[hit]] = True
    return np.where(done, root, 0.5 * (a + b))


#: Cached single-lane index for the scalar ITP fast path.
_LANE0 = np.arange(1)


def _itp_root_scalar(f: _ExcessFn, a: float, b: float,
                     fa: float, fb: float) -> float:
    """Single-lane ITP in pure Python floats (see :func:`_itp_root`).

    Bit-identical to the array path: ``math.ulp``/``math.nextafter``
    match ``np.spacing``/``np.nextafter`` on finite positives, exact
    powers of two are exact in both ``2.0 ** k`` and ``np.exp2``, and
    every other operation is the same IEEE-754 double arithmetic.
    """
    width0 = b - a
    k1 = _ITP_K1_SCALE / width0
    eps_x = math.ulp(max(abs(a), abs(b)))
    n_max = math.ceil(math.log2(max(width0 / (2.0 * eps_x), 1.0))) + 1.0
    for j in range(_ITP_MAX_ITERS):
        mid = 0.5 * (a + b)
        if mid <= a or mid >= b:
            return mid
        xf = (b * fa - a * fb) / (fa - fb)
        dm = mid - xf
        sigma = 1.0 if dm > 0.0 else (-1.0 if dm < 0.0 else 0.0)
        delta = k1 * (b - a) * (b - a)
        xt = xf + sigma * delta if delta <= abs(dm) else mid
        r = eps_x * 2.0 ** min(max(n_max - j, 0.0), 1023.0) \
            - 0.5 * (b - a)
        r = max(r, 0.0)
        x = xt if abs(xt - mid) <= r else mid - sigma * r
        x = min(max(x, math.nextafter(a, b)), math.nextafter(b, a))
        fx = float(f(np.array([x]), _LANE0)[0])
        if fx < 0.0:
            b, fb = x, fx
        elif fx > 0.0:
            a, fa = x, fx
        else:
            return x
    return 0.5 * (a + b)


def _lane_responses(S: np.ndarray, E: np.ndarray, lam: np.ndarray,
                    a_e0: np.ndarray, a_c0: np.ndarray,
                    p_e: np.ndarray, p_c: np.ndarray,
                    A: np.ndarray, Bm: np.ndarray,
                    AB: np.ndarray, ASBE: np.ndarray
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-miner KKT responses at totals ``(S, E)``, multipliers ``λ``.

    Shape-generic: callers pass ``(m, 1)`` per-scenario columns against
    ``(m, n)`` lane arrays, or flat per-lane vectors — every operation
    is elementwise, which is what makes the batch bit-identical to the
    scenario-at-a-time evaluation.  The coefficients that depend only
    on the totals — ``A = ks/S²``, ``Bm = kg/E²``, ``AB = A + Bm``,
    ``ASBE = A·S + Bm·E`` — are hoisted to the caller because the
    budget-multiplier search evaluates this function dozens of times at
    fixed ``(S, E)``.

    Mirrors the scalar ``_candidate`` branch order: a non-positive
    effective premium forces edge-only; otherwise the interior linear
    system is tried and negative coordinates drop to the cloud-only or
    edge-only corner (``e < 0`` checked before ``c < 0``).
    """
    a_c = a_c0 + lam * p_c
    a_e = a_e0 + lam * p_e
    da = a_e - a_c
    s_int = S - a_c / A
    e_int = E - da / Bm
    c_int = s_int - e_int
    cloud = (da > 0.0) & (e_int < 0.0)
    edge = (da <= 0.0) | ((da > 0.0) & (e_int >= 0.0) & (c_int < 0.0))
    e = np.where(cloud | edge, 0.0, np.maximum(e_int, 0.0))
    c = np.where(cloud, np.maximum(s_int, 0.0),
                 np.where(edge, 0.0, np.maximum(c_int, 0.0)))
    if edge.any():
        e_eo = (ASBE - a_e) / AB
        e = np.where(edge, np.maximum(e_eo, 0.0), e)
    return e, c


def _lane_responses_scalar(S: float, E: float, a_e0: float, a_c0: float,
                           A: float, Bm: float, AB: float, ASBE: float
                           ) -> Tuple[float, float]:
    """Zero-``λ`` KKT response in pure Python floats.

    At ``λ = 0`` every miner faces identical effective prices, so the
    response is one scalar computation; this mirrors
    :func:`_lane_responses` branch for branch (no NaN can reach the
    ``max``/``np.maximum`` seam: all inputs are finite and the
    coefficients positive), making it bit-identical to evaluating the
    array path and reading any one lane.
    """
    da = a_e0 - a_c0
    s_int = S - a_c0 / A
    e_int = E - da / Bm
    c_int = s_int - e_int
    cloud = da > 0.0 and e_int < 0.0
    edge = da <= 0.0 or (da > 0.0 and e_int >= 0.0 and c_int < 0.0)
    if edge:
        return max((ASBE - a_e0) / AB, 0.0), 0.0
    if cloud:
        return 0.0, max(s_int, 0.0)
    return max(e_int, 0.0), max(c_int, 0.0)


def _budget_responses_single(S: np.ndarray, E: np.ndarray,
                             budgets: np.ndarray, q_e: np.ndarray,
                             q_c: np.ndarray, ks: np.ndarray,
                             kg: np.ndarray, p_e: np.ndarray,
                             p_c: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray,
                                        Optional[np.ndarray]]:
    """Single-scenario specialization of :func:`_budget_responses`.

    The batched path broadcasts ``(m, 1)`` scenario columns against
    ``(m, n)`` lane arrays; at ``m = 1`` those columns are scalars and
    the zero-``λ`` pass collapses to one float computation (miners
    differ only through their budget multipliers).  Scalar-vs-column
    broadcasting performs the same IEEE-754 operations, so this path is
    bit-identical to the general one — it exists purely to strip numpy
    dispatch overhead from solo (``B = 1``) solves and from batches
    whose active set has shrunk to one scenario.
    """
    s = float(S[0])
    ev = float(E[0])
    A = float(ks[0]) / (s * s)
    Bm = float(kg[0]) / (ev * ev)
    AB = A + Bm
    ASBE = A * s + Bm * ev
    qe = float(q_e[0])
    qc = float(q_c[0])
    pe = float(p_e[0])
    pc = float(p_c[0])
    e0, c0 = _lane_responses_scalar(s, ev, qe, qc, A, Bm, AB, ASBE)
    spend0 = pe * e0 + pc * c0
    b = budgets[0]
    over = spend0 > b + _TOL
    e = np.full(b.shape, e0)
    c = np.full(b.shape, c0)
    if not over.any():
        return e[None, :], c[None, :], None
    bb = b[over]

    def lane_spend(lam: np.ndarray) -> np.ndarray:
        es, cs = _lane_responses(s, ev, lam, qe, qc, pe, pc,
                                 A, Bm, AB, ASBE)
        return pe * es + pc * cs

    lo = np.zeros_like(bb)
    hi = np.ones_like(bb)
    dead = np.zeros(bb.shape, dtype=bool)
    broke = False
    for _ in range(70):
        grow = (lane_spend(hi) > bb) & ~dead
        if not grow.any():
            broke = True
            break
        lo = np.where(grow, hi, lo)
        hi = np.where(grow, 2.0 * hi, hi)
        blown = hi > 1e18
        if blown.any():
            dead |= blown
            hi = np.where(blown, 1e18, hi)
    if not broke:
        dead |= (lane_spend(hi) > bb)
    done = dead.copy()
    for _ in range(_LAM_SWEEPS):
        mid = 0.5 * (lo + hi)
        done |= (mid <= lo) | (mid >= hi)
        if done.all():
            break
        act = ~done
        high = act & (lane_spend(mid) > bb)
        lo = np.where(high, mid, lo)
        hi = np.where(act & ~high, mid, hi)
    es, cs = _lane_responses(s, ev, 0.5 * (lo + hi), qe, qc, pe, pc,
                             A, Bm, AB, ASBE)
    e[over] = es
    c[over] = cs
    if dead.any():
        return e[None, :], c[None, :], np.array([True])
    return e[None, :], c[None, :], None


def _budget_responses(S: np.ndarray, E: np.ndarray, budgets: np.ndarray,
                      q_e: np.ndarray, q_c: np.ndarray,
                      ks: np.ndarray, kg: np.ndarray,
                      p_e: np.ndarray, p_c: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray,
                                 Optional[np.ndarray]]:
    """Responses at totals ``(S, E)`` with budget multipliers resolved.

    All scenarios' over-budget lanes are flattened into one vector and
    share the bracket-doubling + bisection passes; both loops freeze a
    lane the moment it stops moving, so each lane's multiplier bits
    match the lane-alone computation regardless of batch company.

    Returns ``(e, c, bad)`` where ``bad`` (or ``None``) flags scenarios
    whose multiplier bracket diverged — the per-scenario analogue of
    the solo kernel's :class:`ConvergenceError`.
    """
    if S.shape[0] == 1:
        return _budget_responses_single(S, E, budgets, q_e, q_c, ks, kg,
                                        p_e, p_c)
    zero = np.zeros_like(budgets)
    col = (slice(None), None)
    Sc = S[col]
    Ec = E[col]
    A = ks[col] / (Sc * Sc)
    Bm = kg[col] / (Ec * Ec)
    AB = A + Bm
    ASBE = A * Sc + Bm * Ec
    e, c = _lane_responses(Sc, Ec, zero, q_e[col], q_c[col],
                           p_e[col], p_c[col], A, Bm, AB, ASBE)
    spend = p_e[col] * e + p_c[col] * c
    over = spend > budgets + _TOL
    if not over.any():
        return e, c, None
    si, _ = np.nonzero(over)
    bb = budgets[over]
    Sl = S[si]
    El = E[si]
    qel = q_e[si]
    qcl = q_c[si]
    pel = p_e[si]
    pcl = p_c[si]
    Al = A[si, 0]
    Bml = Bm[si, 0]
    ABl = AB[si, 0]
    ASBEl = ASBE[si, 0]

    def lane_spend(lam: np.ndarray) -> np.ndarray:
        es, cs = _lane_responses(Sl, El, lam, qel, qcl, pel, pcl,
                                 Al, Bml, ABl, ASBEl)
        return pel * es + pcl * cs

    lo = np.zeros_like(bb)
    hi = np.ones_like(bb)
    dead = np.zeros(bb.shape, dtype=bool)
    broke = False
    for _ in range(70):
        grow = (lane_spend(hi) > bb) & ~dead
        if not grow.any():
            broke = True
            break
        lo = np.where(grow, hi, lo)
        hi = np.where(grow, 2.0 * hi, hi)
        blown = hi > 1e18
        if blown.any():
            dead |= blown
            hi = np.where(blown, 1e18, hi)
    if not broke:
        dead |= (lane_spend(hi) > bb)
    done = dead.copy()
    for _ in range(_LAM_SWEEPS):
        mid = 0.5 * (lo + hi)
        done |= (mid <= lo) | (mid >= hi)
        if done.all():
            break
        act = ~done
        high = act & (lane_spend(mid) > bb)
        lo = np.where(high, mid, lo)
        hi = np.where(act & ~high, mid, hi)
    es, cs = _lane_responses(Sl, El, 0.5 * (lo + hi), qel, qcl,
                             pel, pcl, Al, Bml, ABl, ASBEl)
    e[over] = es
    c[over] = cs
    if dead.any():
        bad = np.zeros(S.shape[0], dtype=bool)
        bad[si[dead]] = True
        return e, c, bad
    return e, c, None


def _single_pool_batch(gi: np.ndarray, k_tot: np.ndarray, a: np.ndarray,
                       caps: np.ndarray, weights: Optional[np.ndarray],
                       evals: np.ndarray) -> np.ndarray:
    """Consistency roots of a batch of one-pool aggregative games.

    Every miner plays ``s_i(T) = clip(T - a T²/k_tot, 0, cap_i)``
    against its scenario's total ``T``; returns the profiles at the
    totals solving ``Σ s_i(T) = T`` per scenario (``Σ s_i(T)/T`` is
    decreasing in ``T``, so each excess response is single-crossing).
    ``gi`` maps the local batch rows to global scenario indices for
    evaluation counting.
    """
    t_hi = k_tot / a
    m = k_tot.shape[0]

    def excess(tv: np.ndarray, sub: np.ndarray) -> np.ndarray:
        # Full-set fast path: fancy indexing with the identity subset
        # is a bit-identical no-op, so skip the copies it would make.
        if sub.size == m:
            a_s, k_s, caps_s, w = a, k_tot, caps, weights
            evals[gi] += 1
        else:
            a_s, k_s, caps_s = a[sub], k_tot[sub], caps[sub]
            w = None if weights is None else weights[sub]
            evals[gi[sub]] += 1
        tt = tv[:, None]
        pr = np.clip(tt - a_s[:, None] * tt * tt / k_s[:, None],
                     0.0, caps_s)
        return _wsum_rows(pr, w) - tv

    t_lo = t_hi * 1e-15
    f_lo = excess(t_lo, np.arange(m))
    out = np.zeros_like(caps)
    live = f_lo > 0.0
    if live.any():
        li = np.nonzero(live)[0]
        f_hi = excess(t_hi[li], li)
        t_star = _itp_root(lambda xv, act: excess(xv, li[act]),
                           t_lo[li], t_hi[li], f_lo[li], f_hi[li])
        tt = t_star[:, None]
        out[li] = np.clip(
            tt - a[li, None] * tt * tt / k_tot[li, None], 0.0, caps[li])
    return out


def _two_pool_batch(gi: np.ndarray, budgets: np.ndarray,
                    weights: Optional[np.ndarray], ks: np.ndarray,
                    kg: np.ndarray, q_e: np.ndarray, q_c: np.ndarray,
                    p_e: np.ndarray, p_c: np.ndarray,
                    e_out: np.ndarray, c_out: np.ndarray,
                    evals: np.ndarray, failed: np.ndarray) -> None:
    """General two-pool case: nested consistency roots, batched.

    The outer root is edge-total consistency ``Σ e_i(S(E), E) = E``;
    every outer evaluation solves the inner total-spending root
    ``Σ s_i(S, E) = S`` for its scenarios.  Both levels run the masked
    ITP iteration over whatever subset of scenarios is still active.
    Results are scattered into ``e_out``/``c_out`` at rows ``gi``.
    """
    m, _ = budgets.shape
    dq = q_e - q_c

    def totals_at(S: np.ndarray, E: np.ndarray, sub: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray,
                             np.ndarray, np.ndarray]:
        # Full-set fast path: fancy indexing with the identity subset
        # is a bit-identical no-op, so skip the copies it would make.
        if sub.size == m:
            b_s, qe_s, qc_s, ks_s, kg_s, pe_s, pc_s, w = (
                budgets, q_e, q_c, ks, kg, p_e, p_c, weights)
            evals[gi] += 1
        else:
            b_s, qe_s, qc_s, ks_s, kg_s, pe_s, pc_s = (
                budgets[sub], q_e[sub], q_c[sub], ks[sub], kg[sub],
                p_e[sub], p_c[sub])
            w = None if weights is None else weights[sub]
            evals[gi[sub]] += 1
        e, c, bad = _budget_responses(S, E, b_s, qe_s, qc_s, ks_s,
                                      kg_s, pe_s, pc_s)
        if bad is not None:
            failed[gi[sub[bad]]] = True
        e_tot = _wsum_rows(e, w)
        return e_tot, e_tot + _wsum_rows(c, w), e, c

    def inner_S(E: np.ndarray, sub: np.ndarray) -> np.ndarray:
        """Total-spending consistency roots ``S(E)`` (0 if none)."""
        p = sub.size
        hi = ks[sub] / q_c[sub]
        f_hi = np.empty(p)
        growing = np.ones(p, dtype=bool)
        for _ in range(200):
            g = np.nonzero(growing)[0]
            if g.size == 0:
                break
            _, s_tot, _, _ = totals_at(hi[g], E[g], sub[g])
            ex = s_tot - hi[g]
            stop = ex < 0.0
            f_hi[g[stop]] = ex[stop]
            growing[g[stop]] = False
            hi[g[~stop]] *= 2.0
        if growing.any():
            # Could not bracket total demand — per-scenario failure.
            failed[gi[sub[growing]]] = True
        lo = (ks[sub] / q_c[sub]) * 1e-15
        _, s_tot, _, _ = totals_at(lo, E, sub)
        f_lo = s_tot - lo
        s_root = np.zeros(p)
        live = (f_lo > 0.0) & ~growing
        if live.any():
            li = np.nonzero(live)[0]
            s_root[li] = _itp_root(
                lambda xv, act: (
                    totals_at(xv, E[li[act]], sub[li[act]])[1] - xv),
                lo[li], hi[li], f_lo[li], f_hi[li])
        return s_root

    def e_excess(E: np.ndarray, sub: np.ndarray) -> np.ndarray:
        S = inner_S(E, sub)
        out = np.empty(sub.size)
        nz = S > 0.0
        out[~nz] = -E[~nz]
        if nz.any():
            e_tot, _, _, _ = totals_at(S[nz], E[nz], sub[nz])
            out[nz] = e_tot - E[nz]
        return out

    e_hi = kg / dq
    f_ehi = np.empty(m)
    growing = np.ones(m, dtype=bool)
    for _ in range(200):
        g = np.nonzero(growing)[0]
        if g.size == 0:
            break
        ex = e_excess(e_hi[g], g)
        stop = ex < 0.0
        f_ehi[g[stop]] = ex[stop]
        growing[g[stop]] = False
        e_hi[g[~stop]] *= 2.0
    if growing.any():
        # Could not bracket edge demand — per-scenario failure.
        failed[gi[growing]] = True
    e_lo = (kg / dq) * 1e-15
    f_elo = e_excess(e_lo, np.arange(m))
    empty = (f_elo <= 0.0) & ~growing
    if empty.any():
        # Edge pool empty at equilibrium (possible only through budget
        # degeneracies); the cloud-only game remains one-dimensional.
        ei = np.nonzero(empty)[0]
        w = None if weights is None else weights[ei]
        c_out[gi[ei]] = _single_pool_batch(
            gi[ei], ks[ei], q_c[ei], budgets[ei] / p_c[ei, None], w,
            evals)
    live = ~empty & ~growing
    if not live.any():
        return
    li = np.nonzero(live)[0]
    e_star = _itp_root(lambda xv, act: e_excess(xv, li[act]),
                       e_lo[li], e_hi[li], f_elo[li], f_ehi[li])
    s_star = inner_S(e_star, li)
    _, _, e_fin, c_fin = totals_at(s_star, e_star, li)
    e_out[gi[li]] = e_fin
    c_out[gi[li]] = c_fin


@dataclass(frozen=True)
class BatchAggregateSolution:
    """Batched aggregate solve: per-scenario profiles and diagnostics.

    Attributes:
        e: ESP requests, shape ``(B, n)``.
        c: CSP requests, shape ``(B, n)``.
        evals: Consistency-function evaluations per scenario, ``(B,)``.
        failed: Per-scenario divergence flags, ``(B,)`` — a failed row's
            profile is meaningless and must not be consumed.
    """

    e: np.ndarray
    c: np.ndarray
    evals: np.ndarray
    failed: np.ndarray

    @property
    def batch_size(self) -> int:
        return int(self.e.shape[0])

    @property
    def active_set_fraction(self) -> float:
        """Mean lockstep utilization: ``mean(evals) / max(evals)``.

        1.0 means every scenario stayed active for the whole batched
        iteration; small values mean a few stragglers dominated.
        """
        top = int(np.max(self.evals)) if self.evals.size else 0
        if top <= 0:
            return 1.0
        return float(np.mean(self.evals) / top)


def solve_aggregate_batch(budgets: np.ndarray,
                          weights: Optional[np.ndarray],
                          reward: np.ndarray, beta: np.ndarray,
                          gamma: np.ndarray, p_e: np.ndarray,
                          p_c: np.ndarray, nu: np.ndarray
                          ) -> BatchAggregateSolution:
    """Solve ``B`` connected-mode aggregate games in one array program.

    Args:
        budgets: Per-miner budgets, shape ``(B, n)`` (rows are
            scenarios; with ``weights``, rows are budget types).
        weights: Optional per-row miner multiplicities, shape
            ``(B, n)`` — the type-space hook of
            :func:`repro.kernels.aggregate.solve_weighted_connected_aggregate`.
        reward, beta, gamma, p_e, p_c, nu: Per-scenario scalars, shape
            ``(B,)`` — mining reward ``R``, fork rate ``β``, edge-bonus
            coefficient ``βh``, unit prices, and the shared-capacity
            multiplier (perceived edge price mark-up).

    Returns:
        :class:`BatchAggregateSolution`.  Scenario ``i`` of the result
        is bit-identical to ``solve_aggregate_batch`` called on
        scenario ``i`` alone (and hence to ``kernel="vectorized"``,
        which is the ``B = 1`` delegation).
    """
    budgets = np.asarray(budgets, dtype=float)
    if budgets.ndim != 2:
        raise ValueError(
            f"budgets must have shape (B, n), got {budgets.shape}")
    n_scen, n = budgets.shape
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != budgets.shape:
            raise ValueError(
                f"weights shape {weights.shape} must match budgets "
                f"shape {budgets.shape}")
    scalars = []
    for name, arr in (("reward", reward), ("beta", beta),
                      ("gamma", gamma), ("p_e", p_e), ("p_c", p_c),
                      ("nu", nu)):
        arr = np.asarray(arr, dtype=float)
        if arr.shape != (n_scen,):
            raise ValueError(
                f"{name} must have shape ({n_scen},), got {arr.shape}")
        scalars.append(arr)
    reward, beta, gamma, p_e, p_c, nu = scalars

    q_e = p_e + nu
    q_c = p_c
    ks = reward * (1.0 - beta)
    kg = reward * gamma

    e = np.zeros((n_scen, n))
    c = np.zeros((n_scen, n))
    evals = np.zeros(n_scen, dtype=np.int64)
    failed = np.zeros(n_scen, dtype=bool)

    if weights is None:
        n_eff = np.full(n_scen, float(n))
    else:
        n_eff = np.sum(weights, axis=1)

    def wsub(gi: np.ndarray) -> Optional[np.ndarray]:
        return None if weights is None else weights[gi]

    # A lone miner earns the whole (1-β) share regardless of effort
    # (and the ē=0 model discontinuity zeroes the edge bonus), so its
    # exact best response to empty opposition is inactivity — the same
    # fixed point the sweeping solvers reach.
    trivial = (n_eff < 2.0) | (ks <= 0.0)

    # No edge bonus: one pool at the cheaper objective price (the
    # scalar kernel's a_e < a_c tie-break sends ties to the cloud).
    nobonus = ~trivial & (kg <= 0.0)
    grp = nobonus & (q_e < q_c)
    if grp.any():
        gi = np.nonzero(grp)[0]
        e[gi] = _single_pool_batch(gi, ks[gi], q_e[gi],
                                   budgets[gi] / p_e[gi, None],
                                   wsub(gi), evals)
    grp = nobonus & ~(q_e < q_c)
    if grp.any():
        gi = np.nonzero(grp)[0]
        c[gi] = _single_pool_batch(gi, ks[gi], q_c[gi],
                                   budgets[gi] / p_c[gi, None],
                                   wsub(gi), evals)

    # Edge no pricier but strictly more valuable: cloud dominated,
    # single pool with stacked marginal value ks + kg at price q_e.
    dominated = ~trivial & ~nobonus & (q_e <= q_c)
    if dominated.any():
        gi = np.nonzero(dominated)[0]
        e[gi] = _single_pool_batch(gi, ks[gi] + kg[gi], q_e[gi],
                                   budgets[gi] / p_e[gi, None],
                                   wsub(gi), evals)

    general = ~trivial & ~nobonus & ~dominated
    if general.any():
        gi = np.nonzero(general)[0]
        _two_pool_batch(gi, budgets[gi], wsub(gi), ks[gi], kg[gi],
                        q_e[gi], q_c[gi], p_e[gi], p_c[gi],
                        e, c, evals, failed)
    return BatchAggregateSolution(e=e, c=c, evals=evals, failed=failed)


def solve_connected_multiscenario(
        scenarios: Sequence[Tuple["GameParameters", "Prices"]],
        tol: float = 1e-9,
        nus: Optional[Sequence[float]] = None,
        ) -> List[Optional["MinerEquilibrium"]]:
    """Solve a batch of connected-mode scenarios in one kernel call.

    Every scenario must be connected-mode with the same miner count
    ``n`` (heterogeneous rewards, fork rates, prices, and budgets are
    fine — that is the point).  Each returned equilibrium is
    bit-identical to what ``solve_connected_equilibrium(params, prices,
    tol=tol, kernel="vectorized")`` produces for that scenario,
    including the Jacobi-sweep verification: scenarios whose residual
    misses ``tol`` (or whose aggregate solve diverged) come back as
    ``None`` so the caller can fall back to the per-scenario solver.

    Args:
        scenarios: ``(params, prices)`` pairs.
        tol: Verification tolerance (the vectorized kernel's ``tol``).
        nus: Optional per-scenario shared-capacity multipliers
            (defaults to 0 everywhere, the connected-mode value).

    Returns:
        One ``Optional[MinerEquilibrium]`` per scenario, input order.
    """
    from ..core.nep import MinerEquilibrium
    from ..game.diagnostics import ConvergenceReport
    from ..telemetry import TELEMETRY as _TEL
    from .batched_br import jacobi_sweep

    if not scenarios:
        return []
    n = scenarios[0][0].n
    for params, _ in scenarios:
        if params.n != n:
            raise ValueError(
                "multiscenario batches require a uniform miner count; "
                f"got n={params.n} alongside n={n}")
    n_scen = len(scenarios)
    if nus is None:
        nu_arr = np.zeros(n_scen)
    else:
        nu_arr = np.asarray(list(nus), dtype=float)
        if nu_arr.shape != (n_scen,):
            raise ValueError(
                f"nus must provide one multiplier per scenario "
                f"({n_scen}), got shape {nu_arr.shape}")
    budgets = np.stack([np.asarray(p.budget_array, dtype=float)
                        for p, _ in scenarios])
    reward = np.array([float(p.reward) for p, _ in scenarios])
    beta = np.array([float(p.fork_rate) for p, _ in scenarios])
    gamma = np.array([float(p.fork_rate) * float(p.effective_h)
                      for p, _ in scenarios])
    pe_arr = np.array([float(pr.p_e) for _, pr in scenarios])
    pc_arr = np.array([float(pr.p_c) for _, pr in scenarios])

    sol = solve_aggregate_batch(budgets, None, reward, beta, gamma,
                                pe_arr, pc_arr, nu_arr)
    if _TEL.enabled:
        _TEL.metrics.histogram(
            "multiscenario_batch_size",
            "Scenarios per batched aggregate solve",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                     256.0, 512.0)).observe(float(n_scen))
        _TEL.metrics.gauge(
            "multiscenario_active_set_fraction",
            "mean(evals)/max(evals) of the last batched solve — 1.0 "
            "when every scenario stays active the whole iteration"
            ).set(sol.active_set_fraction)

    results: List[Optional["MinerEquilibrium"]] = []
    for i, (params, prices) in enumerate(scenarios):
        if sol.failed[i]:
            results.append(None)
            continue
        nu_i = float(nu_arr[i])
        # Identical certification to nep._solve_vectorized: one exact
        # batched best-response sweep; the returned profile is the
        # *sweep output* (BR(x*) = x* at the true equilibrium).
        e_br, c_br = jacobi_sweep(sol.e[i], sol.c[i], params, prices,
                                  nu=nu_i)
        scale = max(1.0, float(np.max(np.abs(e_br))),
                    float(np.max(np.abs(c_br))))
        residual = max(float(np.max(np.abs(e_br - sol.e[i]))),
                       float(np.max(np.abs(c_br - sol.c[i])))) / scale
        if not residual < tol:
            results.append(None)
            continue
        report = ConvergenceReport(
            converged=True, iterations=int(sol.evals[i]),
            residual=residual, tolerance=tol, history=[residual],
            message="aggregate kernel (iterations = consistency evals)")
        results.append(MinerEquilibrium(
            e=np.asarray(e_br, dtype=float),
            c=np.asarray(c_br, dtype=float), params=params,
            prices=prices, report=report, nu=nu_i))
    return results
