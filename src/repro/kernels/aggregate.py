"""Aggregate-space equilibrium kernel for the connected-mode NEP.

Best-response *dynamics* are the wrong vehicle for large ``n``: the
miner subgame is a Cournot-style aggregative game, so simultaneous
(Jacobi) best-response play is unstable for ``n >= 3`` (Theocharis'
classic result — confirmed empirically in ``docs/PERFORMANCE.md``) and
the sequential Gauss–Seidel sweep contracts at only ``1 - O(1/n)`` per
sweep, needing ``O(n)`` sweeps of ``n`` scalar solves each.

This kernel exploits the aggregative structure instead.  Fix the
*totals* ``S = Σ s_i`` and ``E = Σ e_i``.  Because miner ``i``'s payoff
depends on opponents only through ``s̄_i = S - s_i`` and
``ē_i = E - e_i``, the stationarity conditions written at known totals
are **linear** in the miner's own variables:

* cloud:  ``R(1-β)(S - s_i)/S² = q_c + λ_i p_c``
* edge:   ``R(1-β)(S - s_i)/S² + Rγ(E - e_i)/E² = q_e + λ_i p_e``

so every miner's KKT response — interior, cloud-only, edge-only or
inactive, with the budget multiplier ``λ_i`` resolved by vectorized
bisection on the monotone spending curve — is a closed-form array
program over the miner axis.  The equilibrium is then the root of a
consistency system in at most **two scalar unknowns**,

    ``Σ_i s_i(S, E) = S``  and  ``Σ_i e_i(S, E) = E``,

each total's excess response being single-crossing.  Iteration count is
independent of ``n``; every evaluation is ``O(n)`` vectorized work.

The numerics live in :mod:`repro.kernels.multiscenario`: this module's
entry points delegate to the cross-scenario batch kernel with a batch
of **one**, so a ``kernel="vectorized"`` solve *is* the ``B = 1``
special case of the batched solver.  The batch kernel's per-lane frozen
updates guarantee the converse — ``B`` scenarios solved together are
bit-identical to ``B`` of these single-scenario calls — which is what
lets the serving engine group sweep points into one kernel call without
perturbing cached results.  (The consistency roots are found by masked
ITP iteration: superlinear like the Brent solver this module once
wrapped, with bisection's worst-case guarantee, and fully maskable.)

Degenerate price/fork configurations collapse to one-dimensional
consistency problems and are dispatched exactly like the scalar
kernel's branch order: no edge bonus (``γ = 0``) reduces to a single
pool at the cheaper objective price, and a non-positive edge premium
(``q_e <= q_c`` with ``γ > 0``) makes cloud strictly dominated.

The caller (:func:`repro.core.nep.solve_connected_equilibrium` with
``kernel="vectorized"``) verifies the returned profile is a fixed point
of the exact batched best-response map and falls back to the sweeping
solver if the check fails, so this kernel never silently degrades
accuracy.

**Weighted (type-space) games.** Because miners enter the consistency
system only through the sums ``Σ s_i`` / ``Σ e_i``, a population of
``Σ w_t`` miners collapsed into ``k`` budget types is solved by the
*same* kernel with the sums replaced by ``Σ w_t s_t`` — every other
line is unchanged.  :func:`solve_weighted_connected_aggregate` exposes
that entry point (one row per type, a positive multiplicity per row);
:mod:`repro.kernels.typespace` builds the compression, expansion, and
error certification on top of it.  The unweighted path never touches
the weight machinery, so ``solve_connected_aggregate`` stays
bit-identical to its pre-weights behavior.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..exceptions import ConvergenceError
from .multiscenario import solve_aggregate_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.params import GameParameters, Prices

__all__ = ["solve_connected_aggregate",
           "solve_weighted_connected_aggregate", "AggregateSolution"]


class AggregateSolution(Tuple[np.ndarray, np.ndarray, int]):
    """``(e, c, evaluations)`` — kept as a named tuple subclass so the
    solver can report its work without a new dataclass."""

    __slots__ = ()

    def __new__(cls, e: np.ndarray, c: np.ndarray,
                evals: int) -> "AggregateSolution":
        return super().__new__(cls, (e, c, evals))

    @property
    def e(self) -> np.ndarray:
        return self[0]

    @property
    def c(self) -> np.ndarray:
        return self[1]

    @property
    def evals(self) -> int:
        return self[2]


def solve_connected_aggregate(params: "GameParameters", prices: "Prices",
                              nu: float = 0.0) -> AggregateSolution:
    """Connected-mode NEP equilibrium via aggregate consistency.

    Args:
        params: :class:`~repro.core.params.GameParameters`.
        prices: :class:`~repro.core.params.Prices`.
        nu: Shared-capacity multiplier of the GNEP decomposition — the
            perceived edge price becomes ``p_e + nu`` while the budget
            is charged at ``p_e`` (exactly as in the scalar kernel).

    Returns:
        :class:`AggregateSolution` — the profile plus the number of
        consistency-function evaluations performed.
    """
    return _solve_aggregate(
        budgets=np.asarray(params.budget_array, dtype=float),
        weights=None,
        reward=float(params.reward),
        beta=float(params.fork_rate),
        gamma=float(params.fork_rate) * float(params.effective_h),
        p_e=float(prices.p_e), p_c=float(prices.p_c), nu=float(nu))


def solve_weighted_connected_aggregate(
        budgets: np.ndarray, weights: np.ndarray, reward: float,
        fork_rate: float, gamma: float, p_e: float, p_c: float,
        nu: float = 0.0) -> AggregateSolution:
    """Type-space equilibrium of the weighted connected-mode NEP.

    Solves the game in which ``weights[t]`` identical miners share the
    budget ``budgets[t]`` — exactly the game obtained by replacing a
    heterogeneous population with its bucket representatives.  By the
    uniqueness of the equilibrium (Theorem 2) and the symmetry of
    identical miners, the returned per-type profile *is* the exact
    per-miner equilibrium of that bucketed game.

    Args:
        budgets: Type budgets, shape ``(k,)``, strictly positive.
        weights: Miner multiplicity per type, shape ``(k,)``, positive
            (fractional weights are allowed; the sums only need
            ``Σ w_t``-linearity).
        reward: Mining reward ``R``.
        fork_rate: Fork rate ``β``.
        gamma: Edge-bonus coefficient ``β·h`` (``h`` already the
            effective satisfaction probability).
        p_e: Edge unit price ``P_e``.
        p_c: Cloud unit price ``P_c``.
        nu: Shared-capacity multiplier (perceived edge price mark-up).

    Returns:
        :class:`AggregateSolution` with per-**type** profiles of shape
        ``(k,)``.
    """
    budgets = np.asarray(budgets, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if budgets.ndim != 1 or budgets.shape != weights.shape:
        raise ValueError(
            f"budgets and weights must be matching 1-D arrays, got "
            f"shapes {budgets.shape} and {weights.shape}")
    if np.any(budgets <= 0.0):
        raise ValueError("all type budgets must be positive")
    if np.any(weights <= 0.0):
        raise ValueError("all type weights must be positive")
    return _solve_aggregate(budgets=budgets, weights=weights,
                            reward=float(reward), beta=float(fork_rate),
                            gamma=float(gamma), p_e=float(p_e),
                            p_c=float(p_c), nu=float(nu))


def _solve_aggregate(budgets: np.ndarray,
                     weights: Optional[np.ndarray], reward: float,
                     beta: float, gamma: float, p_e: float, p_c: float,
                     nu: float) -> AggregateSolution:
    """Shared unweighted/weighted consistency solve: the ``B = 1``
    delegation into the cross-scenario batch kernel (see callers)."""
    one = np.ones(1)
    sol = solve_aggregate_batch(
        budgets[None, :],
        None if weights is None else weights[None, :],
        reward=reward * one, beta=beta * one, gamma=gamma * one,
        p_e=p_e * one, p_c=p_c * one, nu=nu * one)
    if bool(sol.failed[0]):
        raise ConvergenceError(
            "aggregate kernel diverged (budget-multiplier or "
            "consistency bracket)")
    return AggregateSolution(np.ascontiguousarray(sol.e[0]),
                             np.ascontiguousarray(sol.c[0]),
                             int(sol.evals[0]))
