"""Aggregate-space equilibrium kernel for the connected-mode NEP.

Best-response *dynamics* are the wrong vehicle for large ``n``: the
miner subgame is a Cournot-style aggregative game, so simultaneous
(Jacobi) best-response play is unstable for ``n >= 3`` (Theocharis'
classic result — confirmed empirically in ``docs/PERFORMANCE.md``) and
the sequential Gauss–Seidel sweep contracts at only ``1 - O(1/n)`` per
sweep, needing ``O(n)`` sweeps of ``n`` scalar solves each.

This kernel exploits the aggregative structure instead.  Fix the
*totals* ``S = Σ s_i`` and ``E = Σ e_i``.  Because miner ``i``'s payoff
depends on opponents only through ``s̄_i = S - s_i`` and
``ē_i = E - e_i``, the stationarity conditions written at known totals
are **linear** in the miner's own variables:

* cloud:  ``R(1-β)(S - s_i)/S² = q_c + λ_i p_c``
* edge:   ``R(1-β)(S - s_i)/S² + Rγ(E - e_i)/E² = q_e + λ_i p_e``

so every miner's KKT response — interior, cloud-only, edge-only or
inactive, with the budget multiplier ``λ_i`` resolved by vectorized
bisection on the monotone spending curve — is a closed-form array
program over the miner axis.  The equilibrium is then the root of a
consistency system in at most **two scalar unknowns**,

    ``Σ_i s_i(S, E) = S``  and  ``Σ_i e_i(S, E) = E``,

solved by nested Brent root-finding (each total's excess response is
single-crossing).  Iteration count is independent of ``n``; every
evaluation is ``O(n)`` vectorized work.

Degenerate price/fork configurations collapse to one-dimensional
consistency problems and are dispatched exactly like the scalar
kernel's branch order: no edge bonus (``γ = 0``) reduces to a single
pool at the cheaper objective price, and a non-positive edge premium
(``q_e <= q_c`` with ``γ > 0``) makes cloud strictly dominated.

The caller (:func:`repro.core.nep.solve_connected_equilibrium` with
``kernel="vectorized"``) verifies the returned profile is a fixed point
of the exact batched best-response map and falls back to the sweeping
solver if the check fails, so this kernel never silently degrades
accuracy.

**Weighted (type-space) games.** Because miners enter the consistency
system only through the sums ``Σ s_i`` / ``Σ e_i``, a population of
``Σ w_t`` miners collapsed into ``k`` budget types is solved by the
*same* kernel with the sums replaced by ``Σ w_t s_t`` — every other
line is unchanged.  :func:`solve_weighted_connected_aggregate` exposes
that entry point (one row per type, a positive multiplicity per row);
:mod:`repro.kernels.typespace` builds the compression, expansion, and
error certification on top of it.  The unweighted path never touches
the weight machinery, so ``solve_connected_aggregate`` stays
bit-identical to its pre-weights behavior.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

import numpy as np
from scipy.optimize import brentq

from ..exceptions import ConvergenceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.params import GameParameters, Prices

__all__ = ["solve_connected_aggregate",
           "solve_weighted_connected_aggregate", "AggregateSolution"]

#: Budget slack below which the constraint is treated as free (the
#: scalar kernel's ``_TOL``).
_TOL = 1e-13

#: ``brentq`` settings for the consistency roots: effectively exact.
_XTOL = 1e-30
_RTOL = 8.9e-16

#: Bisection sweeps for the per-miner budget multipliers.
_LAM_SWEEPS = 110


class AggregateSolution(Tuple[np.ndarray, np.ndarray, int]):
    """``(e, c, evaluations)`` — kept as a named tuple subclass so the
    solver can report its work without a new dataclass."""

    __slots__ = ()

    def __new__(cls, e: np.ndarray, c: np.ndarray,
                evals: int) -> "AggregateSolution":
        return super().__new__(cls, (e, c, evals))

    @property
    def e(self) -> np.ndarray:
        return self[0]

    @property
    def c(self) -> np.ndarray:
        return self[1]

    @property
    def evals(self) -> int:
        return self[2]


def _wsum(values: np.ndarray,
          weights: Optional[np.ndarray]) -> float:
    """``Σ values`` (unweighted) or ``Σ w · values`` (type space).

    The ``None`` branch is the exact pre-weights summation, keeping the
    unweighted kernel bit-identical.
    """
    if weights is None:
        return float(np.sum(values))
    return float(np.sum(weights * values))


def _solve_single_pool(n: int, k_tot: float, a: float, caps: np.ndarray,
                       counter: List[int],
                       weights: Optional[np.ndarray] = None) -> np.ndarray:
    """Consistency root of a one-pool aggregative game.

    Every miner plays ``s_i(T) = clip(T - a T²/k_tot, 0, cap_i)``
    against total ``T``; returns the profile at the total solving
    ``Σ s_i(T) = T``.  ``Σ s_i(T)/T`` is decreasing in ``T`` (each
    clipped share is), so the excess response is single-crossing.
    With ``weights``, rows are budget types and the consistency sum is
    the multiplicity-weighted ``Σ w_i s_i(T)``.
    """
    t_hi = k_tot / a

    def profile(t: float) -> np.ndarray:
        return np.clip(t - a * t * t / k_tot, 0.0, caps)

    def excess(t: float) -> float:
        counter[0] += 1
        return _wsum(profile(t), weights) - t

    t_lo = t_hi * 1e-15
    if excess(t_lo) <= 0.0:
        return np.zeros(n)
    t_star = float(brentq(excess, t_lo, t_hi, xtol=_XTOL, rtol=_RTOL))
    return profile(t_star)


def _lane_responses(S: float, E: float, lam: np.ndarray,
                    a_e0: np.ndarray, a_c0: np.ndarray,
                    ks: float, kg: float, p_e: float, p_c: float
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-miner KKT responses at totals ``(S, E)``, multipliers ``λ``.

    Mirrors the scalar ``_candidate`` branch order: a non-positive
    effective premium forces edge-only; otherwise the interior linear
    system is tried and negative coordinates drop to the cloud-only or
    edge-only corner (``e < 0`` checked before ``c < 0``).
    """
    A = ks / (S * S)
    Bm = kg / (E * E)
    a_c = a_c0 + lam * p_c
    a_e = a_e0 + lam * p_e
    da = a_e - a_c
    s_int = S - a_c / A
    e_int = E - da / Bm
    c_int = s_int - e_int
    cloud = (da > 0.0) & (e_int < 0.0)
    edge = (da <= 0.0) | ((da > 0.0) & (e_int >= 0.0) & (c_int < 0.0))
    e = np.where(cloud | edge, 0.0, np.maximum(e_int, 0.0))
    c = np.where(cloud, np.maximum(s_int, 0.0),
                 np.where(edge, 0.0, np.maximum(c_int, 0.0)))
    if np.any(edge):
        e_eo = (A * S + Bm * E - a_e) / (A + Bm)
        e = np.where(edge, np.maximum(e_eo, 0.0), e)
    return e, c


def _budget_responses(S: float, E: float, budgets: np.ndarray,
                      a_e0: np.ndarray, a_c0: np.ndarray, ks: float,
                      kg: float, p_e: float, p_c: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Responses at totals ``(S, E)`` with budget multipliers resolved.

    Unconstrained lanes keep ``λ = 0``; over-budget lanes get their
    multiplier from bracket-doubling + bisection on the (strictly
    decreasing, piecewise-linear) spending curve.
    """
    zero = np.zeros_like(budgets)
    e, c = _lane_responses(S, E, zero, a_e0, a_c0, ks, kg, p_e, p_c)
    spend = p_e * e + p_c * c
    over = spend > budgets + _TOL
    if not np.any(over):
        return e, c
    bb = budgets[over]
    ae = a_e0[over]
    ac = a_c0[over]

    def lane_spend(lam: np.ndarray) -> np.ndarray:
        es, cs = _lane_responses(S, E, lam, ae, ac, ks, kg, p_e, p_c)
        return p_e * es + p_c * cs

    lo = np.zeros_like(bb)
    hi = np.ones_like(bb)
    for _ in range(70):
        grow = lane_spend(hi) > bb
        if not np.any(grow):
            break
        lo = np.where(grow, hi, lo)
        hi = np.where(grow, 2.0 * hi, hi)
        if np.any(hi > 1e18):
            raise ConvergenceError(
                "budget multiplier bracket diverged in aggregate kernel")
    else:
        if np.any(lane_spend(hi) > bb):
            raise ConvergenceError(
                "budget multiplier bracket diverged in aggregate kernel")
    for _ in range(_LAM_SWEEPS):
        mid = 0.5 * (lo + hi)
        if np.all((mid <= lo) | (mid >= hi)):
            break
        high = lane_spend(mid) > bb
        lo = np.where(high, mid, lo)
        hi = np.where(high, hi, mid)
    es, cs = _lane_responses(S, E, 0.5 * (lo + hi), ae, ac, ks, kg,
                             p_e, p_c)
    e[over] = es
    c[over] = cs
    return e, c


def solve_connected_aggregate(params: "GameParameters", prices: "Prices",
                              nu: float = 0.0) -> AggregateSolution:
    """Connected-mode NEP equilibrium via aggregate consistency.

    Args:
        params: :class:`~repro.core.params.GameParameters`.
        prices: :class:`~repro.core.params.Prices`.
        nu: Shared-capacity multiplier of the GNEP decomposition — the
            perceived edge price becomes ``p_e + nu`` while the budget
            is charged at ``p_e`` (exactly as in the scalar kernel).

    Returns:
        :class:`AggregateSolution` — the profile plus the number of
        consistency-function evaluations performed.
    """
    return _solve_aggregate(
        budgets=np.asarray(params.budget_array, dtype=float),
        weights=None,
        reward=float(params.reward),
        beta=float(params.fork_rate),
        gamma=float(params.fork_rate) * float(params.effective_h),
        p_e=float(prices.p_e), p_c=float(prices.p_c), nu=float(nu))


def solve_weighted_connected_aggregate(
        budgets: np.ndarray, weights: np.ndarray, reward: float,
        fork_rate: float, gamma: float, p_e: float, p_c: float,
        nu: float = 0.0) -> AggregateSolution:
    """Type-space equilibrium of the weighted connected-mode NEP.

    Solves the game in which ``weights[t]`` identical miners share the
    budget ``budgets[t]`` — exactly the game obtained by replacing a
    heterogeneous population with its bucket representatives.  By the
    uniqueness of the equilibrium (Theorem 2) and the symmetry of
    identical miners, the returned per-type profile *is* the exact
    per-miner equilibrium of that bucketed game.

    Args:
        budgets: Type budgets, shape ``(k,)``, strictly positive.
        weights: Miner multiplicity per type, shape ``(k,)``, positive
            (fractional weights are allowed; the sums only need
            ``Σ w_t``-linearity).
        reward: Mining reward ``R``.
        fork_rate: Fork rate ``β``.
        gamma: Edge-bonus coefficient ``β·h`` (``h`` already the
            effective satisfaction probability).
        p_e: Edge unit price ``P_e``.
        p_c: Cloud unit price ``P_c``.
        nu: Shared-capacity multiplier (perceived edge price mark-up).

    Returns:
        :class:`AggregateSolution` with per-**type** profiles of shape
        ``(k,)``.
    """
    budgets = np.asarray(budgets, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if budgets.ndim != 1 or budgets.shape != weights.shape:
        raise ValueError(
            f"budgets and weights must be matching 1-D arrays, got "
            f"shapes {budgets.shape} and {weights.shape}")
    if np.any(budgets <= 0.0):
        raise ValueError("all type budgets must be positive")
    if np.any(weights <= 0.0):
        raise ValueError("all type weights must be positive")
    return _solve_aggregate(budgets=budgets, weights=weights,
                            reward=float(reward), beta=float(fork_rate),
                            gamma=float(gamma), p_e=float(p_e),
                            p_c=float(p_c), nu=float(nu))


def _solve_aggregate(budgets: np.ndarray,
                     weights: Optional[np.ndarray], reward: float,
                     beta: float, gamma: float, p_e: float, p_c: float,
                     nu: float) -> AggregateSolution:
    """Shared unweighted/weighted consistency solve (see callers)."""
    n = int(budgets.shape[0])
    n_eff = float(n) if weights is None else float(np.sum(weights))
    q_e = p_e + nu
    q_c = p_c
    ks = reward * (1.0 - beta)
    kg = reward * gamma

    zeros = np.zeros(n)
    if n_eff < 2 or ks <= 0.0:
        # A lone miner earns the whole (1-β) share regardless of effort
        # (and the ē=0 model discontinuity zeroes the edge bonus), so
        # its exact best response to empty opposition is inactivity —
        # the same fixed point the sweeping solvers reach.
        return AggregateSolution(zeros, zeros.copy(), 0)

    counter = [0]
    if kg <= 0.0:
        # No edge bonus: one pool at the cheaper objective price (the
        # scalar kernel's a_e < a_c tie-break sends ties to the cloud).
        if q_e < q_c:
            s = _solve_single_pool(n, ks, q_e, budgets / p_e, counter,
                                   weights)
            return AggregateSolution(s, zeros, counter[0])
        s = _solve_single_pool(n, ks, q_c, budgets / p_c, counter,
                               weights)
        return AggregateSolution(zeros, s, counter[0])

    if q_e <= q_c:
        # Edge no pricier but strictly more valuable: cloud dominated,
        # single pool with stacked marginal value ks + kg at price q_e.
        s = _solve_single_pool(n, ks + kg, q_e, budgets / p_e, counter,
                               weights)
        return AggregateSolution(s.copy(), zeros, counter[0])

    # General two-pool case: nested consistency roots.
    a_e0 = np.full(n, q_e)
    a_c0 = np.full(n, q_c)
    dq = q_e - q_c

    def totals_at(S: float, E: float) -> Tuple[float, float,
                                               np.ndarray, np.ndarray]:
        counter[0] += 1
        e, c = _budget_responses(S, E, budgets, a_e0, a_c0, ks, kg,
                                 p_e, p_c)
        e_tot = _wsum(e, weights)
        return e_tot, e_tot + _wsum(c, weights), e, c

    def s_excess_factory(E: float) -> Callable[[float], float]:
        def s_excess(S: float) -> float:
            _, s_tot, _, _ = totals_at(S, E)
            return s_tot - S
        return s_excess

    def inner_S(E: float) -> float:
        """Total-spending consistency root ``S(E)`` (0 if none)."""
        s_excess = s_excess_factory(E)
        hi = ks / q_c
        for _ in range(200):
            if s_excess(hi) < 0.0:
                break
            hi *= 2.0
        else:
            raise ConvergenceError(
                "aggregate kernel could not bracket total demand")
        lo = (ks / q_c) * 1e-15
        if s_excess(lo) <= 0.0:
            return 0.0
        return float(brentq(s_excess, lo, hi, xtol=_XTOL, rtol=_RTOL))

    def e_excess(E: float) -> float:
        S = inner_S(E)
        if S <= 0.0:
            return -E
        e_tot, _, _, _ = totals_at(S, E)
        return e_tot - E

    e_hi = kg / dq
    for _ in range(200):
        if e_excess(e_hi) < 0.0:
            break
        e_hi *= 2.0
    else:
        raise ConvergenceError(
            "aggregate kernel could not bracket edge demand")
    e_lo = (kg / dq) * 1e-15
    if e_excess(e_lo) <= 0.0:
        # Edge pool empty at equilibrium (possible only through budget
        # degeneracies); the cloud-only game remains one-dimensional.
        s = _solve_single_pool(n, ks, q_c, budgets / p_c, counter,
                               weights)
        return AggregateSolution(zeros, s, counter[0])
    e_star = float(brentq(e_excess, e_lo, e_hi, xtol=_XTOL, rtol=_RTOL))
    s_star = inner_S(e_star)
    _, _, e, c = totals_at(s_star, e_star)
    return AggregateSolution(e, c, counter[0])
