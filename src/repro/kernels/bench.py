"""Perf-trajectory harness for the solver kernels.

:func:`run_bench` times the equilibrium solvers across kernels
(``scalar`` / ``running`` / ``vectorized``) and problem sizes, collects
operator-eval counts from the telemetry registry, and packages
everything into a JSON-serializable :class:`BenchReport`
(``BENCH_solvers.json`` at the repo root is the committed trajectory).
:func:`compare_reports` checks a fresh report against a stored baseline
with a configurable regression tolerance; the comparison is
machine-independent because both reports are normalized by the
geometric mean of their shared cases before medians are compared, so a
uniformly faster or slower machine shifts every case equally and
cancels out.

Honesty rules (no silent caps):

* The sweeping kernels (``scalar``, ``running``) contract at
  ``1 - O(1/n)`` and need ``~30 n`` sweeps, so full solves at
  ``n >= 256`` take minutes.  Those cases run with an explicit sweep
  cap (``max_iter``), are flagged ``capped`` in the report, and every
  derived speedup is therefore a *lower bound* (the capped scalar time
  undercounts the true scalar solve).
* Standalone-decomposition and extragradient cases that would be
  impractically slow at large ``n`` are skipped entirely and listed in
  the report's ``notes``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (TYPE_CHECKING, Any, Callable, Dict, List,
                    Optional, Sequence, Tuple, Union)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.nep import MinerEquilibrium
    from ..core.params import GameParameters, Prices

__all__ = ["BenchCaseResult", "BenchReport", "run_bench",
           "compare_reports", "load_report", "write_report"]

#: Version stamp of the JSON schema (bump on incompatible changes).
SCHEMA_VERSION = 1

#: Problem sizes of the full benchmark run.
DEFAULT_SIZES = (8, 64, 256, 1024)

#: Problem sizes of the ``--quick`` run (CI smoke).
QUICK_SIZES = (8, 64)

#: From this miner count on, the sweeping kernels run with a sweep cap.
SWEEP_CAP_AT = 256

#: The explicit sweep cap (``max_iter``) applied at ``SWEEP_CAP_AT``.
SWEEP_CAP = 150

#: Largest size the scalar standalone decomposition is benchmarked at —
#: every shadow-price evaluation is a full inner NEP solve, so larger
#: sizes take minutes per repeat.
STANDALONE_SCALAR_MAX_N = 8

#: Largest size the extragradient cases are benchmarked at.
EXTRAGRADIENT_MAX_N = 8

#: Miner counts of the compressed type-space cases (full runs only).
TYPESPACE_SIZES = (10_000, 100_000, 1_000_000)

#: Type count of the compressed cases (see
#: :mod:`repro.kernels.typespace`).
TYPESPACE_K = 512

#: Largest type-space size the exact vectorized reference also runs at
#: (the differential anchor; beyond it the exact solve is only skipped
#: with a note, never silently).
TYPESPACE_EXACT_MAX_N = 10_000

_SOLVERS = ("connected", "standalone", "extragradient")


@dataclass
class BenchCaseResult:
    """Timing and convergence record of one (solver, kernel, n) case.

    Attributes:
        solver: ``"connected"``, ``"standalone"``, or
            ``"extragradient"``.
        kernel: Kernel the case ran with (``scalar`` / ``running`` /
            ``vectorized``).
        n: Miner count.
        median_s: Median wall-clock seconds over ``repeats`` solves.
        p95_s: Interpolated 95th-percentile wall clock.
        repeats: Number of timed solves.
        converged: Whether the final solve reported convergence
            (capped sweeping cases legitimately report ``False``).
        iterations: Iteration count of the final solve (sweeps for the
            sweeping kernels, consistency evals for the aggregate
            kernel, extragradient steps for the VI).
        max_iter: Iteration budget the case ran with.
        capped: True when ``max_iter`` was deliberately lowered to keep
            the case tractable; timings are then lower bounds on the
            uncapped solve.
        counters: Operator-eval counts from one telemetry-instrumented
            solve — ``br_sweeps`` (best-response sweeps / kernel
            solves) and ``operator_evals`` (VI operator evaluations).
        error_bound: Certified approximation bound of a compressed
            type-space case (``None`` for exact cases) — the report
            never presents an approximate solve as exact.
    """

    solver: str
    kernel: str
    n: int
    median_s: float
    p95_s: float
    repeats: int
    converged: bool
    iterations: int
    max_iter: int
    capped: bool
    counters: Dict[str, int] = field(default_factory=dict)
    error_bound: Optional[float] = None

    @property
    def case_id(self) -> str:
        """Stable identifier used to match cases across reports."""
        return f"{self.solver}/{self.kernel}/n={self.n}"


@dataclass
class BenchReport:
    """One benchmark run: settings, cases, and derived speedups.

    Attributes:
        schema: JSON schema version (:data:`SCHEMA_VERSION`).
        quick: Whether this was a ``--quick`` (CI smoke) run.
        repeats: Timed solves per case.
        sizes: Miner counts the run covered.
        cases: Per-case results (see :class:`BenchCaseResult`).
        speedups: ``{"<solver>/n=<n>": scalar_median /
            vectorized_median}`` for every size where both kernels ran.
        notes: Human-readable record of every cap and skip — a report
            never truncates coverage silently.
    """

    schema: int = SCHEMA_VERSION
    quick: bool = False
    repeats: int = 0
    sizes: List[int] = field(default_factory=list)
    cases: List[BenchCaseResult] = field(default_factory=list)
    speedups: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchReport":
        """Rebuild a report from :meth:`to_dict` output."""
        cases = [BenchCaseResult(**c) for c in payload.get("cases", [])]
        return cls(schema=int(payload.get("schema", SCHEMA_VERSION)),
                   quick=bool(payload.get("quick", False)),
                   repeats=int(payload.get("repeats", 0)),
                   sizes=[int(s) for s in payload.get("sizes", [])],
                   cases=cases,
                   speedups={str(k): float(v) for k, v in
                             payload.get("speedups", {}).items()},
                   notes=[str(x) for x in payload.get("notes", [])])

    def summary_lines(self) -> List[str]:
        """Fixed-width table of the cases, for terminal output."""
        lines = [f"{'case':34s} {'median':>11s} {'p95':>11s} "
                 f"{'iters':>6s} {'conv':>5s} {'cap':>4s}"]
        for case in self.cases:
            lines.append(
                f"{case.case_id:34s} {case.median_s * 1e3:9.2f}ms "
                f"{case.p95_s * 1e3:9.2f}ms {case.iterations:6d} "
                f"{'yes' if case.converged else 'NO':>5s} "
                f"{'yes' if case.capped else '-':>4s}")
        for key in sorted(self.speedups):
            if key.endswith("/typespace"):
                what = "exact vectorized / typespace"
            elif key.endswith("/multiscenario"):
                what = "serial vectorized / batched"
            else:
                what = "scalar / vectorized"
            lines.append(f"speedup {key}: {self.speedups[key]:.1f}x "
                         f"({what})")
        return lines


def _p95(samples: Sequence[float]) -> float:
    """Interpolated 95th percentile of a small sample."""
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = 0.95 * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


def _collect_counters(solve: Callable[[], object]) -> Dict[str, int]:
    """Run one instrumented solve and harvest operator-eval counters.

    Opens a fresh (reset) telemetry window, so this must not run inside
    an enabled telemetry session the caller wants to keep.
    """
    from ..telemetry import telemetry_session

    with telemetry_session() as tel:
        solve()
        snapshot = tel.metrics.snapshot()
    counters: Dict[str, int] = {}
    sweeps = snapshot.get("br_sweep_seconds")
    if sweeps is not None:
        counters["br_sweeps"] = int(sum(
            entry["count"] for entry in sweeps["values"]))
    evals = snapshot.get("vi_operator_evals_total")
    if evals is not None:
        counters["operator_evals"] = int(sum(
            entry["value"] for entry in evals["values"]))
    return counters


def _time_case(solver: str, kernel: str, n: int,
               solve: Callable[[], object], repeats: int,
               max_iter: int, capped: bool) -> BenchCaseResult:
    """Time ``repeats`` cold solves plus one instrumented solve."""
    times: List[float] = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = solve()
        times.append(time.perf_counter() - start)
    report = getattr(result, "report", None)
    converged = bool(getattr(report, "converged", True))
    iterations = int(getattr(report, "iterations", 0))
    bound = getattr(result, "error_bound", None)
    times.sort()
    median = times[len(times) // 2] if len(times) % 2 else \
        0.5 * (times[len(times) // 2 - 1] + times[len(times) // 2])
    return BenchCaseResult(
        solver=solver, kernel=kernel, n=n, median_s=median,
        p95_s=_p95(times), repeats=repeats, converged=converged,
        iterations=iterations, max_iter=max_iter, capped=capped,
        counters=_collect_counters(solve),
        error_bound=None if bound is None else float(bound))


def _connected_cases(sizes: Sequence[int], repeats: int,
                     notes: List[str]) -> List[BenchCaseResult]:
    from ..core.nep import solve_connected_equilibrium
    from ..core.params import Prices, homogeneous

    prices = Prices(p_e=2.0, p_c=1.0)
    out = []
    for n in sizes:
        params = homogeneous(n, 200.0, reward=1000.0, fork_rate=0.2,
                             h=0.8)
        for kernel in ("scalar", "running", "vectorized"):
            capped = kernel != "vectorized" and n >= SWEEP_CAP_AT
            max_iter = SWEEP_CAP if capped else 3000
            if capped:
                notes.append(
                    f"connected/{kernel}/n={n}: sweep cap max_iter="
                    f"{SWEEP_CAP} (full solve needs ~{30 * n} sweeps); "
                    f"timings and derived speedups are lower bounds")

            def solve(params: "GameParameters" = params,
                      kernel: str = kernel,
                      max_iter: int = max_iter) -> "MinerEquilibrium":
                return solve_connected_equilibrium(
                    params, prices, max_iter=max_iter, kernel=kernel)

            out.append(_time_case("connected", kernel, n, solve,
                                  repeats, max_iter, capped))
    return out


def _standalone_cases(sizes: Sequence[int], repeats: int,
                      notes: List[str]) -> List[BenchCaseResult]:
    from ..core.gnep import solve_standalone_equilibrium
    from ..core.params import EdgeMode, Prices, homogeneous

    prices = Prices(p_e=2.0, p_c=1.0)
    out = []
    for n in sizes:
        params = homogeneous(n, 1000.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=80.0)
        for kernel in ("scalar", "vectorized"):
            if kernel == "scalar" and n > STANDALONE_SCALAR_MAX_N:
                notes.append(
                    f"standalone/scalar/n={n}: skipped (every "
                    f"shadow-price evaluation is a full inner NEP "
                    f"solve; minutes per repeat at this size)")
                continue

            def solve(params: "GameParameters" = params,
                      kernel: str = kernel) -> "MinerEquilibrium":
                return solve_standalone_equilibrium(params, prices,
                                                    kernel=kernel)

            out.append(_time_case("standalone", kernel, n, solve,
                                  repeats, 3000, False))
    return out


def _extragradient_cases(sizes: Sequence[int], repeats: int,
                         notes: List[str]) -> List[BenchCaseResult]:
    from ..core.gnep import solve_standalone_extragradient
    from ..core.params import EdgeMode, Prices, homogeneous

    prices = Prices(p_e=2.0, p_c=1.0)
    out = []
    for n in sizes:
        if n > EXTRAGRADIENT_MAX_N:
            notes.append(f"extragradient/n={n}: skipped (tens of "
                         f"thousands of projection steps at this size)")
            continue
        params = homogeneous(n, 1000.0, reward=1000.0, fork_rate=0.2,
                             mode=EdgeMode.STANDALONE, e_max=80.0)
        for kernel in ("scalar", "vectorized"):

            def solve(params: "GameParameters" = params,
                      kernel: str = kernel) -> "MinerEquilibrium":
                return solve_standalone_extragradient(params, prices,
                                                      kernel=kernel)

            out.append(_time_case("extragradient", kernel, n, solve,
                                  repeats, 50000, False))
    return out


#: Scenario count of the cross-scenario batched cases.
MULTISCENARIO_BATCH = 64


def _multiscenario_cases(sizes: Sequence[int], repeats: int,
                         notes: List[str]) -> List[BenchCaseResult]:
    """Cross-scenario batched solves vs the same grid solved serially.

    Each size times one :data:`MULTISCENARIO_BATCH`-scenario sweep grid
    (a deterministic budget x reward x price lattice around the
    connected base case) twice: ``kernel="multiscenario"`` solves the
    whole grid in one batched kernel call,
    ``kernel="multiscenario-serial"`` loops ``kernel="vectorized"``
    solves over the identical scenarios.  The two are bit-identical by
    construction (the equivalence suite pins this), so the ratio is a
    pure dispatch/batching win.  Sizes past the batching crossover
    (:data:`~repro.kernels.multiscenario.MULTISCENARIO_MAX_N`) are
    note-skipped: the serving engine declines to auto-batch them, so
    timing them would gate a path nothing takes.
    """
    from types import SimpleNamespace

    from ..core.nep import solve_connected_equilibrium
    from ..core.params import Prices, homogeneous
    from .multiscenario import (MULTISCENARIO_MAX_N,
                                solve_connected_multiscenario)

    out = []
    for n in sizes:
        if n > MULTISCENARIO_MAX_N:
            notes.append(
                f"connected/multiscenario/n={n}: skipped — past the "
                f"batching crossover (MULTISCENARIO_MAX_N="
                f"{MULTISCENARIO_MAX_N}); a solo vectorized solve is "
                f"already efficient at this size and the engine's "
                f"auto-batching declines it too")
            continue
        scenarios: List[Tuple[GameParameters, Prices]] = []
        for i in range(MULTISCENARIO_BATCH):
            params = homogeneous(n, 200.0 + 2.0 * i, reward=1000.0 + 5.0 * i,
                                 fork_rate=0.2, h=0.8)
            prices = Prices(p_e=2.0 + 0.005 * i, p_c=1.0 + 0.002 * i)
            scenarios.append((params, prices))

        def solve_batched(
                scenarios: List[Tuple[GameParameters, Prices]]
                = scenarios) -> object:
            results = solve_connected_multiscenario(scenarios)
            iters = [r.report.iterations for r in results
                     if r is not None]
            return SimpleNamespace(report=SimpleNamespace(
                converged=all(r is not None for r in results),
                iterations=max(iters, default=0)))

        def solve_serial(
                scenarios: List[Tuple[GameParameters, Prices]]
                = scenarios) -> object:
            results = [solve_connected_equilibrium(p, pr,
                                                   kernel="vectorized")
                       for p, pr in scenarios]
            return SimpleNamespace(report=SimpleNamespace(
                converged=all(r.report.converged for r in results),
                iterations=max(r.report.iterations for r in results)))

        notes.append(
            f"connected/multiscenario/n={n}: "
            f"{MULTISCENARIO_BATCH}-scenario grid per solve; the "
            f"-serial twin solves the identical grid one scenario at "
            f"a time with kernel=vectorized")
        out.append(_time_case("connected", "multiscenario", n,
                              solve_batched, repeats, 3000, False))
        out.append(_time_case("connected", "multiscenario-serial", n,
                              solve_serial, repeats, 3000, False))
    return out


def _typespace_cases(sizes: Sequence[int], repeats: int,
                     notes: List[str]) -> List[BenchCaseResult]:
    """Compressed connected-mode cases on heterogeneous populations.

    Budgets are drawn once from a seeded lognormal (deterministic
    across runs and machines), so the committed report's error bounds
    are reproducible.  At every size the compressed case runs with
    ``k = TYPESPACE_K`` types; the exact vectorized reference runs
    alongside it up to :data:`TYPESPACE_EXACT_MAX_N` and is skipped
    with a note above that (the differential test suite anchors
    correctness at small n instead).
    """
    import numpy as np

    from ..core.nep import solve_connected_equilibrium
    from ..core.params import GameParameters, Prices

    prices = Prices(p_e=2.0, p_c=1.0)
    out = []
    for n in sizes:
        # Reward scales with n so per-miner equilibrium spending stays
        # O(1/n) *relative to the drawn budgets*: a heterogeneous
        # fraction of the population is genuinely budget-bound at every
        # size (the hard mixed regime), instead of budgets going slack
        # and the compression degenerating to the homogeneous case.
        rng = np.random.default_rng(20260809 + n)
        budgets = (600.0 / n) * rng.lognormal(mean=0.0, sigma=0.75,
                                              size=n)
        params = GameParameters(reward=1000.0 * n, fork_rate=0.2,
                                budgets=budgets, h=0.8)
        k = min(TYPESPACE_K, n)

        def solve_compressed(params: "GameParameters" = params,
                             k: int = k) -> "MinerEquilibrium":
            return solve_connected_equilibrium(
                params, prices, kernel="vectorized", n_types=k)

        case = _time_case("connected", "typespace", n,
                          solve_compressed, repeats, 3000, False)
        notes.append(
            f"connected/typespace/n={n}: k={k} compressed solve, "
            f"certified per-coordinate error bound "
            f"{case.error_bound if case.error_bound is not None else 0.0:.3e}"
            f" (approximate, not exact)")
        out.append(case)

        if n <= TYPESPACE_EXACT_MAX_N:

            def solve_exact(params: "GameParameters" = params
                            ) -> "MinerEquilibrium":
                return solve_connected_equilibrium(
                    params, prices, kernel="vectorized")

            out.append(_time_case("connected", "vectorized-het", n,
                                  solve_exact, repeats, 3000, False))
        else:
            notes.append(
                f"connected/vectorized-het/n={n}: exact per-miner "
                f"reference skipped (O(n) per consistency eval at "
                f"n={n}; correctness is anchored by the differential "
                f"suite at small n and the certified bound)")
    return out


def run_bench(sizes: Optional[Sequence[int]] = None,
              repeats: Optional[int] = None,
              quick: bool = False,
              solvers: Optional[Sequence[str]] = None,
              typespace_sizes: Optional[Sequence[int]] = None,
              multiscenario: bool = False) -> BenchReport:
    """Run the kernel benchmark suite and return a :class:`BenchReport`.

    Args:
        sizes: Miner counts to cover; defaults to
            :data:`QUICK_SIZES` when ``quick`` else
            :data:`DEFAULT_SIZES`.
        repeats: Timed solves per case (median/p95 statistics);
            defaults to 3 when ``quick`` else 5.
        quick: CI-smoke preset — small sizes, fewer repeats.
        solvers: Subset of ``("connected", "standalone",
            "extragradient")`` to run; ``None`` runs all three.
        typespace_sizes: Miner counts of the compressed type-space
            cases (heterogeneous budgets, ``k = TYPESPACE_K``);
            defaults to :data:`TYPESPACE_SIZES` on full *preset* runs
            (``sizes=None``, not ``quick``) and to none otherwise.
            Pass an empty sequence to skip explicitly.
        multiscenario: Also time the cross-scenario batched kernel
            against a serial loop over the identical scenario grid at
            every size (:func:`_multiscenario_cases`).

    Each case is also solved once inside a fresh telemetry session to
    record operator-eval counters (sweeps, VI operator evaluations);
    see the module docstring for the capping policy.
    """
    preset_run = sizes is None
    if sizes is None:
        sizes = QUICK_SIZES if quick else DEFAULT_SIZES
    sizes = [int(n) for n in sizes]
    if any(n < 2 for n in sizes):
        raise ValueError(f"sizes need at least 2 miners, got {sizes}")
    if repeats is None:
        repeats = 3 if quick else 5
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    chosen = _SOLVERS if solvers is None else tuple(solvers)
    unknown = [s for s in chosen if s not in _SOLVERS]
    if unknown:
        raise ValueError(f"unknown solvers {unknown}; pick from "
                         f"{_SOLVERS}")
    if typespace_sizes is None:
        typespace_sizes = (TYPESPACE_SIZES
                           if preset_run and not quick else ())
    typespace_sizes = [int(n) for n in typespace_sizes]
    if any(n < 2 for n in typespace_sizes):
        raise ValueError(
            f"typespace sizes need at least 2 miners, got "
            f"{typespace_sizes}")

    notes: List[str] = []
    cases: List[BenchCaseResult] = []
    if "connected" in chosen:
        cases.extend(_connected_cases(sizes, repeats, notes))
    if "standalone" in chosen:
        cases.extend(_standalone_cases(sizes, repeats, notes))
    if "extragradient" in chosen:
        cases.extend(_extragradient_cases(sizes, repeats, notes))
    if "connected" in chosen and multiscenario:
        cases.extend(_multiscenario_cases(sizes, repeats, notes))
    if "connected" in chosen and typespace_sizes:
        cases.extend(_typespace_cases(typespace_sizes, repeats, notes))

    by_id = {c.case_id: c for c in cases}
    speedups: Dict[str, float] = {}
    for case in cases:
        if case.median_s <= 0:
            continue
        if case.kernel == "vectorized":
            scalar = by_id.get(f"{case.solver}/scalar/n={case.n}")
            if scalar is not None and scalar.median_s > 0:
                speedups[f"{case.solver}/n={case.n}"] = \
                    scalar.median_s / case.median_s
        elif case.kernel == "multiscenario":
            serial = by_id.get(
                f"{case.solver}/multiscenario-serial/n={case.n}")
            if serial is not None and serial.median_s > 0:
                speedups[f"{case.solver}/n={case.n}/multiscenario"] = \
                    serial.median_s / case.median_s
        elif case.kernel == "typespace":
            exact = by_id.get(
                f"{case.solver}/vectorized-het/n={case.n}")
            if exact is not None and exact.median_s > 0:
                speedups[f"{case.solver}/n={case.n}/typespace"] = \
                    exact.median_s / case.median_s
    return BenchReport(schema=SCHEMA_VERSION, quick=quick,
                       repeats=repeats, sizes=sizes, cases=cases,
                       speedups=speedups, notes=notes)


def compare_reports(current: BenchReport, baseline: BenchReport,
                    tolerance: float = 0.25) -> List[str]:
    """Regression check of ``current`` against ``baseline``.

    Both reports are normalized by the geometric mean of the median
    times over their *shared* cases (same ``case_id``, same capping
    state, and same convergence state), which cancels uniform
    machine-speed differences; a case regresses when its normalized
    median grew by more than ``tolerance`` (relative).  Returns one
    human-readable line per regression — an empty list means the check
    passed.

    A case that converged in the baseline but not in the current run
    is **never** silently dropped into the geomean: it is excluded
    from normalization (its timing is meaningless — it gave up, it did
    not finish) *and* reported as a regression in its own right.
    Capped sweeping cases legitimately report non-convergence in both
    reports and stay comparable; an uncapped case losing convergence
    is a correctness regression, not a timing artifact.

    The common set itself is policed: a baseline case absent from the
    current run is a coverage regression **unless** the whole
    ``(solver, n)`` combination is absent (a deliberate subset run —
    different ``--sizes``/solvers), the kernel label appears nowhere
    in the current run (an opt-in case family the run did not attempt,
    e.g. ``bench`` without ``--multiscenario`` compared against a full
    baseline), or that combination gained a kernel label the baseline
    lacks (a rename: e.g. rows migrating to ``auto``/``multiscenario``
    labels).  Renamed and brand-new labels enter future baselines as
    new cases instead of silently shrinking the geomean gate.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    cur = {c.case_id: c for c in current.cases}
    base = {c.case_id: c for c in baseline.cases}
    regressions = []
    cur_kernels: Dict[tuple, set] = {}
    base_kernels: Dict[tuple, set] = {}
    for c in current.cases:
        cur_kernels.setdefault((c.solver, c.n), set()).add(c.kernel)
    for c in baseline.cases:
        base_kernels.setdefault((c.solver, c.n), set()).add(c.kernel)
    all_cur_kernels = {c.kernel for c in current.cases}
    for key in sorted(set(base) - set(cur)):
        lost = base[key]
        combo = (lost.solver, lost.n)
        if combo not in cur_kernels:
            continue  # subset run: the whole (solver, n) was skipped
        if lost.kernel not in all_cur_kernels:
            continue  # case family not attempted by this run at all
        if cur_kernels[combo] - base_kernels.get(combo, set()):
            continue  # kernel label renamed/superseded: new, not missing
        regressions.append(
            f"{key}: case missing from the current run with no "
            f"replacement kernel at {lost.solver}/n={lost.n} "
            f"(coverage shrank)")
    for key in sorted(set(cur) & set(base)):
        if base[key].converged and not cur[key].converged:
            regressions.append(
                f"{key}: did not converge (baseline converged; "
                f"excluded from the timing geomean)")
    common = sorted(
        key for key in cur
        if key in base
        and cur[key].capped == base[key].capped
        and cur[key].converged == base[key].converged
        and cur[key].median_s > 0 and base[key].median_s > 0)
    if len(common) < 2:
        # One shared case normalizes to exactly 1.0 against itself;
        # nothing meaningful to compare.
        return regressions

    def geomean(values: List[float]) -> float:
        return math.exp(sum(math.log(v) for v in values) / len(values))

    norm_cur = geomean([cur[k].median_s for k in common])
    norm_base = geomean([base[k].median_s for k in common])
    for key in common:
        rel_cur = cur[key].median_s / norm_cur
        rel_base = base[key].median_s / norm_base
        if rel_cur > rel_base * (1.0 + tolerance):
            growth = rel_cur / rel_base - 1.0
            regressions.append(
                f"{key}: normalized median {rel_cur:.3f} vs baseline "
                f"{rel_base:.3f} (+{100.0 * growth:.0f}% > "
                f"{100.0 * tolerance:.0f}% tolerance)")
    return regressions


def write_report(report: BenchReport,
                 path: Union[str, Path]) -> Path:
    """Write a report to ``path`` as indented, sorted JSON."""
    path = Path(path)
    path.write_text(json.dumps(report.to_dict(), indent=1,
                               sort_keys=True) + "\n")
    return path


def load_report(path: Union[str, Path]) -> BenchReport:
    """Load a report previously written by :func:`write_report`."""
    return BenchReport.from_dict(json.loads(Path(path).read_text()))
