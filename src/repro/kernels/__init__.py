"""repro.kernels — NumPy-vectorized solver kernels.

The inner solvers of :mod:`repro.core` were written as literal,
per-miner transcriptions of the paper's KKT systems: readable,
bit-stable, and the reference oracle for every golden test — but each
best-response sweep costs ``n`` scalar :func:`scipy.optimize.brentq`
solves plus ``O(n)`` aggregate re-summation per miner.  This package
provides drop-in vectorized kernels behind the same APIs:

* :func:`batched_best_response` — all ``n`` miners' exact best
  responses in one shot: the closed-form Eq. (14) candidates, the
  edge-only marginal equation, and the complementary-slackness budget
  multiplier (Eq. 15) are all evaluated as array programs, with the
  two genuinely implicit pieces (the two-pool edge marginal and the
  budget multiplier) solved by vectorized monotone bisection instead
  of per-miner ``brentq``.
* :func:`jacobi_sweep` — one simultaneous (Jacobi) best-response sweep
  built on the batched kernel: ``O(n)`` aggregate computation plus one
  batched solve, replacing ``n`` scalar solves.
* :func:`gauss_seidel_sweep_running` — the paper's asynchronous
  (Gauss–Seidel) sweep with running aggregates ``E``, ``S`` maintained
  incrementally: ``O(n)`` per sweep instead of the reference path's
  ``O(n^2)`` re-summation.  Within 1 ulp of — but not bit-identical
  to — the reference arithmetic (see ``docs/PERFORMANCE.md``).

Solvers select a kernel via their ``kernel=`` parameter
(:func:`repro.core.nep.solve_connected_equilibrium`,
:func:`repro.core.gnep.solve_standalone_equilibrium`, ...); the scalar
reference path remains the default everywhere except the serving
engine, and the equivalence suite in ``tests/kernels/`` pins the two
to each other within ``1e-9``.

:mod:`repro.kernels.typespace` extends the aggregate kernel to
**million-miner** populations: heterogeneous budgets are quantile-
compressed into ``k`` weighted types
(:mod:`repro.population.compress`), the type-space equilibrium is
solved at ``O(k)`` per consistency evaluation, and a certified
per-coordinate approximation bound is computed from bucket widths
(``docs/SCALING.md``); solvers opt in via ``n_types=``.

:mod:`repro.kernels.multiscenario` batches across the *scenario* axis:
``B`` independent games (a price sweep, a budget sweep, a serving
batch) are solved in one ``(B, n)`` array program with per-scenario
convergence masking, bit-identical to ``B`` separate
``kernel="vectorized"`` solves (``docs/PERFORMANCE.md``).  The solo
vectorized kernel is its ``B = 1`` special case, and the serving
engine's ``batch_mode="multiscenario"`` groups compatible cache misses
into these batched calls.
"""

from .batched_br import (BatchedBestResponse, batched_best_response,
                         gauss_seidel_sweep_running, jacobi_sweep)
from .bench import (BenchCaseResult, BenchReport, compare_reports,
                    load_report, run_bench, write_report)
from .multiscenario import (MULTISCENARIO_MAX_N, BatchAggregateSolution,
                            solve_aggregate_batch,
                            solve_connected_multiscenario)
from .typespace import TypeSpaceSolution, solve_connected_typespace

__all__ = [
    "BatchedBestResponse",
    "batched_best_response",
    "jacobi_sweep",
    "gauss_seidel_sweep_running",
    "TypeSpaceSolution",
    "solve_connected_typespace",
    "BatchAggregateSolution",
    "MULTISCENARIO_MAX_N",
    "solve_aggregate_batch",
    "solve_connected_multiscenario",
    "BenchCaseResult",
    "BenchReport",
    "run_bench",
    "compare_reports",
    "load_report",
    "write_report",
]
