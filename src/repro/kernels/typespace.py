"""Type-space equilibrium solves with certified error bounds.

Scales the connected-mode NEP from thousands to **millions of miners**
by solving in compressed type space:

1. :func:`repro.population.compress.compress_budgets` buckets the
   heterogeneous budget vector into ``k`` weighted types (quantile
   buckets, near-equal head-counts);
2. :func:`repro.kernels.aggregate.solve_weighted_connected_aggregate`
   solves the **bucketed game** — the game in which every miner's
   budget is replaced by its bucket representative — *exactly*: by
   uniqueness (Theorem 2) and the symmetry of identical miners, the
   weighted type solve is the exact per-miner equilibrium of that
   perturbed game, at ``O(k)`` cost per consistency evaluation;
3. the per-type strategies are expanded back to per-miner strategies
   (budget-clipped so no miner's *true* budget is ever violated);
4. an **error bound** against the exact heterogeneous equilibrium is
   certified from two more ``O(k)`` solves: rounding every budget down
   to its bucket floor and up to its bucket ceiling brackets the true
   equilibrium totals (equilibrium totals are monotone in budgets:
   enlarging any miner's feasible set weakly raises each
   single-crossing consistency root), and per-miner responses at fixed
   totals are 1-Lipschitz in each total within a regime, so

   ``|x_i - x_i*| <= (S_hi - S_lo) + (E_hi - E_lo) + width_i / p_min``

   per coordinate, where ``width_i`` is miner ``i``'s bucket width and
   ``p_min = min(P_e, P_c)`` converts a budget perturbation into a
   strategy perturbation.  The width term is charged only to buckets
   whose budget can actually bind: the unconstrained best response is
   a function of the totals alone (a miner's budget enters only
   through its constraint), so a type whose observed spending sits
   below its bucket's *minimum* budget by more than the spending
   travel of the totals bracket, ``(P_e + P_c)(span_S + span_E)``, is
   provably unconstrained at every totals pair in the bracket —
   including the true equilibrium's — and budget rounding cannot move
   it at all.  The implementation uses the *envelope* of the three
   solves (lo/mid/hi), so a numerically inverted bracket widens the
   bound instead of invalidating it.  ``k = n`` (or an
   all-zero-width compression) short-circuits to the exact per-miner
   aggregate solve with a zero bound — bit-for-bit identical to the
   uncompressed ``vectorized`` kernel.

Error-bound semantics, when compression is exact, and the differential
test battery that enforces ``measured error <= reported bound`` are
documented in ``docs/SCALING.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..population.compress import CompressedPopulation, compress_budgets
from .aggregate import (AggregateSolution, solve_connected_aggregate,
                        solve_weighted_connected_aggregate)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.params import GameParameters, Prices

__all__ = ["TypeSpaceSolution", "solve_connected_typespace"]

#: Relative slack added to every certified bound for the (near-machine-
#: precision) consistency-root tolerance of the three inner solves.
_SOLVER_SLACK = 1e-9


@dataclass(frozen=True)
class TypeSpaceSolution:
    """A compressed connected-mode equilibrium with its certificate.

    Attributes:
        e: Per-miner ESP requests, shape ``(n,)`` (expanded,
            budget-clipped).
        c: Per-miner CSP requests, shape ``(n,)``.
        type_e: Per-type ESP requests, shape ``(k,)``.
        type_c: Per-type CSP requests, shape ``(k,)``.
        compression: The bucketing this solve used.
        error_bound: Certified per-coordinate bound on
            ``max_i max(|e_i - e_i*|, |c_i - c_i*|)`` against the exact
            heterogeneous equilibrium (0.0 on the exact path).
        exact: Whether the solution *is* the exact equilibrium
            (identity/zero-width compression).
        evals: Consistency-function evaluations across all solves.
        s_bracket: Envelope ``(S_min, S_max)`` of the total-spending
            aggregate over the lo/mid/hi solves (equal on the exact
            path).
        e_bracket: Envelope ``(E_min, E_max)`` of the edge aggregate.
    """

    e: np.ndarray
    c: np.ndarray
    type_e: np.ndarray
    type_c: np.ndarray
    compression: CompressedPopulation
    error_bound: float
    exact: bool
    evals: int
    s_bracket: Tuple[float, float]
    e_bracket: Tuple[float, float]

    @property
    def total_edge(self) -> float:
        """``E = Σ e_i`` of the expanded profile."""
        return float(np.sum(self.e))

    @property
    def total_cloud(self) -> float:
        """``C = Σ c_i`` of the expanded profile."""
        return float(np.sum(self.c))


def _totals(sol: AggregateSolution,
            weights: np.ndarray) -> Tuple[float, float]:
    """Weighted aggregates ``(S, E)`` of a per-type solution."""
    e_tot = float(np.sum(weights * sol.e))
    return e_tot + float(np.sum(weights * sol.c)), e_tot


def solve_connected_typespace(params: "GameParameters",
                              prices: "Prices",
                              n_types: int,
                              nu: float = 0.0,
                              compression: Optional[
                                  CompressedPopulation] = None,
                              ) -> TypeSpaceSolution:
    """Compressed connected-mode NEP solve with a certified bound.

    Args:
        params: :class:`~repro.core.params.GameParameters` (the full
            heterogeneous population).
        prices: Announced SP prices.
        n_types: Target type count ``k``; ``k >= n`` is the exact
            per-miner path.
        nu: Shared-capacity multiplier of the GNEP decomposition
            (perceived edge price ``P_e + nu``, budget charged at
            ``P_e`` — identical to the exact kernel).
        compression: Pre-computed bucketing to reuse (must match
            ``params.budget_array``); ``None`` computes it.

    Returns:
        :class:`TypeSpaceSolution`.
    """
    if n_types < 1:
        raise ConfigurationError(
            f"n_types must be >= 1, got {n_types}")
    budgets = np.asarray(params.budget_array, dtype=float)
    comp = (compress_budgets(budgets, n_types)
            if compression is None else compression)
    if comp.n != params.n:
        raise ConfigurationError(
            f"compression covers {comp.n} miners, game has {params.n}")

    reward = float(params.reward)
    beta = float(params.fork_rate)
    gamma = beta * float(params.effective_h)
    p_e = float(prices.p_e)
    p_c = float(prices.p_c)

    if comp.is_identity:
        exact_sol = solve_connected_aggregate(params, prices, nu=nu)
        s_tot, e_tot = _totals(exact_sol, np.ones(params.n))
        return TypeSpaceSolution(
            e=np.asarray(exact_sol.e, dtype=float),
            c=np.asarray(exact_sol.c, dtype=float),
            type_e=np.asarray(exact_sol.e, dtype=float),
            type_c=np.asarray(exact_sol.c, dtype=float),
            compression=comp, error_bound=0.0, exact=True,
            evals=exact_sol.evals, s_bracket=(s_tot, s_tot),
            e_bracket=(e_tot, e_tot))

    mid = solve_weighted_connected_aggregate(
        comp.budgets, comp.weights, reward, beta, gamma, p_e, p_c,
        nu=nu)
    s_mid, e_mid = _totals(mid, comp.weights)
    evals = mid.evals

    if comp.max_width == 0.0:  # repro: noqa[RPR002] — exact sentinel
        # Zero-width buckets: the bucketed game *is* the true game
        # (identical budgets collapse into one type exactly), so the
        # only residual is the consistency-root tolerance itself.
        span_s = span_e = 0.0
        rounding = 0.0
        s_bracket = (s_mid, s_mid)
        e_bracket = (e_mid, e_mid)
        exact = True
    else:
        lo_sol = solve_weighted_connected_aggregate(
            comp.lo, comp.weights, reward, beta, gamma, p_e, p_c,
            nu=nu)
        hi_sol = solve_weighted_connected_aggregate(
            comp.hi, comp.weights, reward, beta, gamma, p_e, p_c,
            nu=nu)
        evals += lo_sol.evals + hi_sol.evals
        s_lo, e_lo = _totals(lo_sol, comp.weights)
        s_hi, e_hi = _totals(hi_sol, comp.weights)
        s_bracket = (min(s_lo, s_mid, s_hi), max(s_lo, s_mid, s_hi))
        e_bracket = (min(e_lo, e_mid, e_hi), max(e_lo, e_mid, e_hi))
        span_s = s_bracket[1] - s_bracket[0]
        span_e = e_bracket[1] - e_bracket[0]
        # Charge the budget-rounding term only to buckets that can
        # bind anywhere in the totals bracket (see module docstring):
        # spending of an unconstrained type is 1-Lipschitz-in-each-
        # total times prices, so slack beyond `travel` certifies the
        # whole bucket unconstrained at the true equilibrium too.
        travel = (p_e + p_c) * (span_s + span_e)
        spends = [p_e * sol.e + p_c * sol.c
                  for sol in (lo_sol, mid, hi_sol)]
        max_spend = np.maximum(np.maximum(spends[0], spends[1]),
                               spends[2])
        slack = comp.lo - max_spend
        tol_abs = 1e-12 * np.maximum(1.0, comp.lo)
        maybe_binding = slack <= travel + tol_abs
        widths = comp.hi - comp.lo
        rounding = (float(np.max(widths[maybe_binding]))
                    / min(p_e, p_c)
                    if bool(np.any(maybe_binding)) else 0.0)
        exact = False

    scale = max(1.0, s_bracket[1])
    error_bound = (0.0 if exact else
                   span_s + span_e + rounding + _SOLVER_SLACK * scale)

    # Expand the per-type strategies to miners and clip each miner onto
    # its *true* budget: a representative above B_i can overspend by at
    # most width_i, and the uniform shrink that repairs it moves each
    # coordinate by at most width_i / p_min — already inside the bound.
    e_full = comp.expand(mid.e)
    c_full = comp.expand(mid.c)
    spend = p_e * e_full + p_c * c_full
    with np.errstate(divide="ignore", invalid="ignore"):
        shrink = np.where(spend > budgets, budgets / np.maximum(
            spend, 1e-300), 1.0)
    e_full = e_full * shrink
    c_full = c_full * shrink
    return TypeSpaceSolution(
        e=e_full, c=c_full,
        type_e=np.asarray(mid.e, dtype=float),
        type_c=np.asarray(mid.c, dtype=float),
        compression=comp, error_bound=float(error_bound), exact=exact,
        evals=evals, s_bracket=s_bracket, e_bracket=e_bracket)
