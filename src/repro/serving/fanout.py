"""Process fan-out planning and zero-copy parameter transport.

Two utilities behind :class:`~repro.serving.engine.ServingEngine`'s
parallel path, both closing ROADMAP items on dynamic
``ProcessPoolExecutor`` sizing:

* :func:`plan_fanout` — pick worker count and chunk size from measured
  throughput instead of fixed heuristics.  Per-solve cost is estimated
  from the committed ``BENCH_solvers.json`` trajectory (nearest
  ``connected/vectorized`` case by miner count); workers are only
  added while each still receives at least
  :data:`MIN_SECONDS_PER_WORKER` of solve work, so a batch of cheap
  misses no longer pays process-pool startup for workers that would
  finish their slice faster than they spawn.

* :class:`SharedBudgetBlock` — one ``multiprocessing.shared_memory``
  segment holding every miss's budget vector back to back.  Worker
  payloads then carry an ``(offset, length)`` handle instead of a
  pickled copy of the budgets (the dominant payload bytes for large
  ``n``), and each worker reads its slice straight out of the mapped
  segment.  The block is created by the parent, attached read-only by
  workers, and unlinked by the parent when the batch completes; the
  published byte count is exported on the
  ``serving_shared_memory_bytes_total`` telemetry counter.

Everything degrades gracefully: a missing bench report falls back to
the static chunk heuristic, and platforms without working shared
memory simply keep the pickled path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..telemetry import TELEMETRY as _TEL

__all__ = ["FanoutPlan", "plan_fanout", "SharedBudgetBlock",
           "BudgetHandle", "read_budgets", "MIN_SECONDS_PER_WORKER"]

#: A worker is only worth spawning while it still receives at least
#: this many seconds of estimated solve work — below it, pool startup
#: and pickling dominate whatever the extra process saves.
MIN_SECONDS_PER_WORKER = 0.25

#: Fallback per-solve estimate (seconds) when no bench trajectory is
#: available; roughly the committed ``connected/vectorized`` medians.
DEFAULT_SOLVE_SECONDS = 0.03


@dataclass(frozen=True)
class FanoutPlan:
    """A sized process fan-out: worker count, chunk size, rationale."""

    workers: int
    chunk_size: int
    reason: str

    @property
    def inline(self) -> bool:
        """Whether the plan says to skip the pool entirely."""
        return self.workers <= 1


def _estimate_solve_seconds(n: int,
                            bench_path: Optional[Union[str, Path]]
                            ) -> Tuple[float, str]:
    """Per-solve cost estimate from the bench trajectory, with source.

    Uses the ``connected/vectorized`` case nearest in miner count —
    the serving engine's dominant miss shape.  Falls back to
    :data:`DEFAULT_SOLVE_SECONDS` when the report is absent or holds
    no usable case.
    """
    path = Path(bench_path) if bench_path is not None \
        else Path("BENCH_solvers.json")
    if not path.exists():
        return DEFAULT_SOLVE_SECONDS, "default (no bench report)"
    try:
        from ..kernels.bench import load_report

        report = load_report(path)
    except (OSError, ValueError, KeyError, TypeError):
        return DEFAULT_SOLVE_SECONDS, "default (unreadable bench report)"
    candidates = [c for c in report.cases
                  if c.solver == "connected" and c.kernel == "vectorized"
                  and c.median_s > 0]
    if not candidates:
        return DEFAULT_SOLVE_SECONDS, "default (no vectorized cases)"
    best = min(candidates, key=lambda c: abs(c.n - n))
    return best.median_s, f"bench {best.case_id}"


def plan_fanout(misses: int, n: int, max_workers: int,
                bench_path: Optional[Union[str, Path]] = None,
                chunk_size: Optional[int] = None) -> FanoutPlan:
    """Size the process pool from measured solver throughput.

    Args:
        misses: Number of scenarios to solve.
        n: Miner count of the batch (largest, when mixed).
        max_workers: The engine's configured ceiling.
        bench_path: Bench trajectory to calibrate from; ``None`` tries
            ``BENCH_solvers.json`` in the working directory.
        chunk_size: Explicit per-task chunk override (forwarded into
            the plan unchanged when set).

    Returns:
        A :class:`FanoutPlan`.  Workers never exceed ``max_workers``
        or ``misses``; they shrink further until every worker is
        estimated to receive :data:`MIN_SECONDS_PER_WORKER` of work.
    """
    if misses <= 0:
        return FanoutPlan(workers=0, chunk_size=1, reason="no misses")
    est, source = _estimate_solve_seconds(n, bench_path)
    total = est * misses
    by_work = max(1, int(total / MIN_SECONDS_PER_WORKER))
    workers = max(1, min(max_workers, misses, by_work))
    if chunk_size is not None:
        size = chunk_size
    else:
        size = max(1, math.ceil(misses / (workers * 4)))
    return FanoutPlan(
        workers=workers, chunk_size=size,
        reason=(f"{misses} misses x ~{est:.3g}s ({source}) -> "
                f"{workers} workers, chunks of {size}"))


@dataclass(frozen=True)
class BudgetHandle:
    """Location of one budget vector inside a shared segment."""

    offset: int
    length: int


class SharedBudgetBlock:
    """Budget vectors of a miss batch in one shared-memory segment.

    Layout: float64 vectors back to back, 8-byte aligned by
    construction.  The parent keeps the segment alive for the duration
    of the batch and must call :meth:`close` (which also unlinks) when
    every worker result has been collected.
    """

    def __init__(self, budgets: Sequence[np.ndarray]) -> None:
        lengths = [int(np.asarray(b).shape[0]) for b in budgets]
        total = sum(lengths)
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(total * 8, 8))
        self.handles: List[BudgetHandle] = []
        offset = 0
        for vec, length in zip(budgets, lengths):
            target = np.ndarray((length,), dtype=np.float64,
                                buffer=self._shm.buf, offset=offset * 8)
            target[:] = np.asarray(vec, dtype=np.float64)
            self.handles.append(BudgetHandle(offset=offset * 8,
                                             length=length))
            offset += length
        self.nbytes = total * 8
        if _TEL.enabled:
            _TEL.metrics.counter(
                "serving_shared_memory_bytes_total",
                "Bytes published to shared-memory parameter blocks "
                "for zero-copy process fan-out").inc(self.nbytes)

    @property
    def name(self) -> str:
        """Segment name workers attach by."""
        return self._shm.name

    def close(self) -> None:
        """Release and unlink the segment (parent side, idempotent)."""
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass

    def __enter__(self) -> "SharedBudgetBlock":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_budgets(name: str, handle: BudgetHandle) -> Tuple[float, ...]:
    """Worker-side read of one budget vector from a shared segment.

    Returns an owned tuple (the mapping is closed before returning, so
    no view into the segment escapes).
    """
    shm = shared_memory.SharedMemory(name=name)
    try:
        view = np.ndarray((handle.length,), dtype=np.float64,
                          buffer=shm.buf, offset=handle.offset)
        return tuple(float(x) for x in view)
    finally:
        shm.close()
