"""Batch equilibrium serving: cache, warm starts, and worker pools.

The paper's operator queries equilibria the way an inference service
queries a model: many nearby parameter points, over and over, under
shifting demand. This subpackage turns the solvers of
:mod:`repro.core` into that service:

* :mod:`repro.serving.keys` — canonical, hash-stable scenario keys
  (floats quantized at a declared tolerance so near-identical queries
  collide on purpose);
* :mod:`repro.serving.cache` — a thread-safe LRU memo cache with
  hit/miss/eviction counters and an optional JSON disk layer under
  ``.repro_cache/``;
* :mod:`repro.serving.warmstart` — nearest-neighbor warm starts
  harvested from previously solved scenarios;
* :mod:`repro.serving.engine` — the :class:`ServingEngine`: batch
  dedup, chunked fan-out over a process pool, per-scenario error
  capture, resilience-guarded workers;
* :mod:`repro.serving.codec` — the JSON round-trip for persisted
  equilibria.

Quickstart::

    from repro import homogeneous, Prices
    from repro.serving import ScenarioSpec, ServingEngine

    params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8)
    engine = ServingEngine(cache_dir=".repro_cache", max_workers=4)
    specs = [ScenarioSpec(params, Prices(2.0, round(0.5 + 0.05 * k, 3)))
             for k in range(16)]
    results = engine.serve_batch(specs)
    print(engine.stats.to_dict())
"""

from .cache import CacheStats, ScenarioCache
from .codec import decode_result, decode_spec, encode_result, encode_spec
from .engine import ScenarioResult, ServingEngine
from .keys import (DEFAULT_QUANTUM, ScenarioSpec, family_key,
                   feature_vector, quantize, scenario_key)
from .warmstart import WarmStart, WarmStartIndex

__all__ = [
    "CacheStats",
    "ScenarioCache",
    "ScenarioResult",
    "ScenarioSpec",
    "ServingEngine",
    "WarmStart",
    "WarmStartIndex",
    "DEFAULT_QUANTUM",
    "decode_result",
    "decode_spec",
    "encode_result",
    "encode_spec",
    "family_key",
    "feature_vector",
    "quantize",
    "scenario_key",
]
