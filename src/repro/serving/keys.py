"""Canonical, hash-stable scenario keys for the serving layer.

An equilibrium query is fully determined by its :class:`ScenarioSpec`:
the :class:`~repro.core.params.GameParameters`, the announced prices
(``None`` for a full leader-stage Stackelberg solve), and the solver
scheme. The serving cache keys on a SHA-256 digest of a canonical JSON
encoding of that spec with every float *quantized at a declared
tolerance* (``quantum``), so near-identical queries — e.g. two sweep
points that differ by numerical noise far below solver accuracy —
collide **on purpose** and are answered once.

The quantization tolerance is part of the key (two caches with
different quanta never share entries) and should stay well below the
solver tolerance of interest; see ``docs/SERVING.md`` for the caveats.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.params import GameParameters, Prices

__all__ = ["DEFAULT_QUANTUM", "ScenarioSpec", "quantize", "scenario_key",
           "family_key", "feature_vector"]

#: Default float-quantization step for cache keys. Two scenarios whose
#: parameters agree to within half a quantum map to the same key.
DEFAULT_QUANTUM = 1e-9


def quantize(value: float, quantum: float = DEFAULT_QUANTUM) -> int:
    """Quantize a float onto an integer lattice of step ``quantum``.

    Integers are hash-stable across platforms and JSON round-trips,
    unlike ``repr(float)`` at full precision.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be positive, got {quantum}")
    return int(round(float(value) / quantum))


@dataclass(frozen=True)
class ScenarioSpec:
    """One equilibrium query, fully specified.

    Attributes:
        params: Game parameters of the scenario.
        prices: Announced SP prices for a *miner-stage* query, or
            ``None`` for a full *leader-stage* (Stackelberg) solve.
        scheme: Solver scheme. For leader-stage queries this is the
            ``solve_stackelberg`` scheme (``"auto"``,
            ``"esp-anticipates"``, ``"best-response"``); for miner-stage
            queries ``"auto"`` picks the mode-appropriate solver and
            ``"extragradient"`` forces the VI solver (standalone only).
        tol: Solver tolerance the scenario should be solved at.
        kernel: Solver kernel (see
            :func:`~repro.core.nep.solve_connected_equilibrium`). The
            serving default is ``"auto"`` — the running sweep below the
            measured crossover miner count and the aggregate kernel
            with exact fixed-point verification above it
            (:func:`~repro.core.nep.resolve_kernel`, deterministic in
            ``n`` alone so keys stay reproducible); pass ``"scalar"``
            to reproduce the golden reference path bit-for-bit. Part
            of the cache key: results solved under different kernels
            agree only to solver tolerance, not bit-for-bit.
        n_types: Type-space compression level for the follower solves
            (:mod:`repro.kernels.typespace`); ``None`` solves exactly.
            Part of the cache key: compressed results carry a certified
            approximation bound, so they must never alias exact ones.
        label: Free-form tag (not part of the cache key).
    """

    params: GameParameters
    prices: Optional[Prices] = None
    scheme: str = "auto"
    tol: float = 1e-9
    kernel: str = "auto"
    n_types: Optional[int] = None
    label: str = field(default="", compare=False)

    @property
    def kind(self) -> str:
        """``"stackelberg"`` (leader stage) or ``"miner"`` (follower)."""
        return "stackelberg" if self.prices is None else "miner"


def _spec_fields(spec: ScenarioSpec,
                 quantum: float) -> Dict[str, Any]:
    """Canonical, quantized field mapping entering the key digest."""
    p = spec.params
    fields: Dict[str, Any] = {
        "kind": spec.kind,
        "mode": p.mode.value,
        "scheme": spec.scheme,
        "kernel": spec.kernel,
        "n_types": spec.n_types,
        "quantum": repr(float(quantum)),
        "tol": quantize(spec.tol, quantum),
        "reward": quantize(p.reward, quantum),
        "fork_rate": quantize(p.fork_rate, quantum),
        "h": quantize(p.h, quantum),
        "e_max": None if p.e_max is None else quantize(p.e_max, quantum),
        "edge_cost": quantize(p.edge_cost, quantum),
        "cloud_cost": quantize(p.cloud_cost, quantum),
        "budgets": [quantize(b, quantum) for b in p.budget_array],
    }
    if spec.prices is not None:
        fields["p_e"] = quantize(spec.prices.p_e, quantum)
        fields["p_c"] = quantize(spec.prices.p_c, quantum)
    return fields


def scenario_key(spec: ScenarioSpec,
                 quantum: float = DEFAULT_QUANTUM) -> str:
    """Hash-stable cache key for a scenario.

    The key is ``"<kind>:<mode>:<sha256 prefix>"`` — the readable prefix
    makes cache directories and log lines self-describing while the
    digest guarantees collision-resistance across every quantized field.
    """
    fields = _spec_fields(spec, quantum)
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]
    return f"{spec.kind}:{spec.params.mode.value}:{digest}"


def family_key(spec: ScenarioSpec
               ) -> Tuple[str, str, str, int, Optional[int]]:
    """Grouping key for nearest-neighbor warm-start lookup.

    Only scenarios of the same kind, mode, scheme, miner count, and
    compression level are comparable in feature space (the feature
    vector's length and meaning depend on the first four; mixing exact
    and compressed solves would seed warm starts across different
    accuracy classes).
    """
    return (spec.kind, spec.params.mode.value, spec.scheme,
            spec.params.n, spec.n_types)


def feature_vector(spec: ScenarioSpec) -> np.ndarray:
    """Unquantized numeric embedding of a scenario for neighbor search.

    The layout is fixed within a :func:`family_key` group:
    ``[reward, fork_rate, h, e_max, edge_cost, cloud_cost,
    p_e, p_c, *budgets]`` with ``e_max`` and prices zeroed when absent.
    """
    p = spec.params
    head = [p.reward, p.fork_rate, p.h,
            0.0 if p.e_max is None else float(p.e_max),
            p.edge_cost, p.cloud_cost]
    if spec.prices is not None:
        head += [spec.prices.p_e, spec.prices.p_c]
    else:
        head += [0.0, 0.0]
    return np.asarray(head + list(p.budget_array), dtype=float)
