"""Thread-safe LRU scenario cache with an optional JSON disk layer.

:class:`ScenarioCache` memoizes equilibrium results keyed by the
hash-stable keys of :mod:`repro.serving.keys`. It is safe to share
across threads (a single lock guards the LRU order and the counters)
and exposes :class:`CacheStats` hit/miss/eviction counters so serving
throughput is observable rather than inferred.

When constructed with a ``cache_dir`` (conventionally
``.repro_cache/``), every stored result is also written as one JSON
file per key via :mod:`repro.serving.codec`; misses consult the disk
before being reported to the caller, so a warm cache survives process
restarts and is shareable between workers on one machine.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from ..exceptions import ConfigurationError
from ..telemetry import TELEMETRY as _TEL
from .codec import decode_result, encode_result

__all__ = ["CacheStats", "ScenarioCache"]

#: Process-unique suffix counter for atomic temp-file names, so two
#: threads persisting the same key never collide on one temp path.
_TMP_COUNTER = itertools.count()

#: Conventional on-disk location of the persistent layer.
DEFAULT_CACHE_DIR = ".repro_cache"


@dataclass
class CacheStats:
    """Counters of one cache's lifetime activity.

    Attributes:
        hits: Lookups answered from memory.
        disk_hits: Lookups answered from the JSON disk layer (these are
            *not* double-counted as memory hits).
        misses: Lookups answered by neither layer.
        evictions: Entries dropped by the LRU bound.
        puts: Results stored.
        expired: Entries dropped because their TTL elapsed or their
            version predates an :meth:`ScenarioCache.invalidate` (these
            lookups are *also* counted as misses).
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    expired: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls observed."""
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from either layer (0 when idle)."""
        total = self.lookups
        if total == 0:
            return 0.0
        return (self.hits + self.disk_hits) / total

    def to_dict(self) -> Dict[str, Union[int, float]]:
        """JSON-serializable counter snapshot."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "expired": self.expired,
            "hit_rate": self.hit_rate,
        }

    def copy(self) -> "CacheStats":
        """Point-in-time snapshot (the live object keeps mutating)."""
        return CacheStats(hits=self.hits, disk_hits=self.disk_hits,
                          misses=self.misses, evictions=self.evictions,
                          puts=self.puts, expired=self.expired)

    def delta(self, prior: "CacheStats") -> "CacheStats":
        """Windowed counters: activity since ``prior`` was snapshotted.

        The returned object's :attr:`hit_rate` is therefore the *recent*
        hit rate — what the control-plane detectors watch — rather than
        the lifetime average, which stays misleadingly high long after a
        cache collapse. Counters are clamped at zero so a reset prior
        never produces negative windows.
        """
        return CacheStats(
            hits=max(self.hits - prior.hits, 0),
            disk_hits=max(self.disk_hits - prior.disk_hits, 0),
            misses=max(self.misses - prior.misses, 0),
            evictions=max(self.evictions - prior.evictions, 0),
            puts=max(self.puts - prior.puts, 0),
            expired=max(self.expired - prior.expired, 0))


@dataclass
class _Entry:
    value: Any
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Monotonic-clock insertion stamp (TTL ages are measured from it;
    #: re-stamped when an entry is revived from disk, since monotonic
    #: clocks are not comparable across processes).
    stamp: float = 0.0
    #: Cache version the entry was admitted under; entries from before
    #: an ``invalidate()`` bump are lazily treated as misses.
    version: int = 0


class ScenarioCache:
    """LRU memo cache for equilibrium results, optionally disk-backed.

    Args:
        maxsize: Bound on in-memory entries; least-recently-used entries
            are evicted past it (the disk layer, if any, keeps them).
        cache_dir: Directory for the JSON persistence layer; created on
            demand. ``None`` disables persistence.
        ttl: Seconds an entry stays servable after admission; ``None``
            disables expiry. Ages are measured on ``clock``; disk
            revivals re-stamp (TTL bounds in-process staleness).
        clock: Monotonic time source for TTL ages (injectable so tests
            can advance time deterministically).
    """

    def __init__(self, maxsize: int = 4096,
                 cache_dir: Optional[Union[str, Path]] = None,
                 ttl: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be at least 1, got {maxsize}")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(
                f"ttl must be positive (or None), got {ttl}")
        self.maxsize = maxsize
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self.ttl = ttl
        self._clock = clock if clock is not None else time.monotonic
        self.version = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------

    def _path_for(self, key: str) -> Path:
        assert self.cache_dir is not None
        # Keys look like "miner:connected:<digest>"; colons make poor
        # filenames on some filesystems.
        return self.cache_dir / (key.replace(":", "_") + ".json")

    def _disk_load(self, key: str) -> Optional[_Entry]:
        if self.cache_dir is None:
            return None
        path = self._path_for(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
            if int(payload.get("version", 0)) != self.version:
                return None  # written before an invalidate() bump
            return _Entry(value=decode_result(payload["result"]),
                          meta=payload.get("meta", {}))
        except OSError:
            # Transient read failure: a miss, but the file may be fine.
            return None
        except (ValueError, KeyError, TypeError, ConfigurationError):
            # A corrupt or foreign file is a miss, never an error — and
            # it is unlinked so a torn write cannot shadow future
            # persistence of the same key forever.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, entry: _Entry) -> None:
        if self.cache_dir is None:
            return
        tmp: Optional[Path] = None
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            payload = {"key": key, "result": encode_result(entry.value),
                       "meta": entry.meta, "version": entry.version}
            path = self._path_for(key)
            # Unique temp name per write (pid + counter): concurrent
            # writers of one key never clobber each other's temp file,
            # and os.replace makes the final rename atomic — a crash
            # mid-save leaves the old file intact, never a torn JSON.
            tmp = path.with_name(
                f"{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(payload))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            tmp = None
        except (OSError, ConfigurationError):
            # Persistence is best-effort; the memory layer stays correct.
            if tmp is not None:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # Core API
    # ------------------------------------------------------------------

    def _stale(self, entry: _Entry) -> bool:
        """Whether an in-memory entry is past TTL or pre-invalidation."""
        if entry.version != self.version:
            return True
        return (self.ttl is not None
                and self._clock() - entry.stamp > self.ttl)

    def _drop_stale(self, key: str, entry: _Entry) -> None:
        """Evict a stale entry from memory (and its disk file, so the
        next lookup cannot revive an expired equilibrium)."""
        del self._entries[key]
        self.stats.expired += 1
        if _TEL.enabled:
            _TEL.metrics.counter(
                "cache_expired_total",
                "Entries dropped by TTL or versioned invalidation").inc()
        if self.cache_dir is not None and entry.version == self.version:
            # TTL expiry: the persisted copy is equally stale. (Version
            # staleness needs no unlink — _disk_load rejects it.)
            try:
                self._path_for(key).unlink()
            except OSError:
                pass

    def lookup(self, key: str) -> Tuple[Optional[Any], str]:
        """Look up a result; returns ``(value, layer)``.

        ``layer`` is ``"memory"``, ``"disk"``, or ``"miss"``; the LRU
        position is refreshed and the counters updated either way.
        Entries past their TTL or admitted before the last
        :meth:`invalidate` are dropped and reported as misses.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._stale(entry):
                self._drop_stale(key, entry)
                entry = None
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if _TEL.enabled:
                    _TEL.metrics.counter(
                        "cache_lookups_total", "Cache lookups by outcome",
                        labels={"layer": "memory"}).inc()
                return entry.value, "memory"
            entry = self._disk_load(key)
            if entry is not None:
                entry.stamp = self._clock()
                entry.version = self.version
                self.stats.disk_hits += 1
                self._insert(key, entry, persist=False)
                if _TEL.enabled:
                    _TEL.metrics.counter(
                        "cache_lookups_total", "Cache lookups by outcome",
                        labels={"layer": "disk"}).inc()
                return entry.value, "disk"
            self.stats.misses += 1
            if _TEL.enabled:
                _TEL.metrics.counter(
                    "cache_lookups_total", "Cache lookups by outcome",
                    labels={"layer": "miss"}).inc()
            return None, "miss"

    def get(self, key: str) -> Optional[Any]:
        """Look up a result, refreshing its LRU position. None on miss."""
        return self.lookup(key)[0]

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """Metadata stored alongside an in-memory entry (None if absent)."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else dict(entry.meta)

    def put(self, key: str, value: Any,
            meta: Optional[Dict[str, Any]] = None) -> None:
        """Store a result under ``key`` (and on disk when configured)."""
        with self._lock:
            # The entry must be stamped under the lock: reading
            # ``version`` outside it races invalidate(), admitting an
            # entry stamped with a stale version after the flush.
            entry = _Entry(value=value, meta=dict(meta or {}),
                           stamp=self._clock(), version=self.version)
            self.stats.puts += 1
            if _TEL.enabled:
                _TEL.metrics.counter("cache_puts_total",
                                     "Results stored in the cache").inc()
            self._insert(key, entry, persist=True)

    def _insert(self, key: str, entry: _Entry, persist: bool) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if _TEL.enabled:
                _TEL.metrics.counter(
                    "cache_evictions_total",
                    "Entries dropped by the LRU bound").inc()
        if persist:
            self._disk_store(key, entry)

    def resize(self, maxsize: int) -> int:
        """Change the LRU bound in place; returns entries evicted now.

        Shrinking evicts least-recently-used entries immediately (the
        disk layer, when configured, keeps them); growing only raises
        the bound. This is the control-plane's cache-resize actuator
        seam.
        """
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be at least 1, got {maxsize}")
        evicted = 0
        with self._lock:
            self.maxsize = maxsize
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                evicted += 1
            if evicted and _TEL.enabled:
                _TEL.metrics.counter(
                    "cache_evictions_total",
                    "Entries dropped by the LRU bound").inc(evicted)
        return evicted

    def invalidate(self) -> int:
        """Bump the cache version, lazily invalidating every entry.

        Entries admitted under earlier versions — in memory *and* on
        disk — are treated as misses from now on and dropped when next
        touched, so a parameter update takes effect without a cold
        restart and without an O(entries) flush pause. Returns the new
        version.
        """
        with self._lock:
            self.version += 1
            if _TEL.enabled:
                _TEL.metrics.counter(
                    "cache_invalidations_total",
                    "Versioned invalidations (invalidate() calls)").inc()
                _TEL.metrics.gauge(
                    "cache_version", "Current cache version").set(
                    self.version)
            return self.version

    def snapshot_entries(self) -> "OrderedDict[str, _Entry]":
        """Point-in-time copy of the in-memory entries (LRU order kept).

        Together with :meth:`restore_entries` this is the rollback seam
        the control plane uses to make flush/resize transactional: the
        entry objects themselves are shared (equilibria are treated as
        immutable), only the ordering container is copied.
        """
        with self._lock:
            return OrderedDict(self._entries)

    def restore_entries(self,
                        entries: "OrderedDict[str, _Entry]") -> None:
        """Replace the in-memory entries with a prior snapshot."""
        with self._lock:
            self._entries = OrderedDict(entries)

    def __contains__(self, key: str) -> bool:
        """Whether ``key`` has a *servable* in-memory entry.

        Stale (TTL/version) entries report absent. Unlike
        :meth:`lookup` this touches neither the LRU order nor the
        counters — it is the service's fast-path membership probe.
        """
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._stale(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Snapshot of ``(key, value)`` pairs, LRU-oldest first."""
        with self._lock:
            return iter([(k, e.value) for k, e in self._entries.items()])

    def clear(self, disk: bool = False) -> None:
        """Drop all in-memory entries; optionally the disk layer too."""
        with self._lock:
            self._entries.clear()
            if disk and self.cache_dir is not None \
                    and self.cache_dir.exists():
                for path in self.cache_dir.glob("*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass
