"""JSON codec for equilibrium results (the cache's disk format).

Round-trips :class:`~repro.core.nep.MinerEquilibrium` and
:class:`~repro.core.stackelberg.StackelbergEquilibrium` — including
their :class:`~repro.core.params.GameParameters` and convergence
diagnostics (via :meth:`ConvergenceReport.to_dict`) — through plain
JSON-serializable dictionaries, so cached equilibria survive process
restarts under ``.repro_cache/``.
"""

from __future__ import annotations

from typing import Any, Dict, Union

import numpy as np

from ..core.nep import MinerEquilibrium
from ..core.params import EdgeMode, GameParameters, Prices
from ..core.stackelberg import StackelbergEquilibrium
from ..exceptions import ConfigurationError
from ..game.diagnostics import ConvergenceReport
from .keys import ScenarioSpec

__all__ = ["encode_result", "decode_result", "encode_spec",
           "decode_spec"]

_SCHEMA = 1

Result = Union[MinerEquilibrium, StackelbergEquilibrium]


def _encode_params(params: GameParameters) -> Dict[str, Any]:
    return {
        "reward": params.reward,
        "fork_rate": params.fork_rate,
        "budgets": [float(b) for b in params.budget_array],
        "mode": params.mode.value,
        "h": params.h,
        "e_max": params.e_max,
        "edge_cost": params.edge_cost,
        "cloud_cost": params.cloud_cost,
        "d_avg": params.d_avg,
    }


def _decode_params(payload: Dict[str, Any]) -> GameParameters:
    return GameParameters(
        reward=float(payload["reward"]),
        fork_rate=float(payload["fork_rate"]),
        budgets=tuple(float(b) for b in payload["budgets"]),
        mode=EdgeMode(payload["mode"]),
        h=float(payload["h"]),
        e_max=(None if payload.get("e_max") is None
               else float(payload["e_max"])),
        edge_cost=float(payload["edge_cost"]),
        cloud_cost=float(payload["cloud_cost"]),
        d_avg=(None if payload.get("d_avg") is None
               else float(payload["d_avg"])),
    )


def _encode_miner(eq: MinerEquilibrium) -> Dict[str, Any]:
    return {
        "e": [float(v) for v in np.asarray(eq.e)],
        "c": [float(v) for v in np.asarray(eq.c)],
        "params": _encode_params(eq.params),
        "prices": {"p_e": eq.prices.p_e, "p_c": eq.prices.p_c},
        "report": eq.report.to_dict(history_tail=50),
        "nu": float(eq.nu),
        "error_bound": (None if eq.error_bound is None
                        else float(eq.error_bound)),
    }


def _decode_miner(payload: Dict[str, Any]) -> MinerEquilibrium:
    return MinerEquilibrium(
        e=np.asarray(payload["e"], dtype=float),
        c=np.asarray(payload["c"], dtype=float),
        params=_decode_params(payload["params"]),
        prices=Prices(p_e=float(payload["prices"]["p_e"]),
                      p_c=float(payload["prices"]["p_c"])),
        report=ConvergenceReport.from_dict(payload["report"]),
        nu=float(payload.get("nu", 0.0)),
        error_bound=(None if payload.get("error_bound") is None
                     else float(payload["error_bound"])),
    )


def encode_result(value: Result) -> Dict[str, Any]:
    """Encode an equilibrium result as a JSON-serializable dict."""
    if isinstance(value, StackelbergEquilibrium):
        return {
            "schema": _SCHEMA,
            "type": "stackelberg",
            "prices": {"p_e": value.prices.p_e, "p_c": value.prices.p_c},
            "miners": _encode_miner(value.miners),
            "v_e": float(value.v_e),
            "v_c": float(value.v_c),
            "report": value.report.to_dict(history_tail=50),
            "scheme": value.scheme,
        }
    if isinstance(value, MinerEquilibrium):
        payload = _encode_miner(value)
        payload["schema"] = _SCHEMA
        payload["type"] = "miner"
        return payload
    raise ConfigurationError(
        f"cannot encode {type(value).__name__}; expected a "
        "MinerEquilibrium or StackelbergEquilibrium")


def encode_spec(spec: ScenarioSpec) -> Dict[str, Any]:
    """Encode a scenario spec as a JSON-serializable dict.

    The wire format of the online service's ``/solve`` endpoint; the
    inverse of :func:`decode_spec`. The round trip preserves every
    key-relevant field, so a spec submitted over HTTP lands on the
    same cache entry as the identical in-process spec.
    """
    payload: Dict[str, Any] = {
        "schema": _SCHEMA,
        "params": _encode_params(spec.params),
        "prices": (None if spec.prices is None
                   else {"p_e": spec.prices.p_e,
                         "p_c": spec.prices.p_c}),
        "scheme": spec.scheme,
        "tol": spec.tol,
        "kernel": spec.kernel,
    }
    if spec.n_types is not None:
        payload["n_types"] = int(spec.n_types)
    if spec.label:
        payload["label"] = spec.label
    return payload


def decode_spec(payload: Dict[str, Any]) -> ScenarioSpec:
    """Reconstruct a scenario spec from :func:`encode_spec`."""
    try:
        prices_payload = payload.get("prices")
        prices = (None if prices_payload is None
                  else Prices(p_e=float(prices_payload["p_e"]),
                              p_c=float(prices_payload["p_c"])))
        return ScenarioSpec(
            params=_decode_params(payload["params"]),
            prices=prices,
            scheme=str(payload.get("scheme", "auto")),
            tol=float(payload.get("tol", 1e-9)),
            kernel=str(payload.get("kernel", "vectorized")),
            n_types=(None if payload.get("n_types") is None
                     else int(payload["n_types"])),
            label=str(payload.get("label", "")),
        )
    except (KeyError, TypeError, ValueError) as ex:
        raise ConfigurationError(
            f"malformed scenario spec payload: "
            f"{type(ex).__name__}: {ex}") from ex


def decode_result(payload: Dict[str, Any]) -> Result:
    """Reconstruct an equilibrium result from :func:`encode_result`."""
    kind = payload.get("type")
    if kind == "miner":
        return _decode_miner(payload)
    if kind == "stackelberg":
        return StackelbergEquilibrium(
            prices=Prices(p_e=float(payload["prices"]["p_e"]),
                          p_c=float(payload["prices"]["p_c"])),
            miners=_decode_miner(payload["miners"]),
            v_e=float(payload["v_e"]),
            v_c=float(payload["v_c"]),
            report=ConvergenceReport.from_dict(payload["report"]),
            scheme=str(payload["scheme"]),
        )
    raise ConfigurationError(f"unknown result type {kind!r}")
