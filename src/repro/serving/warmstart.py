"""Nearest-neighbor warm starts over previously solved scenarios.

Equilibrium queries arriving at the serving layer cluster around
operating points — a price sweep, a capacity grid, drifting demand. A
scenario that misses the cache is usually *near* one that hit it, and
the neighbor's equilibrium is an excellent initial iterate: the NEP
best-response loop, the GNEP decomposition, and the extragradient VI
solvers all converge in far fewer iterations from a nearby profile
(and :func:`~repro.core.stackelberg.solve_stackelberg` can localize
its price search around a neighbor's optimum).

:class:`WarmStartIndex` keeps one small brute-force index per scenario
*family* (same kind, mode, scheme, and miner count — see
:func:`repro.serving.keys.family_key`) and answers ``suggest`` queries
with the nearest neighbor's prices and miner allocations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.nep import MinerEquilibrium
from ..core.params import Prices
from ..core.stackelberg import StackelbergEquilibrium
from .keys import ScenarioSpec, family_key, feature_vector

__all__ = ["WarmStart", "WarmStartIndex"]


@dataclass
class WarmStart:
    """Initial iterates harvested from a solved neighbor scenario.

    Attributes:
        prices: The neighbor's equilibrium prices (leader stage).
        profile: The neighbor's miner allocation ``(e, c)``.
        distance: Normalized feature-space distance to the neighbor.
        key: Cache key of the neighbor it came from.
    """

    prices: Optional[Prices]
    profile: Optional[Tuple[np.ndarray, np.ndarray]]
    distance: float
    key: str


@dataclass
class _IndexEntry:
    features: np.ndarray
    key: str
    prices: Optional[Prices]
    profile: Optional[Tuple[np.ndarray, np.ndarray]]


class WarmStartIndex:
    """Brute-force nearest-neighbor index over solved scenarios.

    Args:
        max_entries: Per-family bound; the oldest entries are dropped
            past it (sweeps revisit recent neighborhoods, so recency is
            the right retention policy).
        max_relative_distance: Suggestions farther than this (relative,
            per normalized feature) are suppressed — a far neighbor is
            worse than a cold start near solver kinks.
    """

    def __init__(self, max_entries: int = 2048,
                 max_relative_distance: float = 0.5) -> None:
        if max_entries < 1:
            raise ValueError(
                f"max_entries must be at least 1, got {max_entries}")
        self.max_entries = max_entries
        self.max_relative_distance = max_relative_distance
        self._families: Dict[tuple, List[_IndexEntry]] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._families.values())

    def add(self, spec: ScenarioSpec, key: str, result: Any) -> None:
        """Index a solved scenario's equilibrium for future suggestions."""
        prices: Optional[Prices] = None
        profile: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if isinstance(result, StackelbergEquilibrium):
            prices = result.prices
            miners = result.miners
            profile = (np.array(miners.e, copy=True),
                       np.array(miners.c, copy=True))
        elif isinstance(result, MinerEquilibrium):
            prices = result.prices
            profile = (np.array(result.e, copy=True),
                       np.array(result.c, copy=True))
        else:
            return  # foreign result types are simply not indexable
        entry = _IndexEntry(features=feature_vector(spec), key=key,
                            prices=prices, profile=profile)
        fam = family_key(spec)
        with self._lock:
            bucket = self._families.setdefault(fam, [])
            bucket.append(entry)
            if len(bucket) > self.max_entries:
                del bucket[0]

    def suggest(self, spec: ScenarioSpec) -> Optional[WarmStart]:
        """Warm start from the nearest solved neighbor, or ``None``.

        Distance is Euclidean over features normalized per-dimension by
        the query's own magnitudes, so "near" means "relatively near in
        every parameter" regardless of units.
        """
        fam = family_key(spec)
        query = feature_vector(spec)
        scale = np.maximum(np.abs(query), 1e-9)
        with self._lock:
            bucket = self._families.get(fam)
            if not bucket:
                return None
            feats = np.stack([e.features for e in bucket])
            dists = np.sqrt(
                np.sum(((feats - query) / scale) ** 2, axis=1))
            idx = int(np.argmin(dists))
            best = bucket[idx]
            distance = float(dists[idx])
        if distance > self.max_relative_distance:
            return None
        profile = None
        if best.profile is not None:
            profile = (np.array(best.profile[0], copy=True),
                       np.array(best.profile[1], copy=True))
        return WarmStart(prices=best.prices, profile=profile,
                         distance=distance, key=best.key)
