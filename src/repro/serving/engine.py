"""The batch equilibrium-serving engine.

:class:`ServingEngine` answers batches of equilibrium queries the way
an inference server answers model queries:

1. every scenario is keyed canonically (:mod:`repro.serving.keys`) and
   looked up in the :class:`~repro.serving.cache.ScenarioCache`
   (memory, then the optional JSON disk layer);
2. the remaining misses are **deduplicated** — identical keys inside
   one batch are solved once;
3. each unique miss gets a **warm start** from the nearest previously
   solved neighbor (:mod:`repro.serving.warmstart`);
4. compatible miss groups — connected-mode miner queries sharing
   ``(n, tol)`` whose kernel resolves to the aggregate solver — are
   answered by one **cross-scenario batched** kernel call
   (:mod:`repro.kernels.multiscenario`), bit-identical to per-scenario
   solves; the rest are partitioned into chunks and fanned out over a
   ``concurrent.futures.ProcessPoolExecutor`` (``max_workers <= 1``
   solves inline, serially) through a picklable pure-function worker;
5. failures are captured **per scenario** — one diverging corner case
   returns an errored :class:`ScenarioResult` instead of aborting the
   batch — with :class:`repro.resilience.SolverGuard` fallback chains
   absorbing salvageable solver pathologies inside each worker.

Results come back in the order the scenarios were submitted, solved
results are cached and indexed for future batches, and the cache
counters make the hit rate observable.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.gnep import (solve_standalone_equilibrium,
                         solve_standalone_extragradient)
from ..core.nep import KERNELS, resolve_kernel, solve_connected_equilibrium
from ..core.params import EdgeMode
from ..core.stackelberg import solve_stackelberg
from ..exceptions import ConfigurationError
from ..resilience.guard import (SolverGuard, guarded_miner_equilibrium,
                                guarded_stackelberg)
from ..telemetry import TELEMETRY as _TEL
from .cache import CacheStats, ScenarioCache
from .fanout import (BudgetHandle, SharedBudgetBlock, plan_fanout,
                     read_budgets)
from .keys import DEFAULT_QUANTUM, ScenarioSpec, scenario_key
from .warmstart import WarmStart, WarmStartIndex

__all__ = ["ScenarioResult", "ServingEngine"]

#: Valid miner-stage schemes (leader-stage schemes are validated by
#: :func:`~repro.core.stackelberg.solve_stackelberg` itself).
_MINER_SCHEMES = ("auto", "best-response", "decomposition",
                  "extragradient")

#: Valid values of :class:`ServingEngine`'s ``batch_mode``.
_BATCH_MODES = ("multiscenario", "none")


@dataclass
class ScenarioResult:
    """Outcome of serving one scenario.

    Attributes:
        spec: The scenario as submitted.
        key: Its canonical cache key.
        value: The equilibrium (``None`` when ``error`` is set).
        error: Exception summary when the solve failed; ``None`` on
            success. One failing scenario never aborts its batch.
        source: ``"memory"``/``"disk"`` (cache layers), ``"solved"``
            (computed this batch), or ``"dedup"`` (identical key solved
            earlier in the same batch).
        warm_key: Key of the neighbor whose equilibrium warm-started
            this solve, if any.
        solver: Name of the solver (guard fallback step) that answered.
        degraded: True when the resilience guard fell back or accepted
            a stalled approximation.
        elapsed: Wall-clock seconds spent on this scenario (lookup time
            for hits, solve time for misses).
    """

    spec: ScenarioSpec
    key: str
    value: Any = None
    error: Optional[str] = None
    source: str = "solved"
    warm_key: Optional[str] = None
    solver: Optional[str] = None
    degraded: bool = False
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the scenario produced an equilibrium."""
        return self.error is None


def _solve_scenario(spec: ScenarioSpec, warm: Optional[WarmStart],
                    use_guard: bool) -> Tuple[Any, Optional[str], bool]:
    """Solve one scenario; returns ``(value, solver_name, degraded)``.

    Pure function of its arguments (no engine state), so it is safe to
    ship to a worker process.
    """
    params = spec.params
    warm_prices = warm.prices if warm is not None else None
    warm_profile = warm.profile if warm is not None else None

    if spec.kind == "stackelberg":
        if use_guard:
            guarded = guarded_stackelberg(
                params, guard=SolverGuard(), scheme=spec.scheme,
                demand_tol=spec.tol, warm_start=warm_prices,
                warm_profile=warm_profile, kernel=spec.kernel,
                n_types=spec.n_types)
            return guarded.value, guarded.solver, guarded.degraded
        se = solve_stackelberg(params, scheme=spec.scheme,
                               demand_tol=spec.tol,
                               warm_start=warm_prices,
                               warm_profile=warm_profile,
                               kernel=spec.kernel,
                               n_types=spec.n_types)
        return se, f"stackelberg-{se.scheme}", False

    if spec.scheme not in _MINER_SCHEMES:
        raise ConfigurationError(
            f"unknown miner scheme {spec.scheme!r}; expected one of "
            f"{_MINER_SCHEMES}")
    prices = spec.prices
    if spec.scheme == "extragradient":
        if params.mode is not EdgeMode.STANDALONE:
            raise ConfigurationError(
                "the extragradient scheme requires standalone mode")
        eq = solve_standalone_extragradient(params, prices, tol=spec.tol,
                                            initial=warm_profile,
                                            kernel=spec.kernel)
        return eq, "vi-extragradient", False
    if use_guard and spec.scheme in ("auto", "decomposition",
                                     "best-response"):
        guarded = guarded_miner_equilibrium(
            params, prices, guard=SolverGuard(), tol=spec.tol,
            initial=warm_profile, kernel=spec.kernel,
            n_types=spec.n_types)
        return guarded.value, guarded.solver, guarded.degraded
    if params.mode is EdgeMode.STANDALONE:
        eq = solve_standalone_equilibrium(params, prices, tol=spec.tol,
                                          initial=warm_profile,
                                          kernel=spec.kernel,
                                          n_types=spec.n_types)
        return eq, "gnep-decomposition", False
    eq = solve_connected_equilibrium(params, prices, tol=spec.tol,
                                     initial=warm_profile,
                                     kernel=spec.kernel,
                                     n_types=spec.n_types)
    return eq, "nep-best-response", False


def _solve_chunk(chunk: Sequence[Tuple[int, ScenarioSpec,
                                       Optional[WarmStart], bool]]
                 ) -> List[Tuple[int, Any, Optional[str], Optional[str],
                                 bool, float]]:
    """Worker entry point: solve a chunk of scenarios independently.

    Returns one ``(position, value, error, solver, degraded, elapsed)``
    tuple per scenario; exceptions are captured per scenario so a bad
    corner point cannot take down its siblings in the same chunk.
    """
    out = []
    for position, spec, warm, use_guard in chunk:
        start = time.perf_counter()
        try:
            value, solver, degraded = _solve_scenario(spec, warm,
                                                      use_guard)
            error = None
        except Exception as ex:  # repro: noqa[RPR007] — per-scenario
            # capture boundary: one bad corner never aborts the batch.
            value, solver, degraded = None, None, False
            error = f"{type(ex).__name__}: {ex}"
        out.append((position, value, error, solver, degraded,
                    time.perf_counter() - start))
    return out


def _solve_chunk_shm(payload: Tuple[str,
                                    Sequence[Tuple[int, ScenarioSpec,
                                                   BudgetHandle,
                                                   Optional[WarmStart],
                                                   bool]]]
                     ) -> List[Tuple[int, Any, Optional[str],
                                     Optional[str], bool, float]]:
    """Worker entry point for the zero-copy fan-out path.

    Like :func:`_solve_chunk` but each scenario carries a
    :class:`~repro.serving.fanout.BudgetHandle` instead of its budget
    vector: the real budgets are read from the named shared-memory
    segment published by the parent, so large populations are mapped
    rather than pickled into every task.
    """
    name, chunk = payload
    out = []
    for position, spec, handle, warm, use_guard in chunk:
        start = time.perf_counter()
        try:
            budgets = read_budgets(name, handle)
            restored = replace(spec,
                               params=spec.params.with_budgets(budgets))
            value, solver, degraded = _solve_scenario(restored, warm,
                                                      use_guard)
            error = None
        except Exception as ex:  # repro: noqa[RPR007] — per-scenario
            # capture boundary: one bad corner never aborts the batch.
            value, solver, degraded = None, None, False
            error = f"{type(ex).__name__}: {ex}"
        out.append((position, value, error, solver, degraded,
                    time.perf_counter() - start))
    return out


class ServingEngine:
    """Batch equilibrium server: cache + warm starts + worker pool.

    Args:
        cache: An existing :class:`ScenarioCache` to serve from (shared
            caches let several engines cooperate); mutually exclusive
            with ``cache_dir``/``maxsize``.
        cache_dir: Directory for the JSON persistence layer (e.g.
            ``".repro_cache"``); ``None`` keeps the cache memory-only.
        maxsize: In-memory LRU bound of the internally created cache.
        max_workers: Process-pool width for solving cache misses.
            ``None``, 0, or 1 solve inline (serial, no processes) —
            the right choice for small batches and single-core hosts.
        warm_start: Whether misses are warm-started from the nearest
            solved neighbor. Disable to reproduce cold solves exactly.
        use_guard: Whether workers wrap solves in the
            :class:`~repro.resilience.SolverGuard` fallback chains.
        quantum: Float-quantization step of the cache keys (see
            :mod:`repro.serving.keys`).
        chunk_size: Scenarios per worker task; default balances ~4
            tasks per worker.
        batch_mode: ``"multiscenario"`` (default) groups compatible
            cache-miss scenarios — connected-mode miner queries with
            the same ``(n, tol)`` whose kernel resolves to
            ``"vectorized"``, no type-space compression — into one
            cross-scenario batched kernel call
            (:mod:`repro.kernels.multiscenario`), bit-identical to
            solving them one at a time; scenarios the batch cannot
            certify fall back to the per-scenario path. ``"none"``
            disables grouping.
        use_shared_memory: Whether the process fan-out publishes miss
            budget vectors through one ``multiprocessing.shared_memory``
            segment (:mod:`repro.serving.fanout`) instead of pickling
            them into every worker task. Falls back to the pickled
            path automatically when the platform cannot create shared
            memory.
        bench_path: Bench trajectory (``BENCH_solvers.json``) used by
            :func:`~repro.serving.fanout.plan_fanout` to calibrate the
            dynamic pool size from measured per-solve cost; ``None``
            tries the working directory and otherwise falls back to a
            conservative default estimate.
    """

    def __init__(self, cache: Optional[ScenarioCache] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 maxsize: int = 4096,
                 max_workers: Optional[int] = None,
                 warm_start: bool = True,
                 use_guard: bool = True,
                 quantum: float = DEFAULT_QUANTUM,
                 chunk_size: Optional[int] = None,
                 batch_mode: str = "multiscenario",
                 use_shared_memory: bool = True,
                 bench_path: Optional[Union[str, Path]] = None) -> None:
        if cache is not None and cache_dir is not None:
            raise ConfigurationError(
                "pass either an existing cache or a cache_dir, not both")
        if batch_mode not in _BATCH_MODES:
            raise ConfigurationError(
                f"unknown batch_mode {batch_mode!r}; expected one of "
                f"{_BATCH_MODES}")
        self.cache = cache if cache is not None else \
            ScenarioCache(maxsize=maxsize, cache_dir=cache_dir)
        self.max_workers = max_workers
        self.warm_start = warm_start
        self.use_guard = use_guard
        self.quantum = quantum
        self.chunk_size = chunk_size
        self.batch_mode = batch_mode
        self.use_shared_memory = use_shared_memory
        self.bench_path = bench_path
        self.warm_index = WarmStartIndex()
        self.kernel_override: Optional[str] = None
        self._window_stats = self.cache.stats.copy()

    # ------------------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        """The underlying cache's :class:`CacheStats` counters."""
        return self.cache.stats

    def key_for(self, spec: ScenarioSpec) -> str:
        """Canonical cache key of a scenario under this engine's quantum."""
        return scenario_key(spec, quantum=self.quantum)

    def _admit(self, spec: ScenarioSpec, key: str, value: Any) -> None:
        """Insert a solved equilibrium into the cache and warm index."""
        meta = {"scheme": spec.scheme, "tol": spec.tol,
                "kind": spec.kind}
        self.cache.put(key, value, meta=meta)
        self.warm_index.add(spec, key, value)

    def serve(self, spec: ScenarioSpec) -> ScenarioResult:
        """Serve a single scenario (batch of one)."""
        return self.serve_batch([spec])[0]

    # ------------------------------------------------------------------
    # Control-plane actuator seams. Each is safe to call between
    # batches; none of them changes the engine's behavior unless the
    # control plane (or an operator) invokes it explicitly, so with the
    # control loop disabled serving stays bit-identical.
    # ------------------------------------------------------------------

    def set_kernel_override(self, kernel: Optional[str]) -> None:
        """Force every served scenario onto ``kernel`` (None restores
        the per-spec kernels). The override participates in cache keys
        exactly as if callers had requested that kernel themselves."""
        if kernel is not None and kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        self.kernel_override = kernel

    def resize_cache(self, maxsize: int) -> int:
        """Resize the scenario cache's LRU bound; returns evictions."""
        return self.cache.resize(maxsize)

    def flush_cache(self) -> None:
        """Drop every in-memory cache entry (disk layer untouched)."""
        self.cache.clear()

    def rebuild_warm_index(self) -> None:
        """Drop the warm-start index; it repopulates incrementally from
        subsequent admissions. The remediation for index drift (warm
        starts landing slower than cold solves): stale neighbors are
        forgotten instead of poisoning future suggestions."""
        self.warm_index = WarmStartIndex()

    def serve_batch(self, specs: Sequence[ScenarioSpec]
                    ) -> List[ScenarioResult]:
        """Serve a batch of scenarios; results align with the input order.

        Cache hits are answered immediately; the deduplicated misses
        are solved (in parallel when ``max_workers > 1``), admitted to
        the cache, and every submitted position — including duplicate
        keys — receives its result. Individual failures surface as
        ``error`` strings on their own :class:`ScenarioResult` only.
        """
        if self.kernel_override is not None:
            override = self.kernel_override
            specs = [spec if spec.kernel == override
                     else replace(spec, kernel=override)
                     for spec in specs]
        results: List[Optional[ScenarioResult]] = [None] * len(specs)
        first_seen: Dict[str, int] = {}
        misses: List[Tuple[int, ScenarioSpec, str]] = []
        duplicates: List[Tuple[int, ScenarioSpec, str, int]] = []

        batch_span = _TEL.span("serving.batch", size=len(specs))
        batch_span.__enter__()
        for i, spec in enumerate(specs):
            start = time.perf_counter()
            key = self.key_for(spec)
            if key in first_seen:
                duplicates.append((i, spec, key, first_seen[key]))
                continue
            value, layer = self.cache.lookup(key)
            elapsed = time.perf_counter() - start
            if value is not None:
                results[i] = ScenarioResult(spec=spec, key=key,
                                            value=value, source=layer,
                                            elapsed=elapsed)
                if self.warm_start:
                    # A disk hit has not been indexed this process yet.
                    self.warm_index.add(spec, key, value)
            else:
                first_seen[key] = i
                misses.append((i, spec, key))

        if misses:
            self._solve_misses(misses, results)

        for i, spec, key, primary in duplicates:
            primary_result = results[primary]
            assert primary_result is not None
            results[i] = ScenarioResult(
                spec=spec, key=key, value=primary_result.value,
                error=primary_result.error,
                source=("dedup" if primary_result.source
                        in ("solved", "dedup") else primary_result.source),
                warm_key=primary_result.warm_key,
                solver=primary_result.solver,
                degraded=primary_result.degraded, elapsed=0.0)
        out = [r for r in results if r is not None]
        if _TEL.enabled:
            self._record_batch(out, misses=len(misses),
                               duplicates=len(duplicates))
            batch_span.set(misses=len(misses), dedup=len(duplicates))
        batch_span.__exit__(None, None, None)
        return out

    def _record_batch(self, results: List[ScenarioResult],
                      misses: int, duplicates: int) -> None:
        """Export one batch's outcome to the metrics registry."""
        metrics = _TEL.metrics
        metrics.counter("serving_batches_total",
                        "Batches served").inc()
        metrics.gauge("serving_last_batch_size",
                      "Scenario count of the most recent batch").set(
            len(results))
        metrics.counter("serving_dedup_total",
                        "In-batch duplicate scenarios answered by the "
                        "first solve").inc(duplicates)
        latency = metrics.histogram(
            "serving_scenario_seconds",
            "Per-scenario wall clock (lookup for hits, solve for "
            "misses)")
        for res in results:
            metrics.counter("serving_results_total",
                            "Scenario results by source",
                            labels={"source": res.source}).inc()
            latency.observe(res.elapsed)
            if res.error is not None:
                metrics.counter("serving_errors_total",
                                "Scenarios that failed to solve").inc()
                _TEL.emit(  # repro: noqa[RPR008] — caller holds guard
                    "serving.error", key=res.key, error=res.error)
            if res.degraded:
                metrics.counter("serving_degraded_total",
                                "Scenarios answered by a fallback or "
                                "stalled approximation").inc()
                _TEL.emit(  # repro: noqa[RPR008] — caller holds guard
                    "serving.degraded", key=res.key, solver=res.solver)
        solve_latency = metrics.histogram(
            "serving_solve_seconds",
            "Wall clock of cache-miss solves, split warm vs cold",
            labels={"warm": "true"})
        cold_latency = metrics.histogram(
            "serving_solve_seconds",
            "Wall clock of cache-miss solves, split warm vs cold",
            labels={"warm": "false"})
        for res in results:
            if res.source == "solved" and res.ok:
                (solve_latency if res.warm_key is not None
                 else cold_latency).observe(res.elapsed)
        # The dedup ratio the throughput benchmark prints, exported:
        # duplicates avoided per submitted scenario.
        if results:
            metrics.gauge("serving_dedup_ratio",
                          "Duplicates per submitted scenario in the "
                          "last batch").set(duplicates / len(results))
        metrics.gauge("serving_cache_hit_rate",
                      "Lifetime cache hit rate").set(
            self.cache.stats.hit_rate)
        window = self.cache.stats.delta(self._window_stats)
        self._window_stats = self.cache.stats.copy()
        metrics.gauge("serving_cache_window_hit_rate",
                      "Cache hit rate since the previous recorded "
                      "batch (the per-window view detectors watch)"
                      ).set(window.hit_rate)
        metrics.gauge("serving_cache_entries",
                      "In-memory cache entries").set(len(self.cache))

    # ------------------------------------------------------------------

    def _batch_eligible(self, spec: ScenarioSpec) -> bool:
        """Whether a miss can join a cross-scenario batched solve.

        The batched kernel covers exactly the connected-mode miner
        solves that the vectorized aggregate kernel would answer:
        everything else (standalone shadow-price searches, type-space
        compression, leader-stage queries, sweeping kernels) keeps the
        per-scenario path.  Past ``MULTISCENARIO_MAX_N`` miners a solo
        vectorized solve is already efficient and lockstep batching is
        measured overhead, so large games stay per-scenario too.
        """
        from ..kernels.multiscenario import MULTISCENARIO_MAX_N

        return (spec.kind == "miner"
                and spec.params.mode is EdgeMode.CONNECTED
                and spec.n_types is None
                and spec.params.n <= MULTISCENARIO_MAX_N
                and spec.scheme in ("auto", "best-response",
                                    "decomposition")
                and spec.kernel in KERNELS
                and resolve_kernel(spec.kernel,
                                   spec.params.n) == "vectorized")

    def _solve_multiscenario(
            self, misses: List[Tuple[int, ScenarioSpec, str]],
            results: List[Optional[ScenarioResult]]
    ) -> List[Tuple[int, ScenarioSpec, str]]:
        """Answer compatible miss groups with one batched kernel call.

        Returns the misses still unanswered: ineligible scenarios,
        groups of one (no batching win), and scenarios the batched
        kernel could not certify at tolerance — those keep the exact
        per-scenario fallback (guard chains included).
        """
        from ..kernels.multiscenario import solve_connected_multiscenario

        groups: Dict[Tuple[int, float],
                     List[Tuple[int, ScenarioSpec, str]]] = {}
        remaining: List[Tuple[int, ScenarioSpec, str]] = []
        for item in misses:
            spec = item[1]
            if self._batch_eligible(spec):
                groups.setdefault((spec.params.n, spec.tol),
                                  []).append(item)
            else:
                remaining.append(item)
        for (_, tol), group in groups.items():
            if len(group) < 2:
                remaining.extend(group)
                continue
            start = time.perf_counter()
            try:
                solved = solve_connected_multiscenario(
                    [(spec.params, spec.prices)
                     for _, spec, _ in group], tol=tol)
            except Exception:  # repro: noqa[RPR007] — batch-level
                # capture boundary: a failed group falls back to the
                # per-scenario path, which reports errors properly.
                remaining.extend(group)
                continue
            elapsed = (time.perf_counter() - start) / len(group)
            for (i, spec, key), value in zip(group, solved):
                if value is None:
                    remaining.append((i, spec, key))
                    continue
                results[i] = ScenarioResult(
                    spec=spec, key=key, value=value, source="solved",
                    solver="nep-multiscenario", elapsed=elapsed)
                self._admit(spec, key, value)
        # Restore submission order so the serial fallback's in-batch
        # warm-start chaining stays deterministic.
        remaining.sort(key=lambda item: item[0])
        return remaining

    def _solve_misses(self, misses: List[Tuple[int, ScenarioSpec, str]],
                      results: List[Optional[ScenarioResult]]) -> None:
        if self.batch_mode == "multiscenario" and len(misses) > 1:
            misses = self._solve_multiscenario(misses, results)
            if not misses:
                return
        workers = self.max_workers or 0
        if workers > 1 and len(misses) > 1:
            self._solve_parallel(misses, results, workers)
        else:
            self._solve_serial(misses, results)

    def _solve_serial(self, misses: List[Tuple[int, ScenarioSpec, str]],
                      results: List[Optional[ScenarioResult]]) -> None:
        # Inline serial path: solve in submission order, admitting
        # each equilibrium before the next solve so warm starts
        # chain *within* the batch (a sweep's point k warm-starts
        # from point k-1, exactly like a hand-rolled sweep would).
        for i, spec, key in misses:
            warm = self.warm_index.suggest(spec) if self.warm_start \
                else None
            (_, value, error, solver, degraded,
             elapsed) = _solve_chunk(
                [(0, spec, warm, self.use_guard)])[0]
            results[i] = ScenarioResult(
                spec=spec, key=key, value=value, error=error,
                source="solved",
                warm_key=warm.key if warm is not None else None,
                solver=solver, degraded=degraded, elapsed=elapsed)
            if error is None:
                self._admit(spec, key, value)

    def _solve_parallel(self, misses: List[Tuple[int, ScenarioSpec, str]],
                        results: List[Optional[ScenarioResult]],
                        workers: int) -> None:
        # Pool width and chunk size come from the measured solver
        # trajectory (BENCH_solvers.json): workers are only added while
        # each still receives enough solve work to amortize its startup.
        plan = plan_fanout(
            len(misses), n=max(spec.params.n for _, spec, _ in misses),
            max_workers=workers, bench_path=self.bench_path,
            chunk_size=self.chunk_size)
        if plan.inline:
            # Too little work to pay for even one extra process —
            # the serial path also chains warm starts within the batch.
            self._solve_serial(misses, results)
            return
        if _TEL.enabled:
            _TEL.metrics.gauge(
                "serving_fanout_workers",
                "Process-pool width chosen by the fan-out planner for "
                "the most recent parallel miss batch").set(plan.workers)

        # Suggestions are computed up front from the pre-batch index:
        # worker processes cannot see equilibria admitted mid-batch.
        payloads = []
        warm_keys: Dict[int, Optional[str]] = {}
        for position, (i, spec, key) in enumerate(misses):
            warm = self.warm_index.suggest(spec) if self.warm_start \
                else None
            warm_keys[position] = warm.key if warm is not None else None
            payloads.append((position, spec, warm, self.use_guard))

        size = plan.chunk_size
        solved = []
        block: Optional[SharedBudgetBlock] = None
        if self.use_shared_memory:
            try:
                block = SharedBudgetBlock(
                    [spec.params.budget_array
                     for _, spec, _ in misses])
            except (OSError, ValueError):
                block = None  # platform without usable shared memory
        try:
            with ProcessPoolExecutor(max_workers=plan.workers) as pool:
                if block is not None:
                    # Zero-copy path: ship specs with a minimal
                    # placeholder budget vector plus an
                    # (offset, length) handle into the shared segment;
                    # workers restore the real vector before solving.
                    shm_payloads = [
                        (position,
                         replace(spec,
                                 params=spec.params.with_budgets(
                                     (1.0, 1.0))),
                         block.handles[position], warm, use_guard)
                        for position, spec, warm, use_guard in payloads]
                    chunks = [(block.name, shm_payloads[i:i + size])
                              for i in range(0, len(shm_payloads), size)]
                    for chunk_result in pool.map(_solve_chunk_shm,
                                                 chunks):
                        solved.extend(chunk_result)
                else:
                    chunks = [payloads[i:i + size]
                              for i in range(0, len(payloads), size)]
                    for chunk_result in pool.map(_solve_chunk, chunks):
                        solved.extend(chunk_result)
        finally:
            if block is not None:
                block.close()

        for position, value, error, solver, degraded, elapsed in solved:
            i, spec, key = misses[position]
            results[i] = ScenarioResult(
                spec=spec, key=key, value=value, error=error,
                source="solved", warm_key=warm_keys[position],
                solver=solver, degraded=degraded, elapsed=elapsed)
            if error is None:
                self._admit(spec, key, value)
