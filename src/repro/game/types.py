"""Core abstractions for finite-player continuous games.

A game here is a set of players, each owning a block of the joint strategy
vector, a concave payoff ``u_i(x_i, x_{-i})``, and a convex feasible set for
its block. The miner subgames of the paper are instances: each miner owns the
2-vector ``[e_i, c_i]``.

These abstractions intentionally stay small: concrete games in
:mod:`repro.core` supply closed-form gradients and best responses, and the
generic solvers in :mod:`repro.game.best_response` / :mod:`repro.game.vi`
operate through this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

__all__ = ["StrategySpace", "BudgetBox", "Player", "ContinuousGame"]


class StrategySpace(abc.ABC):
    """A convex feasible set for one player's strategy block."""

    #: Dimension of the strategy block.
    dim: int

    @abc.abstractmethod
    def project(self, x: np.ndarray) -> np.ndarray:
        """Euclidean projection of ``x`` onto the set."""

    @abc.abstractmethod
    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Whether ``x`` lies in the set, up to tolerance ``tol``."""

    @abc.abstractmethod
    def interior_point(self) -> np.ndarray:
        """A strictly feasible point, used to initialize solvers."""


@dataclass
class BudgetBox(StrategySpace):
    """The set ``{x >= 0 : prices . x <= budget}`` (a simplex-like polytope).

    This is each miner's strategy set in the paper (constraint 1b): requests
    are non-negative and total spending stays within the budget.
    """

    prices: np.ndarray
    budget: float

    def __post_init__(self) -> None:
        self.prices = np.asarray(self.prices, dtype=float)
        if self.prices.ndim != 1:
            raise ValueError("prices must be a 1-D array")
        if np.any(self.prices <= 0):
            raise ValueError("all prices must be positive")
        if self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")
        self.dim = self.prices.shape[0]

    def project(self, x: np.ndarray) -> np.ndarray:
        from .projections import project_budget_orthant

        return project_budget_orthant(np.asarray(x, dtype=float),
                                      self.prices, self.budget)

    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        x = np.asarray(x, dtype=float)
        if np.any(x < -tol):
            return False
        return float(np.dot(self.prices, x)) <= self.budget + tol

    def interior_point(self) -> np.ndarray:
        # Spend half the budget, split evenly across coordinates.
        per_coord = self.budget / (2.0 * self.dim)
        return per_coord / self.prices


class Player(abc.ABC):
    """One player of a continuous game.

    Concrete players provide payoff, payoff gradient (w.r.t. their own
    block), and optionally an exact best response.
    """

    #: The player's feasible set.
    space: StrategySpace

    @abc.abstractmethod
    def payoff(self, own: np.ndarray, others: Any) -> float:
        """Payoff of playing ``own`` against opponent context ``others``."""

    @abc.abstractmethod
    def payoff_gradient(self, own: np.ndarray, others: Any) -> np.ndarray:
        """Gradient of :meth:`payoff` with respect to ``own``."""

    def best_response(self, others: Any) -> Optional[np.ndarray]:
        """Exact best response if available, else ``None``.

        Solvers fall back to projected-gradient maximization when a player
        does not implement this.
        """
        return None


class ContinuousGame:
    """A finite collection of :class:`Player` objects over stacked blocks.

    The joint strategy is represented as a list of per-player arrays, which
    keeps block boundaries explicit (miners own 2-vectors in this library).
    """

    def __init__(self, players: Sequence[Player]) -> None:
        if len(players) == 0:
            raise ValueError("a game needs at least one player")
        self.players: List[Player] = list(players)

    @property
    def num_players(self) -> int:
        return len(self.players)

    def stack(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        """Concatenate per-player blocks into one flat vector."""
        return np.concatenate([np.asarray(b, dtype=float) for b in blocks])

    def split(self, flat: np.ndarray) -> List[np.ndarray]:
        """Split a flat joint vector back into per-player blocks."""
        blocks: List[np.ndarray] = []
        offset = 0
        for player in self.players:
            d = player.space.dim
            blocks.append(np.asarray(flat[offset:offset + d], dtype=float))
            offset += d
        if offset != len(flat):
            raise ValueError(
                f"joint vector has length {len(flat)}, expected {offset}")
        return blocks

    def initial_profile(self) -> List[np.ndarray]:
        """A strictly feasible starting profile for iterative solvers."""
        return [p.space.interior_point() for p in self.players]
