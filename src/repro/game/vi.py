"""Variational-inequality (VI) machinery for the GNEP miner subgame.

The standalone-mode miner subgame (Problem 1c) is a jointly convex GNEP. Its
*variational equilibrium* — the GNE the paper's Algorithm 2 targets — is the
solution of VI(K, F) where

* ``K`` is the joint convex set: per-miner budget boxes intersected with the
  shared capacity half-space ``sum_i e_i <= E_max``;
* ``F(x)`` stacks the negated payoff gradients ``-grad_i u_i(x)``.

Two solvers are provided:

* :func:`extragradient` — Korpelevich's extragradient method. Converges for
  monotone Lipschitz ``F`` on closed convex ``K`` and needs only a
  projection oracle for ``K``.
* :func:`solve_vi_adaptive` — extragradient with simple backtracking on the
  step size, which avoids hand-tuning the Lipschitz constant.

A finite-difference monotonicity probe (:func:`monotonicity_gap`) supports
tests and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..exceptions import ConvergenceError
from ..telemetry import RESIDUAL_BUCKETS, TELEMETRY as _TEL
from .diagnostics import ConvergenceReport, ResidualRecorder

__all__ = [
    "VIProblem",
    "VIResult",
    "extragradient",
    "solve_vi_adaptive",
    "natural_residual",
    "monotonicity_gap",
]


@dataclass
class VIProblem:
    """A variational inequality VI(K, F): find x* in K with
    ``F(x*) . (y - x*) >= 0`` for all y in K.

    Attributes:
        operator: The map ``F``.
        project: Euclidean projection onto ``K``.
        dim: Dimension of the ambient space.
    """

    operator: Callable[[np.ndarray], np.ndarray]
    project: Callable[[np.ndarray], np.ndarray]
    dim: int


@dataclass
class VIResult:
    """Solution of a VI along with convergence diagnostics."""

    solution: np.ndarray
    report: ConvergenceReport

    @property
    def converged(self) -> bool:
        return self.report.converged


def natural_residual(problem: VIProblem, x: np.ndarray,
                     step: float = 1.0) -> float:
    """Infinity-norm of the natural residual ``x - P_K(x - step*F(x))``.

    Zero exactly at VI solutions; the standard merit function for projection
    methods.
    """
    return float(np.max(np.abs(
        x - problem.project(x - step * problem.operator(x)))))


def _record_vi_solve(solver: str, report: ConvergenceReport,
                     kernel: str = "scalar",
                     operator_evals: int = 0) -> None:
    """Aggregate metrics for one finished VI solve (telemetry enabled)."""
    labels = {"solver": solver, "kernel": kernel}
    _TEL.metrics.counter("vi_solves_total", "Completed VI solves",
                         labels=labels).inc()
    _TEL.metrics.counter("vi_iterations_total",
                         "Outer VI iterations across all solves",
                         labels=labels).inc(report.iterations)
    if operator_evals:
        _TEL.metrics.counter("vi_operator_evals_total",
                             "Operator (F) evaluations across all solves",
                             labels=labels).inc(operator_evals)
    if not report.converged:
        _TEL.metrics.counter("vi_nonconverged_total",
                             "VI solves that hit the iteration budget",
                             labels=labels).inc()
        _TEL.emit("vi.nonconverged", solver=solver,
                  iterations=report.iterations, residual=report.residual)


def extragradient(problem: VIProblem,
                  x0: Optional[np.ndarray] = None,
                  step: float = 0.1,
                  tol: float = 1e-9,
                  max_iter: int = 20000,
                  raise_on_failure: bool = False,
                  kernel: str = "scalar") -> VIResult:
    """Korpelevich extragradient method with a fixed step size.

    Each iteration takes a predictor step, evaluates ``F`` there, and takes a
    corrector step from the original point:

        y = P_K(x - step * F(x))
        x = P_K(x - step * F(y))

    Converges for monotone, Lipschitz ``F`` whenever
    ``step < 1 / L``; use :func:`solve_vi_adaptive` when the Lipschitz
    constant is unknown.

    ``kernel`` labels the telemetry series with the projection kernel
    the caller wired into ``problem`` (``"scalar"`` per-miner loops vs
    ``"vectorized"`` batch projections); it does not change behaviour.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    x = (np.zeros(problem.dim) if x0 is None
         else np.asarray(x0, dtype=float).copy())
    x = problem.project(x)
    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    # Telemetry seam, hoisted: one None check per iteration when the
    # global facade is disabled (the zero-overhead contract).
    residual_hist = (_TEL.metrics.histogram(
        "vi_residual", "Per-iteration VI residuals",
        labels={"solver": "extragradient", "kernel": kernel},
        buckets=RESIDUAL_BUCKETS)
        if _TEL.enabled else None)
    for k in range(max_iter):
        iterations = k + 1
        fx = problem.operator(x)
        y = problem.project(x - step * fx)
        fy = problem.operator(y)
        x_new = problem.project(x - step * fy)
        residual = float(np.max(np.abs(x_new - x)))
        x = x_new
        if residual_hist is not None:
            residual_hist.observe(residual)
        if recorder.record(residual):
            converged = True
            break
    report = recorder.report(converged, iterations)
    if _TEL.enabled:
        _record_vi_solve("extragradient", report, kernel=kernel,
                         operator_evals=2 * iterations)
    if not converged and raise_on_failure:
        raise ConvergenceError(f"extragradient failed: {report}", report)
    return VIResult(solution=x, report=report)


def solve_vi_adaptive(problem: VIProblem,
                      x0: Optional[np.ndarray] = None,
                      step: float = 1.0,
                      shrink: float = 0.5,
                      tol: float = 1e-9,
                      max_iter: int = 20000,
                      raise_on_failure: bool = False,
                      kernel: str = "scalar") -> VIResult:
    """Extragradient with backtracking step-size adaptation.

    The step is shrunk whenever the local Lipschitz test
    ``step * ||F(x) - F(y)|| <= 0.9 * ||x - y||`` fails, so no Lipschitz
    constant needs to be known a priori. The step never grows, which keeps
    the classical convergence guarantee.

    ``kernel`` labels the telemetry series with the projection kernel
    the caller wired into ``problem``; it does not change behaviour.
    """
    if not 0.0 < shrink < 1.0:
        raise ValueError(f"shrink must be in (0, 1), got {shrink}")
    x = (np.zeros(problem.dim) if x0 is None
         else np.asarray(x0, dtype=float).copy())
    x = problem.project(x)
    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    current_step = step
    shrinks = 0
    f_evals = 0
    residual_hist = (_TEL.metrics.histogram(
        "vi_residual", "Per-iteration VI residuals",
        labels={"solver": "adaptive", "kernel": kernel},
        buckets=RESIDUAL_BUCKETS)
        if _TEL.enabled else None)
    for k in range(max_iter):
        iterations = k + 1
        fx = problem.operator(x)
        f_evals += 1
        while True:
            y = problem.project(x - current_step * fx)
            diff = y - x
            norm_diff = float(np.linalg.norm(diff))
            if norm_diff == 0.0:  # repro: noqa[RPR002] — exact 0 step
                # y coincides with x, so F(y) is F(x) exactly — no
                # evaluation needed (and the Lipschitz test is vacuous).
                fy = fx
                break
            fy = problem.operator(y)
            f_evals += 1
            if (current_step * float(np.linalg.norm(fy - fx))
                    <= 0.9 * norm_diff):
                break
            current_step *= shrink
            shrinks += 1
            if current_step < 1e-14:
                raise ConvergenceError(
                    "extragradient step size underflow; operator may not be "
                    "locally Lipschitz on the feasible set")
        # The backtracking loop exits with fy = F(y) already in hand;
        # re-evaluating it here would waste one F-eval per iteration.
        x_new = problem.project(x - current_step * fy)
        residual = float(np.max(np.abs(x_new - x)))
        x = x_new
        if residual_hist is not None:
            residual_hist.observe(residual)
        if recorder.record(residual):
            converged = True
            break
    report = recorder.report(converged, iterations,
                             message=f"final step {current_step:.2e}")
    if _TEL.enabled:
        _record_vi_solve("adaptive", report, kernel=kernel,
                         operator_evals=f_evals)
        if shrinks:
            _TEL.metrics.counter(
                "vi_step_shrinks_total",
                "Backtracking step reductions in the adaptive solver",
                labels={"solver": "adaptive"}).inc(shrinks)
    if not converged and raise_on_failure:
        raise ConvergenceError(f"adaptive extragradient failed: {report}",
                               report)
    return VIResult(solution=x, report=report)


def monotonicity_gap(operator: Callable[[np.ndarray], np.ndarray],
                     points: np.ndarray) -> float:
    """Smallest pairwise monotonicity inner product over sample points.

    For a monotone operator, ``(F(x) - F(y)) . (x - y) >= 0`` for all pairs;
    this returns the minimum over all pairs in ``points`` (shape
    ``(m, dim)``). Negative values witness non-monotonicity.
    """
    points = np.asarray(points, dtype=float)
    values = [operator(p) for p in points]
    gap = float("inf")
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            inner = float(np.dot(values[i] - values[j],
                                 points[i] - points[j]))
            gap = min(gap, inner)
    return gap
