"""Generic damped best-response iteration for continuous games.

This implements the fixed-point scheme behind the paper's Algorithm 1 and the
follower stage of Algorithm 2: each player, in turn (Gauss-Seidel) or all at
once (Jacobi), replaces its strategy with a best response to the current
profile, optionally damped:

    x_i  <-  (1 - alpha) * x_i + alpha * BR_i(x_{-i})

For games whose best-response map is a contraction (the paper's NEP_MINER
under strict monotonicity, Theorem 2), this converges to the unique Nash
equilibrium from any feasible starting point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..exceptions import ConvergenceError
from .diagnostics import ConvergenceReport, ResidualRecorder
from .types import ContinuousGame, Player

__all__ = ["BestResponseOptions", "BestResponseResult", "solve_nash",
           "projected_gradient_response"]


@dataclass
class BestResponseOptions:
    """Tuning knobs for :func:`solve_nash`.

    Attributes:
        tol: Convergence tolerance on the infinity-norm strategy update.
        max_iter: Maximum outer sweeps over all players.
        damping: Step ``alpha`` in the damped update; 1.0 is undamped.
        sweep: ``"gauss-seidel"`` (asynchronous, uses fresh opponent
            strategies within a sweep — the paper's asynchronous
            best-response) or ``"jacobi"`` (simultaneous).
        raise_on_failure: If True, raise :class:`ConvergenceError` instead of
            returning a non-converged result.
    """

    tol: float = 1e-9
    max_iter: int = 2000
    damping: float = 1.0
    sweep: str = "gauss-seidel"
    raise_on_failure: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.damping <= 1.0:
            raise ValueError(f"damping must be in (0, 1], got {self.damping}")
        if self.sweep not in ("gauss-seidel", "jacobi"):
            raise ValueError(f"unknown sweep mode {self.sweep!r}")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")


@dataclass
class BestResponseResult:
    """Equilibrium profile plus convergence diagnostics."""

    profile: List[np.ndarray]
    report: ConvergenceReport

    @property
    def converged(self) -> bool:
        return self.report.converged


def projected_gradient_response(player: Player, others: Any,
                                start: np.ndarray,
                                step: float = 0.1,
                                tol: float = 1e-10,
                                max_iter: int = 5000) -> np.ndarray:
    """Fallback best response by projected gradient ascent.

    Used when a player does not provide a closed-form best response. The
    payoffs in this library are concave on convex sets, so projected
    gradient ascent with a diminishing step converges to the maximizer.
    """
    x = player.space.project(np.asarray(start, dtype=float))
    for k in range(1, max_iter + 1):
        grad = player.payoff_gradient(x, others)
        # Diminishing step keeps the iteration stable near the boundary.
        alpha = step / np.sqrt(k)
        x_new = player.space.project(x + alpha * grad)
        if float(np.max(np.abs(x_new - x))) < tol:
            return x_new
        x = x_new
    return x


def solve_nash(game: ContinuousGame,
               build_context: Callable[[List[np.ndarray], int], object],
               options: Optional[BestResponseOptions] = None,
               initial: Optional[Sequence[np.ndarray]] = None,
               ) -> BestResponseResult:
    """Find a Nash equilibrium by (damped) best-response iteration.

    Args:
        game: The game to solve.
        build_context: Maps ``(profile, i)`` to the opponent context object
            passed to player ``i``'s payoff/best-response. Keeping this as a
            callable lets concrete games pass cheap aggregate statistics
            (e.g. opponents' total requests) instead of full profiles.
        options: Iteration options; defaults to :class:`BestResponseOptions`.
        initial: Starting profile; defaults to each player's interior point.

    Returns:
        :class:`BestResponseResult` with the final profile and diagnostics.

    Raises:
        ConvergenceError: If ``options.raise_on_failure`` and the iteration
            does not reach ``options.tol`` within ``options.max_iter`` sweeps.
    """
    opts = options or BestResponseOptions()
    if initial is None:
        profile = game.initial_profile()
    else:
        profile = [np.asarray(b, dtype=float).copy() for b in initial]
        if len(profile) != game.num_players:
            raise ValueError(
                f"initial profile has {len(profile)} blocks, expected "
                f"{game.num_players}")

    recorder = ResidualRecorder(opts.tol)
    converged = False
    iterations = 0
    for sweep_idx in range(opts.max_iter):
        iterations = sweep_idx + 1
        if opts.sweep == "jacobi":
            source = [b.copy() for b in profile]
        else:
            source = profile
        residual = 0.0
        for i, player in enumerate(game.players):
            others = build_context(source, i)
            br = player.best_response(others)
            if br is None:
                br = projected_gradient_response(player, others, profile[i])
            br = np.asarray(br, dtype=float)
            new = (1.0 - opts.damping) * profile[i] + opts.damping * br
            new = player.space.project(new)
            residual = max(residual,
                           float(np.max(np.abs(new - profile[i]))))
            profile[i] = new
        if recorder.record(residual):
            converged = True
            break

    report = recorder.report(converged, iterations)
    if not converged and opts.raise_on_failure:
        raise ConvergenceError(
            f"best-response iteration failed: {report}", report)
    return BestResponseResult(profile=profile, report=report)
