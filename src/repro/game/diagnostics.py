"""Convergence tracking for iterative equilibrium solvers.

Every iterative solver in this library returns (or embeds) a
:class:`ConvergenceReport` so that callers can distinguish "converged",
"stalled", and "hit the iteration budget" without parsing log text.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ConvergenceReport:
    """Outcome of an iterative fixed-point / optimization procedure.

    Attributes:
        converged: Whether the residual dropped below the tolerance.
        iterations: Number of outer iterations performed.
        residual: Final residual (solver-specific metric; typically the
            infinity-norm of the last strategy update).
        tolerance: The tolerance the solver was targeting.
        history: Per-iteration residuals (may be truncated by the solver).
        message: Optional human-readable note, e.g. why a solver stopped.
    """

    converged: bool
    iterations: int
    residual: float
    tolerance: float
    history: List[float] = field(default_factory=list)
    message: Optional[str] = None

    def __str__(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        note = f" ({self.message})" if self.message else ""
        return (
            f"{status} after {self.iterations} iterations, "
            f"residual={self.residual:.3e} (tol={self.tolerance:.1e}){note}"
        )

    def to_dict(self, history_tail: Optional[int] = None
                ) -> Dict[str, Any]:
        """JSON-serializable view of the report.

        The canonical serialization used by the serving cache's disk
        layer and the markdown report generator. ``history_tail`` caps
        the residual history (None keeps all recorded entries).

        Round-trips exactly through :meth:`from_dict`.
        """
        history = list(self.history)
        if history_tail is not None:
            history = history[-history_tail:]
        return {
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "residual": float(self.residual),
            "tolerance": float(self.tolerance),
            "history": [float(r) for r in history],
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ConvergenceReport":
        """Reconstruct a report from :meth:`to_dict` output."""
        return cls(
            converged=bool(payload["converged"]),
            iterations=int(payload["iterations"]),
            residual=float(payload["residual"]),
            tolerance=float(payload["tolerance"]),
            history=[float(r) for r in payload.get("history", [])],
            message=payload.get("message"),
        )


def classify_residuals(history: Sequence[float], tolerance: float,
                       window: int = 20) -> str:
    """Classify the tail behaviour of a residual series.

    Used by :class:`repro.resilience.SolverGuard` to decide whether a
    non-converged solve is worth salvaging or should trip the fallback
    chain.

    Returns one of:

    * ``"empty"`` — no residuals were recorded;
    * ``"invalid"`` — the tail contains NaN/Inf residuals;
    * ``"converged"`` — the last residual is below the tolerance;
    * ``"diverging"`` — the tail grows by an order of magnitude;
    * ``"oscillating"`` — the tail flips direction on most steps without a
      trend (the 2-cycle signature of a reaction-curve jump);
    * ``"stalled"`` — none of the above: the iteration plateaued above the
      tolerance (a degraded-but-usable approximation).
    """
    history = list(history)
    if not history:
        return "empty"
    tail = history[-window:]
    if any(not math.isfinite(r) for r in tail):
        return "invalid"
    if history[-1] < tolerance:
        return "converged"
    if len(tail) >= 3:
        start = max(min(tail), 1e-300)
        if tail[-1] > 10.0 * max(tail[0], start):
            return "diverging"
        diffs = [b - a for a, b in zip(tail, tail[1:])]
        flips = sum(1 for a, b in zip(diffs, diffs[1:]) if a * b < 0)
        spread = max(tail) / max(min(tail), 1e-300)
        if flips >= (2 * (len(diffs) - 1)) // 3 and spread < 50.0:
            return "oscillating"
    return "stalled"


class ResidualRecorder:
    """Accumulates residuals during a solve and builds the final report.

    Keeps at most ``max_history`` entries to bound memory for long runs;
    the most recent residuals are always retained.
    """

    def __init__(self, tolerance: float, max_history: int = 1000) -> None:
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        self.tolerance = tolerance
        self.max_history = max_history
        self._residuals: List[float] = []
        self._truncated = False

    def record(self, residual: float) -> bool:
        """Record one iteration's residual; return True if below tolerance."""
        self._residuals.append(float(residual))
        if len(self._residuals) > self.max_history:
            # Drop the oldest half to amortize the trimming cost.
            self._residuals = self._residuals[self.max_history // 2:]
            self._truncated = True
        return residual < self.tolerance

    @property
    def last_residual(self) -> float:
        return self._residuals[-1] if self._residuals else float("inf")

    @property
    def truncated(self) -> bool:
        """Whether the retained history has dropped early residuals.

        Consumers that reason about the *whole* iteration trajectory
        (rather than its tail, like :func:`classify_residuals` does)
        must check this — a truncated history silently starts mid-run.
        """
        return self._truncated

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable snapshot of the recorder's current state."""
        return {
            "tolerance": float(self.tolerance),
            "max_history": int(self.max_history),
            "residuals": [float(r) for r in self._residuals],
            "last_residual": float(self.last_residual),
            "truncated": bool(self._truncated),
        }

    def report(self, converged: bool, iterations: int,
               message: Optional[str] = None) -> ConvergenceReport:
        return ConvergenceReport(
            converged=converged,
            iterations=iterations,
            residual=self.last_residual,
            tolerance=self.tolerance,
            history=list(self._residuals),
            message=message,
        )
