"""Generic game-theory substrate: strategy spaces, projections, Nash and
variational-inequality solvers.

This package is paper-agnostic; the blockchain-mining games in
:mod:`repro.core` are built on top of it.
"""

from .best_response import (BestResponseOptions, BestResponseResult,
                            projected_gradient_response, solve_nash)
from .diagnostics import (ConvergenceReport, ResidualRecorder,
                          classify_residuals)
from .projections import (dykstra, project_budget_orthant, project_halfspace,
                          project_nonnegative)
from .types import BudgetBox, ContinuousGame, Player, StrategySpace
from .vi import (VIProblem, VIResult, extragradient, monotonicity_gap,
                 natural_residual, solve_vi_adaptive)

__all__ = [
    "BestResponseOptions",
    "BestResponseResult",
    "projected_gradient_response",
    "solve_nash",
    "ConvergenceReport",
    "ResidualRecorder",
    "classify_residuals",
    "dykstra",
    "project_budget_orthant",
    "project_halfspace",
    "project_nonnegative",
    "BudgetBox",
    "ContinuousGame",
    "Player",
    "StrategySpace",
    "VIProblem",
    "VIResult",
    "extragradient",
    "monotonicity_gap",
    "natural_residual",
    "solve_vi_adaptive",
]
