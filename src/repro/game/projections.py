"""Euclidean projections onto the constraint sets used by the miner games.

The miner strategy sets are intersections of simple convex sets:

* the non-negative orthant ``x >= 0``;
* a per-miner budget half-space ``p . x <= B`` (prices ``p > 0``);
* (standalone mode) a shared capacity half-space ``sum_i e_i <= E_max``.

Projections onto each individual set are closed-form; the intersection is
handled with Dykstra's alternating-projection algorithm, which converges to
the exact Euclidean projection for intersections of convex sets.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "project_nonnegative",
    "project_halfspace",
    "project_budget_orthant",
    "project_budget_boxes",
    "project_boxes_capacity",
    "dykstra",
]


def project_nonnegative(x: np.ndarray) -> np.ndarray:
    """Project ``x`` onto the non-negative orthant."""
    return np.maximum(x, 0.0)


def project_halfspace(x: np.ndarray, a: np.ndarray, b: float) -> np.ndarray:
    """Project ``x`` onto the half-space ``{y : a . y <= b}``.

    Args:
        x: Point to project.
        a: Normal vector of the half-space (need not be normalized).
        b: Offset.

    Returns:
        The Euclidean projection. If ``x`` already satisfies the constraint
        it is returned unchanged (same array, not a copy).
    """
    violation = float(np.dot(a, x)) - b
    if violation <= 0.0:
        return x
    denom = float(np.dot(a, a))
    if denom == 0.0:  # repro: noqa[RPR002] — exact zero-normal check
        raise ValueError("half-space normal vector must be nonzero")
    return x - (violation / denom) * a


def project_budget_orthant(x: np.ndarray, prices: np.ndarray,
                           budget: float, tol: float = 1e-12,
                           max_iter: int = 200) -> np.ndarray:
    """Project onto ``{y >= 0 : prices . y <= budget}`` exactly.

    Uses the KKT structure directly: the projection is
    ``max(x - t * prices, 0)`` for the smallest ``t >= 0`` making the budget
    hold, found by a sorted-breakpoint scan (waterfilling). This is exact and
    faster than Dykstra for this 2-set special case.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if np.any(prices <= 0):
        raise ValueError("all prices must be positive")
    y = np.maximum(x, 0.0)
    if float(np.dot(prices, y)) <= budget + tol:
        return y
    # Solve phi(t) = prices . max(x - t*prices, 0) - budget = 0 for t > 0.
    # phi is piecewise-linear, decreasing; breakpoints at t_k = x_k / p_k.
    breakpoints = np.where(x > 0, x / prices, 0.0)
    order = np.argsort(breakpoints)
    # Scan segments between successive breakpoints.
    active = x > 0
    lo = 0.0
    for idx in order:
        hi = breakpoints[idx]
        if hi > lo:
            # On [lo, hi) the active set is fixed: phi(t) = A - t * Q.
            mask = active & (breakpoints > lo + tol)
            A = float(np.dot(prices[mask], x[mask]))
            Q = float(np.dot(prices[mask], prices[mask]))
            if Q > 0:
                t = (A - budget) / Q
                if lo - tol <= t <= hi + tol:
                    return np.maximum(x - t * prices, 0.0)
            lo = hi
    # All coordinates clipped to zero satisfies any non-negative budget.
    return np.zeros_like(x)


def project_budget_boxes(e: np.ndarray, c: np.ndarray, p_e: float,
                         p_c: float, budgets: np.ndarray,
                         tol: float = 1e-12
                         ) -> "tuple[np.ndarray, np.ndarray]":
    """Project all miners' ``(e_i, c_i)`` onto their budget boxes at once.

    The vectorized counterpart of calling :func:`project_budget_orthant`
    per miner on 2-vectors: each point is projected onto
    ``{(y_e, y_c) >= 0 : p_e y_e + p_c y_c <= B_i}``.  In two dimensions
    the waterfilling collapses to a closed form — the interior segment
    ``t = (p . x - B) / ||p||²`` when both shifted coordinates survive,
    otherwise the coordinate with the smaller breakpoint ``x_k / p_k``
    dies and the survivor lands exactly on the budget line at
    ``B / p_j``.

    Args:
        e, c: Coordinates to project, shape ``(n,)`` each (may be
            negative).
        p_e, p_c: Positive prices.
        budgets: Non-negative budgets, shape ``(n,)``.

    Returns:
        ``(e_proj, c_proj)`` — the exact Euclidean projections.
    """
    if p_e <= 0 or p_c <= 0:
        raise ValueError("all prices must be positive")
    budgets = np.asarray(budgets, dtype=float)
    if np.any(budgets < 0):
        raise ValueError("budgets must be non-negative")
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    y_e = np.maximum(e, 0.0)
    y_c = np.maximum(c, 0.0)
    over = p_e * y_e + p_c * y_c > budgets + tol
    if not np.any(over):
        return y_e, y_c
    xe = e[over]
    xc = c[over]
    bb = budgets[over]
    t = (p_e * xe + p_c * xc - bb) / (p_e * p_e + p_c * p_c)
    ze = xe - t * p_e
    zc = xc - t * p_c
    # t <= 0 can only arise from a strongly negative coordinate whose
    # clipping (not the budget shift) drives the violation; the budget
    # multiplier must be positive for the interior segment to apply.
    interior = (t > 0.0) & (ze >= 0.0) & (zc >= 0.0)
    # One coordinate clips to zero: the one whose breakpoint x_k / p_k
    # is reached first as t grows; the survivor takes the whole budget.
    e_dies = xe * p_c <= xc * p_e
    pe = np.where(interior, ze, np.where(e_dies, 0.0, bb / p_e))
    pc = np.where(interior, zc, np.where(e_dies, bb / p_c, 0.0))
    y_e[over] = pe
    y_c[over] = pc
    return y_e, y_c


def project_boxes_capacity(e: np.ndarray, c: np.ndarray, p_e: float,
                           p_c: float, budgets: np.ndarray, e_max: float,
                           tol: float = 1e-12, max_iter: int = 200
                           ) -> "tuple[np.ndarray, np.ndarray]":
    """Joint projection onto budget boxes ∩ ``{Σ e_i <= E_max}``.

    By the KKT conditions of the projection program, the answer is
    ``P_boxes(e - μ, c)`` for the smallest multiplier ``μ >= 0``
    restoring ``Σ e_i <= E_max`` (the capacity constraint's normal only
    touches the ``e`` block).  ``Σ e_i(μ)`` is continuous and
    non-increasing, so ``μ`` comes from scalar bisection; every
    evaluation is one vectorized :func:`project_budget_boxes` call.
    Replaces Dykstra + per-miner Python loops in the extragradient
    projection oracle with an exact ``O(n log(1/tol))`` kernel.

    Args:
        e, c: Coordinates to project, shape ``(n,)`` each.
        p_e, p_c: Positive prices.
        budgets: Non-negative budgets, shape ``(n,)``.
        e_max: Shared edge capacity (positive).
        tol: Absolute tolerance on the capacity residual.
        max_iter: Bisection iteration cap.

    Returns:
        ``(e_proj, c_proj)`` — the Euclidean projection onto the
        intersection.
    """
    if e_max <= 0:
        raise ValueError(f"e_max must be positive, got {e_max}")
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    y_e, y_c = project_budget_boxes(e, c, p_e, p_c, budgets, tol=tol)
    excess = float(np.sum(y_e)) - e_max
    if excess <= tol:
        return y_e, y_c

    def edge_total(mu: float) -> float:
        pe, _ = project_budget_boxes(e - mu, c, p_e, p_c, budgets,
                                     tol=tol)
        return float(np.sum(pe))

    lo, hi = 0.0, 1.0
    guard = 0
    while edge_total(hi) > e_max:
        lo = hi
        hi *= 2.0
        guard += 1
        if guard > 80:
            raise ValueError(
                "capacity multiplier bracket diverged in joint projection")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if mid <= lo or mid >= hi:
            break
        total = edge_total(mid)
        if abs(total - e_max) <= tol:
            lo = hi = mid
            break
        if total > e_max:
            lo = mid
        else:
            hi = mid
    mu = 0.5 * (lo + hi)
    return project_budget_boxes(e - mu, c, p_e, p_c, budgets, tol=tol)


def dykstra(x: np.ndarray,
            projections: Sequence[Callable[[np.ndarray], np.ndarray]],
            tol: float = 1e-10, max_iter: int = 500) -> np.ndarray:
    """Dykstra's algorithm: project onto an intersection of convex sets.

    Args:
        x: Point to project.
        projections: Projection operators for each individual set.
        tol: Stop when a full sweep changes the iterate by less than this
            (infinity norm).
        max_iter: Maximum number of full sweeps.

    Returns:
        (Approximate) Euclidean projection of ``x`` onto the intersection.
    """
    m = len(projections)
    if m == 0:
        return x.copy()
    y = x.astype(float).copy()
    corrections = [np.zeros_like(y) for _ in range(m)]
    for _ in range(max_iter):
        y_prev = y.copy()
        for k, proj in enumerate(projections):
            z = y + corrections[k]
            y_new = proj(z)
            corrections[k] = z - y_new
            y = y_new
        if float(np.max(np.abs(y - y_prev))) < tol:
            break
    return y
