"""Euclidean projections onto the constraint sets used by the miner games.

The miner strategy sets are intersections of simple convex sets:

* the non-negative orthant ``x >= 0``;
* a per-miner budget half-space ``p . x <= B`` (prices ``p > 0``);
* (standalone mode) a shared capacity half-space ``sum_i e_i <= E_max``.

Projections onto each individual set are closed-form; the intersection is
handled with Dykstra's alternating-projection algorithm, which converges to
the exact Euclidean projection for intersections of convex sets.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "project_nonnegative",
    "project_halfspace",
    "project_budget_orthant",
    "dykstra",
]


def project_nonnegative(x: np.ndarray) -> np.ndarray:
    """Project ``x`` onto the non-negative orthant."""
    return np.maximum(x, 0.0)


def project_halfspace(x: np.ndarray, a: np.ndarray, b: float) -> np.ndarray:
    """Project ``x`` onto the half-space ``{y : a . y <= b}``.

    Args:
        x: Point to project.
        a: Normal vector of the half-space (need not be normalized).
        b: Offset.

    Returns:
        The Euclidean projection. If ``x`` already satisfies the constraint
        it is returned unchanged (same array, not a copy).
    """
    violation = float(np.dot(a, x)) - b
    if violation <= 0.0:
        return x
    denom = float(np.dot(a, a))
    if denom == 0.0:
        raise ValueError("half-space normal vector must be nonzero")
    return x - (violation / denom) * a


def project_budget_orthant(x: np.ndarray, prices: np.ndarray,
                           budget: float, tol: float = 1e-12,
                           max_iter: int = 200) -> np.ndarray:
    """Project onto ``{y >= 0 : prices . y <= budget}`` exactly.

    Uses the KKT structure directly: the projection is
    ``max(x - t * prices, 0)`` for the smallest ``t >= 0`` making the budget
    hold, found by a sorted-breakpoint scan (waterfilling). This is exact and
    faster than Dykstra for this 2-set special case.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if np.any(prices <= 0):
        raise ValueError("all prices must be positive")
    y = np.maximum(x, 0.0)
    if float(np.dot(prices, y)) <= budget + tol:
        return y
    # Solve phi(t) = prices . max(x - t*prices, 0) - budget = 0 for t > 0.
    # phi is piecewise-linear, decreasing; breakpoints at t_k = x_k / p_k.
    breakpoints = np.where(x > 0, x / prices, 0.0)
    order = np.argsort(breakpoints)
    # Scan segments between successive breakpoints.
    active = x > 0
    lo = 0.0
    for idx in order:
        hi = breakpoints[idx]
        if hi > lo:
            # On [lo, hi) the active set is fixed: phi(t) = A - t * Q.
            mask = active & (breakpoints > lo + tol)
            A = float(np.dot(prices[mask], x[mask]))
            Q = float(np.dot(prices[mask], prices[mask]))
            if Q > 0:
                t = (A - budget) / Q
                if lo - tol <= t <= hi + tol:
                    return np.maximum(x - t * prices, 0.0)
            lo = hi
    # All coordinates clipped to zero satisfies any non-negative budget.
    return np.zeros_like(x)


def dykstra(x: np.ndarray,
            projections: Sequence[Callable[[np.ndarray], np.ndarray]],
            tol: float = 1e-10, max_iter: int = 500) -> np.ndarray:
    """Dykstra's algorithm: project onto an intersection of convex sets.

    Args:
        x: Point to project.
        projections: Projection operators for each individual set.
        tol: Stop when a full sweep changes the iterate by less than this
            (infinity norm).
        max_iter: Maximum number of full sweeps.

    Returns:
        (Approximate) Euclidean projection of ``x`` onto the intersection.
    """
    m = len(projections)
    if m == 0:
        return x.copy()
    y = x.astype(float).copy()
    corrections = [np.zeros_like(y) for _ in range(m)]
    for _ in range(max_iter):
        y_prev = y.copy()
        for k, proj in enumerate(projections):
            z = y + corrections[k]
            y_new = proj(z)
            corrections[k] = z - y_new
            y = y_new
        if float(np.max(np.abs(y - y_prev))) < tol:
            break
    return y
