"""repro — Hierarchical Edge-Cloud Computing for Mobile Blockchain Mining.

A complete reproduction of the ICDCS 2019 paper by Jiang, Li & Wu: the
multi-leader multi-follower Stackelberg game between an edge service
provider, a cloud service provider, and mobile PoW miners — plus every
substrate it rests on (a PoW blockchain simulator, an edge/cloud
offloading market, population models, and a multi-agent RL framework).

Quickstart::

    from repro import homogeneous, Prices, solve_connected_equilibrium

    params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2, h=0.8)
    eq = solve_connected_equilibrium(params, Prices(p_e=2.0, p_c=1.0))
    print(eq.summary())

Subpackages:

* :mod:`repro.core` — the games, equilibrium solvers, and closed forms;
* :mod:`repro.game` — generic Nash/VI solver substrate;
* :mod:`repro.blockchain` — PoW chain + mining simulators;
* :mod:`repro.offloading` — ESP/CSP providers, dispatch, market;
* :mod:`repro.population` — miner-count models;
* :mod:`repro.learning` — the Section VI-C RL framework;
* :mod:`repro.analysis` — per-figure/table experiment harness;
* :mod:`repro.resilience` — fault injection, retry/backoff, solver
  guards, and graceful degradation (chaos testing);
* :mod:`repro.serving` — batch equilibrium serving: scenario cache,
  nearest-neighbor warm starts, and parallel execution;
* :mod:`repro.telemetry` — opt-in metrics, tracing, and event log
  (disabled by default; zero-overhead when off);
* :mod:`repro.lint` — domain-aware AST static analysis (the RPR rule
  engine behind ``repro-mining lint``).
"""

from .core import (EdgeMode, GameParameters, MinerEquilibrium, Prices,
                   StackelbergEquilibrium, homogeneous,
                   solve_connected_equilibrium, solve_dynamic_equilibrium,
                   solve_stackelberg, solve_standalone_equilibrium,
                   verify_miner_equilibrium)
from .exceptions import (CapacityError, ConfigurationError, ConvergenceError,
                         InfeasibleGameError, ReproError,
                         TransientProviderError)
from .serving import ScenarioSpec, ServingEngine
from .telemetry import get_telemetry, telemetry_session

__version__ = "1.0.0"

__all__ = [
    "EdgeMode",
    "GameParameters",
    "MinerEquilibrium",
    "Prices",
    "StackelbergEquilibrium",
    "homogeneous",
    "solve_connected_equilibrium",
    "solve_dynamic_equilibrium",
    "solve_stackelberg",
    "solve_standalone_equilibrium",
    "verify_miner_equilibrium",
    "CapacityError",
    "ConfigurationError",
    "ConvergenceError",
    "InfeasibleGameError",
    "ReproError",
    "TransientProviderError",
    "ScenarioSpec",
    "ServingEngine",
    "get_telemetry",
    "telemetry_session",
    "__version__",
]
