"""Golden/differential checks a remediation must pass before applying.

Every check pits a live code path against an independently-derived
source of truth — the paper's closed forms, a second solver algorithm,
or the direct (engine-free) solve — on canonical parameters, and runs
entirely on **scratch objects**: verifying a remediation never touches
the live engine or dispatcher. They are the same cross-checks the
differential test-suite runs (``tests/test_differential.py`` imports
them), promoted into the package so the control plane can dry-run a
proposed action against them at runtime.

The :class:`Verifier` maps each remediation type onto the checks that
exercise the subsystem it would change:

====================  ==========================================
remediation           checks
====================  ==========================================
switch-kernel         closed-form + cross-solver + serving vs
                      direct, all on the *target* kernel
resize/flush cache,   serving vs direct on a scratch engine in
rebuild warm index    the remediated configuration
tighten-retry         retry-policy invariants (schedule bounded,
                      deterministic in the seed)
enter-degraded        the all-cloud ``P_e -> inf`` limit zeroes
                      edge demand and converges
exit-degraded         serving vs direct on the default kernel
admission-control     a scratch online service at the proposed
                      concurrency bound answers concurrent
                      duplicates bit-identically to the direct
                      engine solve (coalescing intact, no errors)
compress-scenario     the type-space solve at the proposed
                      ``n_types`` stays within its own certified
                      error bound against the exact per-miner
                      solve on a scratch heterogeneous population
====================  ==========================================
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..core import (Prices, homogeneous, solve_connected_equilibrium,
                    solve_stackelberg, solve_standalone_equilibrium)
from ..core.closed_form import homogeneous_miner_equilibrium
from ..core.gnep import solve_standalone_extragradient
from ..core.params import EdgeMode, GameParameters
from ..resilience.degradation import all_cloud_equilibrium
from ..resilience.retry import RetryPolicy
from ..telemetry import TELEMETRY as _TEL
from ..serving.engine import ServingEngine
from ..serving.keys import ScenarioSpec
from .remediations import (AdmissionControl, CompressScenario,
                           EnterDegradedMode, ExitDegradedMode,
                           FlushCache, RebuildWarmIndex, Remediation,
                           ResizeCache, SwitchKernel,
                           TightenRetryPolicy)

__all__ = ["CheckResult", "VerificationReport", "Verifier",
           "check_connected_closed_form", "check_standalone_cross_solver",
           "check_serving_matches_direct", "check_retry_policy_invariants",
           "check_all_cloud_limit", "check_admission_serves",
           "check_typespace_compression", "run_golden_checks",
           "quiet_telemetry"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one differential check.

    Attributes:
        name: The check's identifier (stable, used in event logs).
        ok: Whether the two implementations agreed within tolerance.
        max_error: Largest relative deviation observed (NaN when the
            check failed before producing a comparison).
        detail: Human-readable context (parameters, failure reason).
    """

    name: str
    ok: bool
    max_error: float = float("nan")
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "ok": self.ok,
                "max_error": self.max_error, "detail": self.detail}


@dataclass(frozen=True)
class VerificationReport:
    """All checks run for one remediation, plus the overall verdict."""

    remediation: Remediation
    checks: Tuple[CheckResult, ...] = ()

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def to_dict(self) -> Dict[str, Any]:
        return {"remediation": self.remediation.to_dict(),
                "ok": self.ok,
                "checks": [c.to_dict() for c in self.checks]}


@contextlib.contextmanager
def quiet_telemetry() -> Iterator[None]:
    """Suppress metric/event recording for a verification scope.

    The differential checks run real solves; were those recorded, the
    control plane would observe its own verification work (thousands of
    VI iterations, scratch-engine cache misses) and detect phantom
    anomalies in the next window. The global switch is flipped off for
    the duration — a deliberate, scoped exception to the "seams never
    mutate telemetry state" rule, mirrored by the test-suite's own use
    of scoped sessions.
    """
    prior = _TEL.enabled
    _TEL.enabled = False
    try:
        yield
    finally:
        _TEL.enabled = prior


def _check_setup() -> Tuple[GameParameters, Prices]:
    """The canonical connected-mode checkpoint: the paper's default
    numerical setup, well inside the mixed-strategy region."""
    params = homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8)
    prices = Prices(p_e=2.0, p_c=1.0)
    return params, prices


def _rel_error(a: np.ndarray, b: np.ndarray) -> float:
    """Largest elementwise relative deviation (atol floor 1e-12)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    scale = np.maximum(np.maximum(np.abs(a), np.abs(b)), 1e-12)
    return float(np.max(np.abs(a - b) / scale))


def check_connected_closed_form(kernel: str = "vectorized",
                                tol: float = 1e-5,
                                params: Optional[GameParameters] = None,
                                prices: Optional[Prices] = None
                                ) -> CheckResult:
    """Connected NEP solver vs the Theorem-3 closed form.

    Defaults to the canonical checkpoint; ``params``/``prices`` override
    it so the differential test-suite can sweep the same check over
    hypothesis-randomized homogeneous draws.
    """
    name = f"connected-closed-form[{kernel}]"
    try:
        default_params, default_prices = _check_setup()
        params = default_params if params is None else params
        prices = default_prices if prices is None else prices
        closed = homogeneous_miner_equilibrium(
            params.n, float(params.budgets[0]), params.reward,
            params.fork_rate, params.effective_h, prices)
        eq = solve_connected_equilibrium(params, prices, kernel=kernel)
        if not eq.converged:
            return CheckResult(name, False,
                               detail="NEP solve did not converge")
        err = max(_rel_error(eq.e, np.full(params.n, closed.e)),
                  _rel_error(eq.c, np.full(params.n, closed.c)))
        return CheckResult(name, err <= tol, err,
                           detail=f"regime={closed.regime}")
    except Exception as ex:  # repro: noqa[RPR007] — a verifier must
        # report any failure mode as a rejection, never crash the loop.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def check_standalone_cross_solver(kernel: str = "vectorized",
                                  tol: float = 2e-3,
                                  params: Optional[GameParameters] = None,
                                  prices: Optional[Prices] = None
                                  ) -> CheckResult:
    """Standalone GNEP decomposition vs the extragradient VI solver."""
    name = f"standalone-cross-solver[{kernel}]"
    try:
        if params is None:
            params = homogeneous(5, 1000.0, reward=1000.0,
                                 fork_rate=0.2,
                                 mode=EdgeMode.STANDALONE, e_max=80.0)
        if prices is None:
            prices = Prices(p_e=2.0, p_c=1.0)
        direct = solve_standalone_equilibrium(params, prices,
                                              kernel=kernel)
        vi = solve_standalone_extragradient(params, prices, tol=1e-10,
                                            kernel=kernel)
        err = max(_rel_error(vi.e, direct.e), _rel_error(vi.c, direct.c))
        return CheckResult(name, err <= tol, err)
    except Exception as ex:  # repro: noqa[RPR007] — see above.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def check_serving_matches_direct(kernel: str = "vectorized",
                                 tol: float = 1e-9,
                                 maxsize: int = 64,
                                 flush_before_serve: bool = False,
                                 rebuild_warm_index: bool = False,
                                 params: Optional[GameParameters] = None
                                 ) -> CheckResult:
    """A scratch serving engine vs the direct Stackelberg solve.

    The scratch engine is built in the *remediated* configuration
    (cache bound, flushed cache, rebuilt warm index) so cache and
    warm-start remediations are verified against the exact code path
    they would leave behind — without touching the live engine.
    """
    name = f"serving-vs-direct[{kernel}]"
    try:
        if params is None:
            params, _ = _check_setup()
        direct = solve_stackelberg(params, kernel=kernel)
        # Warm starts stay off (matching the differential test-suite)
        # except when verifying a warm-index rebuild, where the rebuilt
        # index is empty and the exercised path is a cold suggest-miss.
        engine = ServingEngine(maxsize=maxsize,
                               warm_start=rebuild_warm_index,
                               use_guard=False)
        spec = ScenarioSpec(params=params, kernel=kernel)
        engine.serve(spec)  # populate, then exercise the remediation
        if flush_before_serve:
            engine.flush_cache()
        if rebuild_warm_index:
            engine.rebuild_warm_index()
        result = engine.serve(spec)
        if not result.ok:
            return CheckResult(name, False,
                               detail=f"serving failed: {result.error}")
        served = result.value
        err = max(_rel_error(served.miners.e, direct.miners.e),
                  _rel_error(served.miners.c, direct.miners.c),
                  _rel_error(np.array([served.v_e, served.v_c]),
                             np.array([direct.v_e, direct.v_c])),
                  _rel_error(np.array([served.prices.p_e,
                                       served.prices.p_c]),
                             np.array([direct.prices.p_e,
                                       direct.prices.p_c])))
        return CheckResult(name, err <= tol, err,
                           detail=f"source={result.source}")
    except Exception as ex:  # repro: noqa[RPR007] — see above.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def check_retry_policy_invariants(policy: RetryPolicy) -> CheckResult:
    """The tightened policy is well-formed and its schedule bounded.

    Constructing a :class:`RetryPolicy` already validates the
    parameters; on top of that the check confirms every delay in the
    seeded schedule lies in ``[base_delay, max_delay]`` and that the
    schedule is deterministic in its seed (chaos reproducibility).
    """
    name = "retry-policy-invariants"
    try:
        first = list(policy.delays(seed=7))
        second = list(policy.delays(seed=7))
        if first != second:
            return CheckResult(name, False,
                               detail="schedule not deterministic")
        if len(first) > max(policy.max_attempts - 1, 0):
            return CheckResult(name, False,
                               detail="schedule longer than budget")
        for delay in first:
            if not (policy.base_delay <= delay <= policy.max_delay
                    and math.isfinite(delay)):
                return CheckResult(
                    name, False,
                    detail=f"delay {delay!r} outside "
                           f"[{policy.base_delay}, {policy.max_delay}]")
        return CheckResult(name, True, 0.0,
                           detail=f"max_attempts={policy.max_attempts}")
    except Exception as ex:  # repro: noqa[RPR007] — see above.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def check_all_cloud_limit(tol: float = 1e-6) -> CheckResult:
    """The ``P_e -> inf`` degradation limit zeroes edge demand."""
    name = "all-cloud-limit"
    try:
        params, _ = _check_setup()
        eq = all_cloud_equilibrium(params)
        if not eq.converged:
            return CheckResult(name, False,
                               detail="all-cloud solve did not converge")
        err = float(np.max(np.abs(eq.e)))
        total_cloud = float(np.sum(eq.c))
        ok = err <= tol and total_cloud > 0.0
        return CheckResult(name, ok, err,
                           detail=f"total_cloud={total_cloud:.3f}")
    except Exception as ex:  # repro: noqa[RPR007] — see above.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def check_admission_serves(max_inflight: int,
                           kernel: str = "vectorized",
                           tol: float = 1e-9) -> CheckResult:
    """A scratch online service at the proposed concurrency bound
    still serves correct, coalesced answers.

    Spins up a throwaway :class:`~repro.service.EquilibriumService`
    (own engine, own event loop via ``asyncio.run`` — the control loop
    runs in a plain thread, so no loop is running here), fires more
    concurrent duplicates of the canonical scenario than the bound
    admits, and requires: a positive in-range bound, zero errors,
    exactly one solve (the duplicates coalesced), and a served
    equilibrium matching the direct engine solve bit-for-bit in the
    relative-error metric.
    """
    import asyncio

    from ..service.service import EquilibriumService

    name = f"admission-serves[max_inflight={max_inflight}]"
    try:
        if not 1 <= max_inflight <= 4096:
            return CheckResult(
                name, False,
                detail=f"max_inflight {max_inflight} outside [1, 4096]")
        params, _ = _check_setup()
        spec = ScenarioSpec(params=params, kernel=kernel)
        direct_engine = ServingEngine(maxsize=8, warm_start=False,
                                      use_guard=False)
        direct = direct_engine.serve(spec)
        if not direct.ok:
            return CheckResult(name, False,
                               detail=f"direct solve failed: "
                                      f"{direct.error}")

        async def _exercise() -> Tuple[int, int, Any]:
            service = EquilibriumService(max_inflight=max_inflight,
                                         max_queue=64)
            try:
                client_spec = spec
                responses = await asyncio.gather(
                    *(service.handle(client_spec) for _ in range(8)))
                errors = sum(1 for r in responses if not r.ok)
                return errors, service.solves, responses[0].result
            finally:
                service.close()

        errors, solves, served = asyncio.run(_exercise())
        if errors or solves != 1 or served is None:
            return CheckResult(
                name, False,
                detail=f"errors={errors}, solves={solves} "
                       f"(expected 0 errors, 1 coalesced solve)")
        err = max(_rel_error(served.value.miners.e,
                             direct.value.miners.e),
                  _rel_error(served.value.miners.c,
                             direct.value.miners.c))
        return CheckResult(name, err <= tol, err,
                           detail=f"coalesced 8 -> {solves} solve")
    except Exception as ex:  # repro: noqa[RPR007] — see above.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def check_typespace_compression(n_types: int = 512,
                                n_miners: int = 256,
                                max_bound: float = float("inf")
                                ) -> CheckResult:
    """The compressed solve honors its own certificate.

    Solves a scratch heterogeneous population (deterministic lognormal
    budgets at the interior-spend scale, so a fraction genuinely
    binds) in type space at the proposed ``n_types`` and against the
    exact per-miner aggregate kernel, and requires the measured
    per-coordinate error to sit within the solve's certified
    ``error_bound`` — the same contract the differential test battery
    (``tests/kernels/test_typespace.py``) pins at many sizes.  The
    exercised type count is capped at ``n_miners // 2`` so the check
    always performs *genuine* compression (a production ``n_types``
    typically exceeds the scratch population, where ``k >= n`` would
    short-circuit to the trivially-exact identity path and verify
    nothing).  ``max_bound`` optionally also rejects a *correct but
    useless* certificate (bound too loose for the caller's accuracy
    target).
    """
    from ..kernels.aggregate import solve_connected_aggregate
    from ..kernels.typespace import solve_connected_typespace

    name = f"typespace-compression[n_types={n_types}]"
    try:
        if n_types < 1:
            return CheckResult(name, False,
                               detail=f"n_types {n_types} < 1")
        rng = np.random.default_rng(20260809)
        budgets = (600.0 / n_miners) * rng.lognormal(
            mean=0.0, sigma=0.75, size=n_miners)
        params = GameParameters(reward=1000.0 * n_miners,
                                fork_rate=0.2, budgets=budgets, h=0.8)
        prices = Prices(p_e=2.0, p_c=1.0)
        k = max(1, min(n_types, n_miners // 2))
        ts = solve_connected_typespace(params, prices, k)
        exact = solve_connected_aggregate(params, prices)
        measured = max(float(np.max(np.abs(ts.e - exact.e))),
                       float(np.max(np.abs(ts.c - exact.c))))
        ok = measured <= ts.error_bound <= max_bound
        return CheckResult(
            name, ok, measured,
            detail=f"certified bound {ts.error_bound:.3e} at "
                   f"k={ts.compression.k}, n={n_miners}")
    except Exception as ex:  # repro: noqa[RPR007] — see above.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


def run_golden_checks(kernel: str = "vectorized") -> List[CheckResult]:
    """The full differential battery for one kernel (CLI ``--check``).

    Runs under :func:`quiet_telemetry` — see :meth:`Verifier.verify`.
    """
    with quiet_telemetry():
        return [check_connected_closed_form(kernel),
                check_standalone_cross_solver(kernel),
                check_serving_matches_direct(kernel),
                check_all_cloud_limit()]


class Verifier:
    """Dry-runs remediations against the differential checks.

    Args:
        default_kernel: Kernel exercised when a remediation does not
            itself name one (cache/warm-index/degradation actions).
    """

    def __init__(self, default_kernel: str = "vectorized") -> None:
        self.default_kernel = default_kernel

    def checks_for(self, remediation: Remediation,
                   current_kernel: Optional[str] = None
                   ) -> List[CheckResult]:
        """Run the checks relevant to one remediation (scratch-only)."""
        kernel = current_kernel or self.default_kernel
        if isinstance(remediation, SwitchKernel):
            target = remediation.target
            return [check_connected_closed_form(target),
                    check_standalone_cross_solver(target),
                    check_serving_matches_direct(target)]
        if isinstance(remediation, ResizeCache):
            return [check_serving_matches_direct(
                kernel, maxsize=max(remediation.maxsize, 1))]
        if isinstance(remediation, FlushCache):
            return [check_serving_matches_direct(
                kernel, flush_before_serve=True)]
        if isinstance(remediation, RebuildWarmIndex):
            return [check_serving_matches_direct(
                kernel, rebuild_warm_index=True)]
        if isinstance(remediation, TightenRetryPolicy):
            return [check_retry_policy_invariants(remediation.policy)]
        if isinstance(remediation, EnterDegradedMode):
            return [check_all_cloud_limit()]
        if isinstance(remediation, ExitDegradedMode):
            return [check_serving_matches_direct(kernel)]
        if isinstance(remediation, AdmissionControl):
            return [check_admission_serves(remediation.max_inflight,
                                           kernel)]
        if isinstance(remediation, CompressScenario):
            return [check_typespace_compression(remediation.n_types)]
        return [CheckResult(
            name=f"unknown-remediation[{remediation.kind}]", ok=False,
            detail="no checks registered for this remediation type")]

    def verify(self, remediation: Remediation,
               current_kernel: Optional[str] = None
               ) -> VerificationReport:
        """Full dry-run verdict for one remediation.

        Runs under :func:`quiet_telemetry` so the verification solves
        never feed the detectors that triggered them.
        """
        with quiet_telemetry():
            checks = tuple(self.checks_for(remediation, current_kernel))
        return VerificationReport(remediation=remediation,
                                  checks=checks)
