"""The mutable surface the control plane acts on.

:class:`ControlTarget` bundles the live objects a remediation may
touch — a :class:`~repro.serving.engine.ServingEngine`, a
:class:`~repro.resilience.dispatcher.ResilientDispatcher`, and the
all-cloud degradation flag — behind three operations the actuator
needs: read the current :class:`TargetState` (what the proposer keys
its playbook on), ``apply`` a remediation, and ``snapshot``/``restore``
for transactional rollback when a post-apply check fails.

Either component may be ``None``: a target built around only an engine
ignores retry remediations, and vice versa. ``apply`` reports whether
it actually changed anything so the loop can log no-ops honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from ..exceptions import ConfigurationError
from .remediations import (AdmissionControl, EnterDegradedMode,
                           ExitDegradedMode, FlushCache,
                           RebuildWarmIndex, Remediation, ResizeCache,
                           SwitchKernel, TightenRetryPolicy)

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..resilience.dispatcher import ResilientDispatcher
    from ..resilience.retry import RetryPolicy
    from ..service.service import EquilibriumService
    from ..serving.engine import ServingEngine

__all__ = ["TargetState", "TargetSnapshot", "ControlTarget"]

#: The kernel the engine effectively runs when no override is set
#: (specs default to it throughout the stack).
DEFAULT_KERNEL = "vectorized"


@dataclass(frozen=True)
class TargetState:
    """What the proposer sees: the target's current configuration.

    Attributes:
        kernel: Effective solver kernel (the engine override when set,
            otherwise the stack default).
        cache_maxsize: Scenario cache LRU bound (0 without an engine).
        degraded: Whether all-cloud degradation mode is active.
        retry_tightened: Whether a tightened retry policy has already
            been installed (prevents re-proposing it every window).
        admission_inflight: The online service's admitted solve
            concurrency (0 when the target fronts no service — the
            admission playbook stays inert on batch-only targets).
    """

    kernel: str = DEFAULT_KERNEL
    cache_maxsize: int = 0
    degraded: bool = False
    retry_tightened: bool = False
    admission_inflight: int = 0


@dataclass
class TargetSnapshot:
    """Everything ``restore`` needs to undo one ``apply``."""

    kernel_override: Optional[str] = None
    cache_maxsize: int = 0
    cache_entries: Any = None
    warm_index: Any = None
    retry_policy: Optional["RetryPolicy"] = None
    degraded: bool = False
    retry_tightened: bool = False
    admission_inflight: int = 0


class ControlTarget:
    """Applies remediations to live serving/resilience objects.

    Args:
        engine: The serving engine (kernel, cache, warm-index seams).
        dispatcher: The resilient dispatcher (retry-policy seam).
        service: The online :class:`EquilibriumService` (admission
            seam); when given and ``engine`` is None, the service's
            own engine is adopted so kernel/cache remediations act on
            the same objects the service serves from.
        default_kernel: Kernel reported while no override is active.
    """

    def __init__(self, engine: Optional["ServingEngine"] = None,
                 dispatcher: Optional["ResilientDispatcher"] = None,
                 service: Optional["EquilibriumService"] = None,
                 default_kernel: str = DEFAULT_KERNEL) -> None:
        if engine is None and service is not None:
            engine = service.engine
        self.engine = engine
        self.dispatcher = dispatcher
        self.service = service
        self.default_kernel = default_kernel
        self.degraded = False
        self.retry_tightened = False

    # ------------------------------------------------------------------

    def state(self) -> TargetState:
        """The current configuration, as the proposer keys on it."""
        kernel = self.default_kernel
        maxsize = 0
        if self.engine is not None:
            kernel = self.engine.kernel_override or self.default_kernel
            maxsize = self.engine.cache.maxsize
        inflight = (self.service.max_inflight
                    if self.service is not None else 0)
        return TargetState(kernel=kernel, cache_maxsize=maxsize,
                           degraded=self.degraded,
                           retry_tightened=self.retry_tightened,
                           admission_inflight=inflight)

    def snapshot(self) -> TargetSnapshot:
        """Capture everything a subsequent ``restore`` must put back."""
        snap = TargetSnapshot(degraded=self.degraded,
                              retry_tightened=self.retry_tightened)
        if self.engine is not None:
            snap.kernel_override = self.engine.kernel_override
            snap.cache_maxsize = self.engine.cache.maxsize
            snap.cache_entries = self.engine.cache.snapshot_entries()
            snap.warm_index = self.engine.warm_index
        if self.dispatcher is not None:
            snap.retry_policy = self.dispatcher.policy
        if self.service is not None:
            snap.admission_inflight = self.service.max_inflight
        return snap

    def restore(self, snap: TargetSnapshot) -> None:
        """Roll the target back to a snapshot (inverse of ``apply``)."""
        self.degraded = snap.degraded
        self.retry_tightened = snap.retry_tightened
        if self.engine is not None:
            self.engine.kernel_override = snap.kernel_override
            self.engine.cache.maxsize = snap.cache_maxsize
            if snap.cache_entries is not None:
                self.engine.cache.restore_entries(snap.cache_entries)
            if snap.warm_index is not None:
                self.engine.warm_index = snap.warm_index
        if self.dispatcher is not None and snap.retry_policy is not None:
            self.dispatcher.policy = snap.retry_policy
        if self.service is not None and snap.admission_inflight > 0:
            self.service.set_max_inflight(snap.admission_inflight)

    # ------------------------------------------------------------------

    def apply(self, remediation: Remediation) -> bool:
        """Execute one remediation; True when live state changed.

        A remediation whose component is absent (e.g. a retry action on
        an engine-only target) is a no-op and returns False — the loop
        logs it as skipped rather than applied.
        """
        if isinstance(remediation, SwitchKernel):
            if self.engine is None:
                return False
            target = remediation.target
            if target == self.default_kernel:
                self.engine.set_kernel_override(None)
            else:
                self.engine.set_kernel_override(target)
            return True
        if isinstance(remediation, ResizeCache):
            if self.engine is None:
                return False
            self.engine.resize_cache(remediation.maxsize)
            return True
        if isinstance(remediation, FlushCache):
            if self.engine is None:
                return False
            self.engine.flush_cache()
            return True
        if isinstance(remediation, RebuildWarmIndex):
            if self.engine is None:
                return False
            self.engine.rebuild_warm_index()
            return True
        if isinstance(remediation, TightenRetryPolicy):
            if self.dispatcher is None:
                return False
            self.dispatcher.policy = remediation.policy
            self.retry_tightened = True
            return True
        if isinstance(remediation, EnterDegradedMode):
            if self.degraded:
                return False
            self.degraded = True
            return True
        if isinstance(remediation, ExitDegradedMode):
            if not self.degraded:
                return False
            self.degraded = False
            return True
        if isinstance(remediation, AdmissionControl):
            if self.service is None:
                return False
            if self.service.max_inflight == remediation.max_inflight:
                return False
            self.service.set_max_inflight(remediation.max_inflight)
            return True
        raise ConfigurationError(
            f"unknown remediation {type(remediation).__name__}")
