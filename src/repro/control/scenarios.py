"""Seeded anomaly-induction scenarios for exercising the control loop.

Each function drives the *real* subsystems (serving engine, resilient
dispatcher, VI solver) — or, where real timing would be flaky, records
deterministic observations — until the telemetry window exhibits one
anomaly class. The CLI ``repro-mining control --check --scenario X``
and the control-plane tests share these, so "does detector X fire and
does the loop heal it" is asserted against identical, reproducible
inductions everywhere.

Every induction is deterministic in its ``seed``; none of them touch
wall-clock randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from ..core import Prices, homogeneous
from ..core.gnep import solve_standalone_extragradient
from ..core.params import EdgeMode
from ..offloading.provider import CloudProvider, EdgeProvider
from ..offloading.request import ResourceRequest
from ..resilience.dispatcher import ResilientDispatcher
from ..resilience.faults import FaultInjector, FaultPlan, TransientFaults
from ..resilience.providers import (FaultyCloudProvider,
                                    FaultyEdgeProvider)
from ..resilience.retry import RetryPolicy
from ..serving.engine import ServingEngine
from ..serving.keys import ScenarioSpec
from ..telemetry import TELEMETRY as _TEL
from .anomalies import (KIND_CACHE_COLLAPSE, KIND_RETRY_STORM,
                        KIND_SLO_BREACH, KIND_SOLVER_DIVERGENCE,
                        KIND_WARM_DRIFT)

__all__ = ["InducedScenario", "SCENARIOS", "induce_cache_collapse",
           "induce_retry_storm", "induce_solver_divergence",
           "induce_warm_drift", "induce_slo_breach", "induce"]


@dataclass
class InducedScenario:
    """What an induction built and what it expects the loop to see.

    Attributes:
        kind: The anomaly kind the induction provokes.
        engine: The serving engine involved, when the scenario has one
            (attach it to the :class:`~repro.control.target.ControlTarget`).
        dispatcher: The resilient dispatcher, when the scenario has one.
        detail: Free-form numbers describing what was driven.
    """

    kind: str
    engine: Optional[ServingEngine] = None
    dispatcher: Optional[ResilientDispatcher] = None
    detail: Dict[str, float] = field(default_factory=dict)


def induce_cache_collapse(seed: int = 0, n_specs: int = 24,
                          maxsize: int = 2) -> InducedScenario:
    """Thrash a tiny cache with an all-distinct scenario stream.

    ``n_specs`` distinct miner-stage scenarios (budgets drawn from a
    seeded grid) served through a ``maxsize``-entry cache: every lookup
    misses and the LRU bound evicts constantly, so the windowed hit
    rate collapses to ~0 with evictions > 0 — exactly the signature
    the :class:`~repro.control.anomalies.CacheHitRateCollapse` detector
    keys on (and the grow-the-cache playbook answers).
    """
    engine = ServingEngine(maxsize=maxsize, warm_start=False,
                           use_guard=False)
    prices = Prices(p_e=2.0, p_c=1.0)
    rng = np.random.default_rng(seed)
    budgets = 150.0 + 400.0 * rng.random(n_specs)
    specs = [ScenarioSpec(params=homogeneous(5, float(b), reward=1500.0,
                                             fork_rate=0.2, h=0.8),
                          prices=prices)
             for b in budgets]
    results = engine.serve_batch(specs)
    solved = sum(1 for r in results if r.ok)
    return InducedScenario(
        kind=KIND_CACHE_COLLAPSE, engine=engine,
        detail={"specs": float(n_specs), "solved": float(solved),
                "evictions": float(engine.cache.stats.evictions)})


def induce_retry_storm(seed: int = 0, n_requests: int = 12,
                       rate: float = 0.85) -> InducedScenario:
    """Dispatch through providers whose calls fail transiently.

    A seeded :class:`~repro.resilience.faults.TransientFaults` plan at
    a high failure rate makes nearly every dispatch burn retries and a
    fraction exhaust the attempt budget — the retry-storm signature
    (retries per dispatch above threshold, ``retry_exhausted_total``
    > 0 escalating severity to critical).
    """
    plan = FaultPlan(faults=(TransientFaults(rate=rate, target="both"),),
                     seed=seed)
    injector = FaultInjector(plan)
    edge = FaultyEdgeProvider(
        EdgeProvider(price=2.0, unit_cost=0.2, h=0.8, seed=seed),
        injector)
    cloud = FaultyCloudProvider(
        CloudProvider(price=1.0, unit_cost=0.1, d_avg=0.0), injector)
    dispatcher = ResilientDispatcher(edge, cloud, policy=RetryPolicy(),
                                     seed=seed)
    for i in range(n_requests):
        dispatcher.dispatch(ResourceRequest(miner_id=i, edge_units=2.0,
                                            cloud_units=3.0))
    stats = dispatcher.stats
    return InducedScenario(
        kind=KIND_RETRY_STORM, dispatcher=dispatcher,
        detail={"dispatches": float(stats.dispatches),
                "retries": float(stats.retries),
                "failed": float(stats.failed_requests)})


def induce_solver_divergence(seed: int = 0,
                             max_iter: int = 5) -> InducedScenario:
    """Starve the extragradient VI solver of iterations.

    A real standalone solve capped at ``max_iter`` steps cannot
    converge; it returns a flagged result and bumps
    ``vi_nonconverged_total`` plus a large ``vi_residual`` observation
    — the solver-divergence signature that steps the serving kernel
    down the robustness chain.
    """
    params = homogeneous(5, 1000.0, reward=1000.0, fork_rate=0.2,
                         mode=EdgeMode.STANDALONE, e_max=80.0)
    prices = Prices(p_e=2.0, p_c=1.0)
    eq = solve_standalone_extragradient(params, prices, tol=1e-14,
                                        max_iter=max_iter,
                                        raise_on_failure=False)
    return InducedScenario(
        kind=KIND_SOLVER_DIVERGENCE,
        detail={"converged": float(eq.converged),
                "iterations": float(eq.report.iterations)})


def induce_warm_drift(n_obs: int = 6, warm_seconds: float = 0.9,
                      cold_seconds: float = 0.2) -> InducedScenario:
    """Record a warm-slower-than-cold latency split.

    Real drift induction would depend on wall-clock solver timing
    (flaky under CI load), so the drift signature is recorded directly
    into the ``serving_solve_seconds`` histograms the
    :class:`~repro.control.anomalies.WarmStartDrift` detector reads:
    warm-started solves landing ~4x slower than cold ones.
    """
    metrics = _TEL.metrics
    warm = metrics.histogram(
        "serving_solve_seconds",
        "Wall clock of cache-miss solves, split warm vs cold",
        labels={"warm": "true"})
    cold = metrics.histogram(
        "serving_solve_seconds",
        "Wall clock of cache-miss solves, split warm vs cold",
        labels={"warm": "false"})
    for _ in range(n_obs):
        warm.observe(warm_seconds)
        cold.observe(cold_seconds)
    return InducedScenario(
        kind=KIND_WARM_DRIFT,
        detail={"warm_seconds": warm_seconds,
                "cold_seconds": cold_seconds, "observations": float(n_obs)})


def induce_slo_breach(n_obs: int = 12,
                      seconds: float = 1.5) -> InducedScenario:
    """Record per-scenario latencies far above the serving SLO.

    Like :func:`induce_warm_drift`, the breach is recorded rather than
    timed: ``n_obs`` observations at ``seconds`` push the windowed p95
    of ``serving_scenario_seconds`` over the SLO threshold.
    """
    latency = _TEL.metrics.histogram(
        "serving_scenario_seconds",
        "Per-scenario wall clock (lookup for hits, solve for misses)")
    for _ in range(n_obs):
        latency.observe(seconds)
    return InducedScenario(
        kind=KIND_SLO_BREACH,
        detail={"seconds": seconds, "observations": float(n_obs)})


#: Scenario name → induction function (the CLI's ``--scenario`` menu).
SCENARIOS: Dict[str, Callable[..., InducedScenario]] = {
    "cache-collapse": induce_cache_collapse,
    "retry-storm": induce_retry_storm,
    "solver-divergence": induce_solver_divergence,
    "warm-drift": induce_warm_drift,
    "slo-breach": induce_slo_breach,
}


def induce(name: str, seed: int = 0) -> InducedScenario:
    """Run one named induction (seeded where the scenario draws)."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; expected one of "
                       f"{sorted(SCENARIOS)}")
    if name in ("warm-drift", "slo-breach"):
        return SCENARIOS[name]()
    return SCENARIOS[name](seed=seed)
