"""repro.control — the self-tuning control plane.

A detect → propose → verify → apply remediation loop over the
telemetry stack, making the serving system self-healing:

* **detect** — :mod:`~repro.control.anomalies` classifies windowed
  metric snapshots (cache-hit collapse, solver divergence, retry
  storms, warm-start drift, latency SLO breaches);
* **propose** — :mod:`~repro.control.remediations` maps each anomaly
  to a typed action (switch kernel, resize/flush the cache, rebuild
  the warm-start index, tighten retries, enter/exit all-cloud
  degradation);
* **verify** — :mod:`~repro.control.verify` dry-runs every action
  against the golden/differential checks (closed forms, cross-solver,
  serving-vs-direct) on scratch objects;
* **apply** — :mod:`~repro.control.actuator` executes verified actions
  transactionally, with snapshot rollback when the live post-check
  fails;
* **loop** — :mod:`~repro.control.loop` bounds the whole pipeline with
  per-class cooldowns, a hard action budget, and a recovery path out
  of degradation.

Everything is observable: each decision lands in the telemetry event
log as a ``control.*`` event, so the full detected → proposed →
verified → applied chain is auditable from the JSONL stream. With no
:class:`ControlLoop` constructed, none of this code runs and every
existing output stays bit-identical.

Usage::

    from repro.control import ControlLoop, ControlTarget

    target = ControlTarget(engine=engine, dispatcher=dispatcher)
    loop = ControlLoop(target)
    report = loop.run_once()          # one window, one decision round
    # or: with loop: ...             # background thread at loop.interval
"""

from .actuator import Actuator, Decision
from .anomalies import (KIND_CACHE_COLLAPSE, KIND_RETRY_STORM,
                        KIND_SLO_BREACH, KIND_SOLVER_DIVERGENCE,
                        KIND_WARM_DRIFT, Anomaly, CacheHitRateCollapse,
                        Detector, LatencySloBreach, RetryStorm,
                        SolverDivergence, WarmStartDrift,
                        default_detectors, detect_all)
from .loop import ControlLoop, ControlReport
from .remediations import (KERNEL_ROBUSTNESS_CHAIN, AdmissionControl,
                           CompressScenario, EnterDegradedMode,
                           ExitDegradedMode, FlushCache, Proposer,
                           RebuildWarmIndex, Remediation, ResizeCache,
                           SwitchKernel, TightenRetryPolicy)
from .scenarios import SCENARIOS, InducedScenario, induce
from .target import ControlTarget, TargetSnapshot, TargetState
from .verify import (CheckResult, VerificationReport, Verifier,
                     check_admission_serves, check_all_cloud_limit,
                     check_connected_closed_form,
                     check_retry_policy_invariants,
                     check_serving_matches_direct,
                     check_standalone_cross_solver,
                     check_typespace_compression, run_golden_checks)
from .window import (HistogramWindow, counter_sum, gauge_value,
                     histogram_window)

__all__ = [
    # anomalies
    "Anomaly", "Detector", "CacheHitRateCollapse", "SolverDivergence",
    "RetryStorm", "WarmStartDrift", "LatencySloBreach",
    "default_detectors", "detect_all",
    "KIND_CACHE_COLLAPSE", "KIND_SOLVER_DIVERGENCE", "KIND_RETRY_STORM",
    "KIND_WARM_DRIFT", "KIND_SLO_BREACH",
    # remediations
    "Remediation", "SwitchKernel", "ResizeCache", "FlushCache",
    "RebuildWarmIndex", "TightenRetryPolicy", "EnterDegradedMode",
    "ExitDegradedMode", "AdmissionControl", "CompressScenario",
    "Proposer",
    "KERNEL_ROBUSTNESS_CHAIN",
    # verify
    "CheckResult", "VerificationReport", "Verifier",
    "check_connected_closed_form", "check_standalone_cross_solver",
    "check_serving_matches_direct", "check_retry_policy_invariants",
    "check_all_cloud_limit", "check_admission_serves",
    "check_typespace_compression", "run_golden_checks",
    # target / actuator / loop
    "ControlTarget", "TargetState", "TargetSnapshot",
    "Actuator", "Decision", "ControlLoop", "ControlReport",
    # scenarios
    "InducedScenario", "SCENARIOS", "induce",
    # window readers
    "counter_sum", "gauge_value", "histogram_window", "HistogramWindow",
]
