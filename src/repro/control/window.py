"""Typed readers over windowed metric snapshots.

The control-plane detectors consume the dictionaries produced by
:meth:`repro.telemetry.MetricsRegistry.window_snapshot` (or
:func:`repro.telemetry.snapshot_delta`). These helpers pull single
values out of that nested shape without every detector re-implementing
label matching: counters sum across matching children, gauges report
their level, histograms expose the windowed count/sum/quantiles.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

__all__ = ["counter_sum", "gauge_value", "histogram_window",
           "HistogramWindow"]

Snapshot = Dict[str, Any]


def _matching_values(window: Snapshot, name: str,
                     labels: Optional[Mapping[str, str]]
                     ) -> Iterator[Dict[str, Any]]:
    family = window.get(name)
    if family is None:
        return
    for value in family.get("values", []):
        child_labels = value.get("labels", {})
        if labels and any(child_labels.get(k) != v
                          for k, v in labels.items()):
            continue
        yield value


def counter_sum(window: Snapshot, name: str,
                labels: Optional[Mapping[str, str]] = None) -> float:
    """Sum of a counter family's windowed increments over the children
    whose labels include every ``labels`` pair (all children when
    ``labels`` is None/empty). Missing families read as 0.0."""
    return float(sum(float(v.get("value", 0.0))
                     for v in _matching_values(window, name, labels)))


def gauge_value(window: Snapshot, name: str,
                labels: Optional[Mapping[str, str]] = None
                ) -> Optional[float]:
    """Level of the first matching gauge child, or None when absent."""
    for value in _matching_values(window, name, labels):
        return float(value.get("value", 0.0))
    return None


class HistogramWindow:
    """One histogram child's windowed payload, attribute-style."""

    __slots__ = ("count", "sum", "p50", "p95", "p99")

    def __init__(self, count: int, total: float, p50: float,
                 p95: float, p99: float) -> None:
        self.count = count
        self.sum = total
        self.p50 = p50
        self.p95 = p95
        self.p99 = p99

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


def histogram_window(window: Snapshot, name: str,
                     labels: Optional[Mapping[str, str]] = None
                     ) -> Optional[HistogramWindow]:
    """Windowed stats of the first matching histogram child, or None.

    The quantiles are the *per-window* estimates computed by
    :func:`repro.telemetry.snapshot_delta` from the bucket deltas —
    they describe only the observations made inside the window.
    """
    for value in _matching_values(window, name, labels):
        if "count" not in value:
            return None  # not a histogram child
        return HistogramWindow(count=int(value["count"]),
                               total=float(value.get("sum", 0.0)),
                               p50=float(value.get("p50", float("nan"))),
                               p95=float(value.get("p95", float("nan"))),
                               p99=float(value.get("p99", float("nan"))))
    return None
