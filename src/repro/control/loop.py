"""The self-tuning loop: detect → propose → verify → apply, bounded.

:class:`ControlLoop` stitches the pipeline together over windowed
metric snapshots and adds the safety rails that keep a self-healing
system from thrashing itself:

* **cadence** — one :meth:`run_once` consumes exactly one metrics
  window (:meth:`~repro.telemetry.MetricsRegistry.window_snapshot`);
  the optional background thread runs it at a bounded interval, or a
  host (pipeline, chaos harness) calls :meth:`tick` once per round;
* **hysteresis** — after an action of some ``cooldown_class`` is
  applied, further actions of that class are suppressed for
  ``cooldown_ticks`` windows, so two cache remedies can never
  ping-pong;
* **action budget** — a hard lifetime cap on applied remediations; a
  exhausted budget turns the loop into a pure detector;
* **recovery** — after ``recovery_windows`` consecutive anomaly-free
  windows in degraded mode, an ``ExitDegradedMode`` is proposed
  through the same verify/apply gauntlet as any other action.

Determinism: given the same sequence of windows the loop makes the
same decisions — there is no randomness and no wall-clock dependence
in the decision path (the thread interval only paces *when* windows
are taken, never *what* is decided).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..telemetry import TELEMETRY as _TEL
from ..telemetry import MetricsRegistry
from .actuator import Actuator, Decision
from .anomalies import Anomaly, Detector, default_detectors, detect_all
from .remediations import ExitDegradedMode, Proposer, Remediation
from .target import ControlTarget

__all__ = ["ControlReport", "ControlLoop"]


@dataclass
class ControlReport:
    """Everything one control window produced.

    Attributes:
        tick: Ordinal of this window since the loop was built.
        anomalies: What the detectors flagged.
        decisions: Outcome of every proposal that reached the actuator.
        suppressed: ``(kind, reason)`` pairs for proposals blocked by
            hysteresis or the action budget before verification.
    """

    tick: int = 0
    anomalies: List[Anomaly] = field(default_factory=list)
    decisions: List[Decision] = field(default_factory=list)
    suppressed: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def applied(self) -> List[Decision]:
        return [d for d in self.decisions if d.applied]

    def to_dict(self) -> Dict[str, Any]:
        return {"tick": self.tick,
                "anomalies": [a.to_dict() for a in self.anomalies],
                "decisions": [d.to_dict() for d in self.decisions],
                "suppressed": [{"kind": k, "reason": r}
                               for k, r in self.suppressed]}


class ControlLoop:
    """Bounded detect → propose → verify → apply loop.

    Args:
        target: The live objects remediations act on.
        registry: Metrics source; defaults to the global telemetry
            registry.
        detectors: Anomaly detectors; defaults to the standard five.
        proposer: Anomaly → remediation playbook.
        actuator: Verify-then-apply executor (built from ``target``
            when omitted). Pass ``Actuator(..., dry_run=True)`` — or
            ``dry_run=True`` here — to observe without acting.
        cooldown_ticks: Windows an applied action's ``cooldown_class``
            stays suppressed for.
        action_budget: Lifetime cap on *applied* remediations.
        recovery_windows: Consecutive clean windows before degraded
            mode is exited.
        interval: Background-thread cadence in seconds.
        dry_run: Shorthand for a dry-run actuator.
    """

    def __init__(self, target: ControlTarget,
                 registry: Optional[MetricsRegistry] = None,
                 detectors: Optional[Sequence[Detector]] = None,
                 proposer: Optional[Proposer] = None,
                 actuator: Optional[Actuator] = None,
                 cooldown_ticks: int = 2,
                 action_budget: int = 8,
                 recovery_windows: int = 3,
                 interval: float = 5.0,
                 dry_run: bool = False) -> None:
        self.target = target
        self._registry = registry
        self.detectors: List[Detector] = list(
            detectors if detectors is not None else default_detectors())
        self.proposer = proposer or Proposer()
        self.actuator = actuator or Actuator(target, dry_run=dry_run)
        self.cooldown_ticks = cooldown_ticks
        self.action_budget = action_budget
        self.recovery_windows = recovery_windows
        self.interval = interval
        self.actions_applied = 0
        self.reports: List[ControlReport] = []
        self._tick = 0
        self._cooldowns: Dict[str, int] = {}
        self._clean_windows = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    @property
    def registry(self) -> MetricsRegistry:
        return (self._registry if self._registry is not None
                else _TEL.metrics)

    # ------------------------------------------------------------------

    def run_once(self) -> ControlReport:
        """Consume one metrics window and run the full pipeline."""
        self._tick += 1
        report = ControlReport(tick=self._tick)
        window = self.registry.window_snapshot()
        report.anomalies = detect_all(self.detectors, window)
        for anomaly in report.anomalies:
            if _TEL.enabled:
                _TEL.emit("control.detected", tick=self._tick,
                          anomaly=anomaly.to_dict())

        proposals = self.proposer.propose_all(report.anomalies,
                                              self.target.state())
        proposals.extend(self._recovery_proposals(report.anomalies))

        for remediation in proposals:
            blocked = self._suppression_reason(remediation)
            if blocked is not None:
                report.suppressed.append((remediation.kind, blocked))
                if _TEL.enabled:
                    _TEL.emit("control.skipped", tick=self._tick,
                              remediation=remediation.to_dict(),
                              reason=blocked)
                continue
            if _TEL.enabled:
                _TEL.emit("control.proposed", tick=self._tick,
                          remediation=remediation.to_dict(),
                          description=remediation.describe())
            decision = self.actuator.execute(remediation)
            report.decisions.append(decision)
            if decision.applied:
                self.actions_applied += 1
                self._cooldowns[remediation.cooldown_class] = \
                    self._tick + self.cooldown_ticks
        self.reports.append(report)
        return report

    #: Per-round hook for hosts that own the cadence (pipeline, chaos).
    tick = run_once

    def _recovery_proposals(self, anomalies: Sequence[Anomaly]
                            ) -> List[Remediation]:
        """Exit degradation after enough consecutive clean windows."""
        if anomalies:
            self._clean_windows = 0
            return []
        self._clean_windows += 1
        if (self.target.degraded
                and self._clean_windows >= self.recovery_windows):
            return [ExitDegradedMode(reason="recovery")]
        return []

    def _suppression_reason(self,
                            remediation: Remediation) -> Optional[str]:
        if self.actions_applied >= self.action_budget:
            return f"action budget exhausted ({self.action_budget})"
        until = self._cooldowns.get(remediation.cooldown_class, 0)
        if self._tick < until:
            return (f"cooldown on class "
                    f"{remediation.cooldown_class!r} until tick {until}")
        return None

    # ------------------------------------------------------------------
    # Background-thread cadence
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Run :meth:`run_once` every ``interval`` seconds until
        :meth:`stop`. Idempotent while already running."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()

        def _worker() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.run_once()
                except Exception as ex:  # repro: noqa[RPR007] — the
                    # loop must survive any single bad window; the
                    # failure is logged, never raised into the thread.
                    if _TEL.enabled:
                        _TEL.emit("control.error", error=str(ex))

        self._thread = threading.Thread(target=_worker,
                                        name="repro-control-loop",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Signal the background thread to exit and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "ControlLoop":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """Aggregate view of every window processed so far."""
        outcomes: Dict[str, int] = {}
        for report in self.reports:
            for decision in report.decisions:
                outcomes[decision.outcome] = \
                    outcomes.get(decision.outcome, 0) + 1
        return {"ticks": self._tick,
                "anomalies": sum(len(r.anomalies) for r in self.reports),
                "actions_applied": self.actions_applied,
                "outcomes": outcomes,
                "degraded": self.target.degraded}
