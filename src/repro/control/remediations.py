"""Typed remediation actions and the anomaly → remediation playbook.

A :class:`Remediation` is pure data describing one reversible change to
the serving stack; the :class:`~repro.control.actuator.Actuator` is the
only component that executes them. Each remediation carries a
``cooldown_class`` — the hysteresis key the control loop rate-limits
on, so e.g. two different cache actions share one cooldown window and
the loop cannot thrash a subsystem by alternating remedies.

The :class:`Proposer` maps each anomaly kind to its playbook entry:

====================  ==========================================
anomaly               remediation
====================  ==========================================
cache-hit-collapse    grow the cache when the window shows
                      evictions (capacity collapse), flush it
                      otherwise (stale/poisoned contents)
solver-divergence     step the kernel down the robustness chain
                      ``vectorized -> running -> scalar``
retry-storm           tighten the retry policy; on exhausted
                      budgets (critical), enter all-cloud
                      degradation instead
warm-start-drift      rebuild the warm-start index
latency-slo-breach    step the kernel *up* the speed chain
                      toward ``vectorized``; already there and
                      the breach *sustained* (>= 2 consecutive
                      windows) on a target with an online
                      admission surface -> halve the admitted
                      solve concurrency; otherwise grow the
                      cache
(recovery)            exit degradation after ``recovery_windows``
                      consecutive clean windows
====================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, List, Optional, Sequence,
                    Set)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .target import TargetState

from ..resilience.retry import RetryPolicy
from .anomalies import (KIND_CACHE_COLLAPSE, KIND_RETRY_STORM,
                        KIND_SLO_BREACH, KIND_SOLVER_DIVERGENCE,
                        KIND_WARM_DRIFT, Anomaly)

__all__ = ["Remediation", "SwitchKernel", "ResizeCache", "FlushCache",
           "RebuildWarmIndex", "TightenRetryPolicy",
           "EnterDegradedMode", "ExitDegradedMode", "AdmissionControl",
           "CompressScenario", "Proposer", "KERNEL_ROBUSTNESS_CHAIN"]

#: Kernel fallback order under solver trouble: the vectorized aggregate
#: kernel is fastest but assumes the consistency system is
#: well-behaved; "running" does exact per-miner best responses with
#: O(n) aggregates; "scalar" is the reference implementation.
KERNEL_ROBUSTNESS_CHAIN = ("vectorized", "running", "scalar")


@dataclass(frozen=True)
class Remediation:
    """Base class: one typed, describable action.

    Attributes:
        reason: The anomaly kind (or ``"recovery"``) that motivated it.
    """

    reason: str = ""

    #: Canonical action kind; overridden per subclass.
    kind = "noop"
    #: Hysteresis key shared by related actions.
    cooldown_class = "noop"

    def describe(self) -> str:
        return self.kind

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind,
                                   "class": self.cooldown_class,
                                   "reason": self.reason}
        for name, value in vars(self).items():
            if name != "reason":
                payload[name] = value
        return payload


@dataclass(frozen=True)
class SwitchKernel(Remediation):
    """Force the serving engine onto ``target`` for every scenario."""

    target: str = "running"
    kind = "switch-kernel"
    cooldown_class = "kernel"

    def describe(self) -> str:
        return f"switch solver kernel to {self.target!r}"


@dataclass(frozen=True)
class ResizeCache(Remediation):
    """Change the scenario cache's LRU bound to ``maxsize``."""

    maxsize: int = 4096
    kind = "resize-cache"
    cooldown_class = "cache"

    def describe(self) -> str:
        return f"resize scenario cache to {self.maxsize} entries"


@dataclass(frozen=True)
class FlushCache(Remediation):
    """Drop every in-memory cache entry (disk layer untouched)."""

    kind = "flush-cache"
    cooldown_class = "cache"

    def describe(self) -> str:
        return "flush the in-memory scenario cache"


@dataclass(frozen=True)
class RebuildWarmIndex(Remediation):
    """Drop the warm-start index so it repopulates from fresh solves."""

    kind = "rebuild-warm-index"
    cooldown_class = "warmstart"

    def describe(self) -> str:
        return "rebuild the warm-start index"


@dataclass(frozen=True)
class TightenRetryPolicy(Remediation):
    """Swap the dispatcher's retry policy for a tighter one."""

    policy: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=2, base_delay=0.05, max_delay=0.5))
    kind = "tighten-retry"
    cooldown_class = "retry"

    def describe(self) -> str:
        return (f"tighten retry policy to max_attempts="
                f"{self.policy.max_attempts}, max_delay="
                f"{self.policy.max_delay:g}s")

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "class": self.cooldown_class,
                "reason": self.reason,
                "max_attempts": self.policy.max_attempts,
                "base_delay": self.policy.base_delay,
                "max_delay": self.policy.max_delay,
                "jitter": self.policy.jitter}


@dataclass(frozen=True)
class EnterDegradedMode(Remediation):
    """Enter all-cloud degradation: route every request to the CSP."""

    kind = "enter-degraded"
    cooldown_class = "degradation"

    def describe(self) -> str:
        return "enter all-cloud degradation mode"


@dataclass(frozen=True)
class AdmissionControl(Remediation):
    """Resize the online service's admitted solve concurrency.

    Proposed on a *sustained* latency-SLO breach when the target
    fronts an :class:`~repro.service.EquilibriumService`: shrinking
    ``max_inflight`` trades throughput for tail latency by shedding
    (fast, explicit 429s) instead of queueing (slow, SLO-breaching
    waits). Rolled back like any other remediation — the snapshot
    captures the previous bound.
    """

    max_inflight: int = 4
    kind = "admission-control"
    cooldown_class = "admission"

    def describe(self) -> str:
        return (f"limit admitted solve concurrency to "
                f"{self.max_inflight}")


@dataclass(frozen=True)
class CompressScenario(Remediation):
    """Serve large scenarios in compressed type space (``n_types=k``).

    The accuracy-for-latency dial: re-route oversized populations
    through :func:`repro.kernels.typespace.solve_connected_typespace`,
    which solves ``k`` weighted budget types instead of ``n`` miners
    and certifies a per-coordinate error bound on the answer.  Not yet
    in the :class:`Proposer` playbook — it trades exactness away, so it
    stays an operator-initiated action until the SLO telemetry carries
    per-scenario population sizes — but the :class:`Verifier` already
    gates it: the differential check re-proves ``measured error <=
    certified bound`` on a scratch heterogeneous population at the
    proposed ``n_types`` before any apply.
    """

    n_types: int = 512
    kind = "compress-scenario"
    cooldown_class = "compression"

    def describe(self) -> str:
        return (f"serve large scenarios in compressed type space "
                f"(n_types={self.n_types})")


@dataclass(frozen=True)
class ExitDegradedMode(Remediation):
    """Leave all-cloud degradation and resume normal routing."""

    kind = "exit-degraded"
    cooldown_class = "degradation"

    def describe(self) -> str:
        return "exit all-cloud degradation mode"


class Proposer:
    """Maps anomalies onto remediations, given the live target state.

    Args:
        max_cache_size: Hard cap the cache-grow playbook never exceeds.
        tight_policy: The retry policy installed on a retry storm.
        sustained_windows: Consecutive SLO-breach windows before the
            admission-control escalation arms (breach streaks shorter
            than this stay on the kernel/cache playbook).
    """

    def __init__(self, max_cache_size: int = 65536,
                 tight_policy: Optional[RetryPolicy] = None,
                 sustained_windows: int = 2) -> None:
        self.max_cache_size = max_cache_size
        self.tight_policy = tight_policy or RetryPolicy(
            max_attempts=2, base_delay=0.05, max_delay=0.5)
        self.sustained_windows = sustained_windows
        #: Consecutive windows (propose_all calls) whose anomaly set
        #: contained a latency-SLO breach; resets on a clean window.
        self.slo_streak = 0

    def propose(self, anomaly: Anomaly,
                state: "TargetState") -> Optional[Remediation]:
        """The playbook entry for one anomaly, or None when the state
        offers no further action (e.g. already on the scalar kernel)."""
        kind = anomaly.kind
        if kind == KIND_CACHE_COLLAPSE:
            if anomaly.evidence.get("evictions", 0.0) > 0.0 \
                    and state.cache_maxsize < self.max_cache_size:
                grown = min(state.cache_maxsize * 2,
                            self.max_cache_size)
                return ResizeCache(maxsize=grown, reason=kind)
            return FlushCache(reason=kind)
        if kind == KIND_SOLVER_DIVERGENCE:
            downgraded = _step_kernel(state.kernel, direction=+1)
            if downgraded is None:
                return None  # already on the reference kernel
            return SwitchKernel(target=downgraded, reason=kind)
        if kind == KIND_RETRY_STORM:
            if anomaly.severity == "critical" and not state.degraded:
                return EnterDegradedMode(reason=kind)
            if not state.retry_tightened:
                return TightenRetryPolicy(policy=self.tight_policy,
                                          reason=kind)
            return None
        if kind == KIND_WARM_DRIFT:
            return RebuildWarmIndex(reason=kind)
        if kind == KIND_SLO_BREACH:
            upgraded = _step_kernel(state.kernel, direction=-1)
            if upgraded is not None:
                return SwitchKernel(target=upgraded, reason=kind)
            # Already on the fastest kernel. A *sustained* breach on a
            # target with an online admission surface means queueing
            # delay, not solve cost — shrink the admitted concurrency
            # so excess load sheds fast instead of waiting slow.
            if (self.slo_streak >= self.sustained_windows
                    and state.admission_inflight > 1):
                halved = max(1, state.admission_inflight // 2)
                return AdmissionControl(max_inflight=halved,
                                        reason=kind)
            if state.cache_maxsize < self.max_cache_size:
                grown = min(state.cache_maxsize * 2,
                            self.max_cache_size)
                return ResizeCache(maxsize=grown, reason=kind)
            return None
        return None

    def propose_all(self, anomalies: Sequence[Anomaly],
                    state: "TargetState") -> List[Remediation]:
        """Playbook over a window's anomalies, deduplicated by action
        kind (two anomalies proposing the same action yield one).

        Also advances the SLO-breach streak: one ``propose_all`` call
        is one detection window, so the streak counts consecutive
        windows in breach — the "sustained" signal the
        admission-control escalation keys on.
        """
        if any(a.kind == KIND_SLO_BREACH for a in anomalies):
            self.slo_streak += 1
        else:
            self.slo_streak = 0
        out: List[Remediation] = []
        seen: Set[str] = set()
        for anomaly in anomalies:
            remediation = self.propose(anomaly, state)
            if remediation is None or remediation.kind in seen:
                continue
            seen.add(remediation.kind)
            out.append(remediation)
        return out


def _step_kernel(current: str, direction: int) -> Optional[str]:
    """Next kernel along the robustness chain (+1 = more robust,
    -1 = faster); None at either end or for unknown kernels."""
    try:
        index = KERNEL_ROBUSTNESS_CHAIN.index(current)
    except ValueError:
        return KERNEL_ROBUSTNESS_CHAIN[0] if direction < 0 else None
    index += direction
    if 0 <= index < len(KERNEL_ROBUSTNESS_CHAIN):
        return KERNEL_ROBUSTNESS_CHAIN[index]
    return None
