"""Anomaly detectors over windowed telemetry snapshots.

Each detector polls one slice of the serving stack's health through the
per-window metric view (:meth:`repro.telemetry.MetricsRegistry.window_snapshot`)
and classifies what it sees into typed :class:`Anomaly` records. The
catalog mirrors the failure modes the resilience layer can inject and
the telemetry layer can observe:

* :class:`CacheHitRateCollapse` — the scenario cache's *recent* hit
  rate fell below a floor (lifetime averages hide collapses, hence the
  windowed view);
* :class:`SolverDivergence` — VI/NEP iteration blow-ups, residual
  blow-ups, or non-converged solves inside the window;
* :class:`RetryStorm` — transient-failure retries or injected faults
  spiking relative to dispatch volume;
* :class:`WarmStartDrift` — warm-started solves running *slower* than
  cold solves, i.e. the nearest-neighbor index is suggesting poisoned
  starting points;
* :class:`LatencySloBreach` — serving p95/p99 exceeding the configured
  SLO within the window.

Detectors are pure functions of the window dictionary: no clocks, no
global state, fully deterministic for a given window — which is what
makes the control loop's decisions replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from .window import Snapshot, counter_sum, histogram_window

__all__ = ["Anomaly", "Detector", "CacheHitRateCollapse",
           "SolverDivergence", "RetryStorm", "WarmStartDrift",
           "LatencySloBreach", "default_detectors", "detect_all"]

#: Canonical anomaly kinds (the proposer keys its playbook on these).
KIND_CACHE_COLLAPSE = "cache-hit-collapse"
KIND_SOLVER_DIVERGENCE = "solver-divergence"
KIND_RETRY_STORM = "retry-storm"
KIND_WARM_DRIFT = "warm-start-drift"
KIND_SLO_BREACH = "latency-slo-breach"


@dataclass(frozen=True)
class Anomaly:
    """One classified deviation observed in a metric window.

    Attributes:
        kind: Canonical anomaly kind (see the module constants).
        detector: Name of the detector that raised it.
        severity: ``"warn"`` or ``"critical"`` — critical anomalies are
            allowed to propose degradation-mode remediations.
        message: Human-readable one-liner.
        evidence: The windowed numbers the classification rests on
            (JSON-serializable; lands verbatim in the event log).
    """

    kind: str
    detector: str
    severity: str = "warn"
    message: str = ""
    evidence: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detector": self.detector,
                "severity": self.severity, "message": self.message,
                "evidence": dict(self.evidence)}


class Detector:
    """Base detector: a name plus a pure ``detect(window)`` method."""

    name = "detector"

    def detect(self, window: Snapshot) -> List[Anomaly]:
        raise NotImplementedError


class CacheHitRateCollapse(Detector):
    """Recent cache hit rate below ``min_hit_rate``.

    The rate is derived from the per-window deltas of the
    ``cache_lookups_total{layer=...}`` counters, so a cache whose
    lifetime average still looks healthy cannot mask a collapse.
    Windows with fewer than ``min_lookups`` lookups are ignored — an
    idle cache is not a collapsed cache.
    """

    name = "cache-hit-rate"

    def __init__(self, min_hit_rate: float = 0.2,
                 min_lookups: int = 8) -> None:
        self.min_hit_rate = min_hit_rate
        self.min_lookups = min_lookups

    def detect(self, window: Snapshot) -> List[Anomaly]:
        memory = counter_sum(window, "cache_lookups_total",
                             {"layer": "memory"})
        disk = counter_sum(window, "cache_lookups_total",
                           {"layer": "disk"})
        miss = counter_sum(window, "cache_lookups_total",
                           {"layer": "miss"})
        lookups = memory + disk + miss
        if lookups < self.min_lookups:
            return []
        hit_rate = (memory + disk) / lookups
        if hit_rate >= self.min_hit_rate:
            return []
        evictions = counter_sum(window, "cache_evictions_total")
        return [Anomaly(
            kind=KIND_CACHE_COLLAPSE, detector=self.name,
            severity="warn",
            message=f"windowed cache hit rate {hit_rate:.2f} below "
                    f"floor {self.min_hit_rate:.2f} "
                    f"({int(lookups)} lookups)",
            evidence={"hit_rate": hit_rate, "lookups": lookups,
                      "misses": miss, "evictions": evictions})]


class SolverDivergence(Detector):
    """Solver iteration/residual blow-ups inside the window.

    Fires when solves failed to converge, when the mean outer-iteration
    count per solve exceeds ``max_mean_iterations``, or when the
    windowed p95 of the per-iteration VI residuals exceeds
    ``max_residual_p95`` (residuals of a healthy solve shrink toward
    the tolerance; a fat residual tail means thrashing).
    """

    name = "solver-health"

    def __init__(self, max_mean_iterations: float = 200.0,
                 max_residual_p95: float = 1.0) -> None:
        self.max_mean_iterations = max_mean_iterations
        self.max_residual_p95 = max_residual_p95

    def detect(self, window: Snapshot) -> List[Anomaly]:
        anomalies: List[Anomaly] = []
        nonconverged = counter_sum(window, "vi_nonconverged_total")
        solves = counter_sum(window, "vi_solves_total")
        iterations = counter_sum(window, "vi_iterations_total")
        if nonconverged > 0:
            anomalies.append(Anomaly(
                kind=KIND_SOLVER_DIVERGENCE, detector=self.name,
                severity="critical",
                message=f"{int(nonconverged)} solve(s) hit the "
                        f"iteration budget without converging",
                evidence={"nonconverged": nonconverged,
                          "solves": solves}))
            return anomalies
        if solves > 0:
            mean_iterations = iterations / solves
            if mean_iterations > self.max_mean_iterations:
                anomalies.append(Anomaly(
                    kind=KIND_SOLVER_DIVERGENCE, detector=self.name,
                    severity="warn",
                    message=f"mean iterations per solve "
                            f"{mean_iterations:.0f} above "
                            f"{self.max_mean_iterations:.0f}",
                    evidence={"mean_iterations": mean_iterations,
                              "solves": solves}))
                return anomalies
        residuals = histogram_window(window, "vi_residual")
        if residuals is not None and residuals.count > 0 \
                and residuals.p95 > self.max_residual_p95:
            anomalies.append(Anomaly(
                kind=KIND_SOLVER_DIVERGENCE, detector=self.name,
                severity="warn",
                message=f"windowed residual p95 {residuals.p95:.3g} "
                        f"above {self.max_residual_p95:.3g}",
                evidence={"residual_p95": residuals.p95,
                          "observations": float(residuals.count)}))
        return anomalies


class RetryStorm(Detector):
    """Retries or injected faults spiking relative to dispatch volume.

    ``max_retry_ratio`` bounds retries-per-dispatch; any exhausted
    retry loop (a request that burned its whole attempt budget) is
    critical on its own, as is a fault-injection rate above
    ``max_fault_rate`` per dispatch.
    """

    name = "retry-storm"

    def __init__(self, max_retry_ratio: float = 0.5,
                 max_fault_rate: float = 1.0,
                 min_dispatches: int = 4) -> None:
        self.max_retry_ratio = max_retry_ratio
        self.max_fault_rate = max_fault_rate
        self.min_dispatches = min_dispatches

    def detect(self, window: Snapshot) -> List[Anomaly]:
        dispatches = counter_sum(window, "dispatch_total")
        retries = counter_sum(window, "retry_retries_total")
        exhausted = counter_sum(window, "retry_exhausted_total")
        faults = counter_sum(window, "faults_injected_total")
        anomalies: List[Anomaly] = []
        if exhausted > 0:
            anomalies.append(Anomaly(
                kind=KIND_RETRY_STORM, detector=self.name,
                severity="critical",
                message=f"{int(exhausted)} retry loop(s) exhausted "
                        f"their attempt budget",
                evidence={"exhausted": exhausted, "retries": retries,
                          "dispatches": dispatches}))
            return anomalies
        if dispatches >= self.min_dispatches:
            ratio = retries / dispatches
            if ratio > self.max_retry_ratio:
                anomalies.append(Anomaly(
                    kind=KIND_RETRY_STORM, detector=self.name,
                    severity="warn",
                    message=f"retry ratio {ratio:.2f} per dispatch "
                            f"above {self.max_retry_ratio:.2f}",
                    evidence={"retry_ratio": ratio, "retries": retries,
                              "dispatches": dispatches}))
                return anomalies
            fault_rate = faults / dispatches
            if fault_rate > self.max_fault_rate:
                anomalies.append(Anomaly(
                    kind=KIND_RETRY_STORM, detector=self.name,
                    severity="warn",
                    message=f"fault rate {fault_rate:.2f} per "
                            f"dispatch above {self.max_fault_rate:.2f}",
                    evidence={"fault_rate": fault_rate,
                              "faults": faults,
                              "dispatches": dispatches}))
        return anomalies


class WarmStartDrift(Detector):
    """Warm-started solves slower than cold solves: index drift.

    Compares the windowed p50 of ``serving_solve_seconds`` split by the
    ``warm`` label. A healthy nearest-neighbor index makes warm solves
    *faster*; when the suggested neighbors are stale (parameter drift,
    regime changes), iterating from them costs more than a cold start —
    the index should be rebuilt.
    """

    name = "warm-start-index"

    def __init__(self, drift_factor: float = 1.5,
                 min_solves: int = 3) -> None:
        self.drift_factor = drift_factor
        self.min_solves = min_solves

    def detect(self, window: Snapshot) -> List[Anomaly]:
        warm = histogram_window(window, "serving_solve_seconds",
                                {"warm": "true"})
        cold = histogram_window(window, "serving_solve_seconds",
                                {"warm": "false"})
        if warm is None or cold is None:
            return []
        if warm.count < self.min_solves or cold.count < self.min_solves:
            return []
        if not (warm.p50 > self.drift_factor * cold.p50):
            return []
        return [Anomaly(
            kind=KIND_WARM_DRIFT, detector=self.name, severity="warn",
            message=f"warm-start p50 {warm.p50 * 1e3:.2f}ms exceeds "
                    f"{self.drift_factor:.1f}x cold p50 "
                    f"{cold.p50 * 1e3:.2f}ms",
            evidence={"warm_p50": warm.p50, "cold_p50": cold.p50,
                      "warm_solves": float(warm.count),
                      "cold_solves": float(cold.count)})]


class LatencySloBreach(Detector):
    """Serving latency above the SLO inside the window.

    Watches the windowed quantiles of ``serving_scenario_seconds``
    (per-scenario wall clock: lookups for hits, solves for misses)
    against the p95/p99 objectives.
    """

    name = "latency-slo"

    def __init__(self, slo_p95: float = 0.5, slo_p99: float = 2.0,
                 min_requests: int = 8) -> None:
        self.slo_p95 = slo_p95
        self.slo_p99 = slo_p99
        self.min_requests = min_requests

    def detect(self, window: Snapshot) -> List[Anomaly]:
        latency = histogram_window(window, "serving_scenario_seconds")
        if latency is None or latency.count < self.min_requests:
            return []
        breaches: Dict[str, float] = {}
        if latency.p95 > self.slo_p95:
            breaches["p95"] = latency.p95
        if latency.p99 > self.slo_p99:
            breaches["p99"] = latency.p99
        if not breaches:
            return []
        worst = ", ".join(f"{q}={v * 1e3:.1f}ms"
                          for q, v in breaches.items())
        return [Anomaly(
            kind=KIND_SLO_BREACH, detector=self.name,
            severity="critical" if "p99" in breaches else "warn",
            message=f"serving latency SLO breached ({worst}; "
                    f"objectives p95<{self.slo_p95 * 1e3:.0f}ms, "
                    f"p99<{self.slo_p99 * 1e3:.0f}ms)",
            evidence={"p95": latency.p95, "p99": latency.p99,
                      "requests": float(latency.count),
                      **{f"breach_{q}": v for q, v in breaches.items()}})]


def default_detectors() -> List[Detector]:
    """The full detector catalog with default thresholds."""
    return [CacheHitRateCollapse(), SolverDivergence(), RetryStorm(),
            WarmStartDrift(), LatencySloBreach()]


def detect_all(detectors: Sequence[Detector],
               window: Snapshot) -> List[Anomaly]:
    """Run every detector over one window; anomalies in catalog order."""
    found: List[Anomaly] = []
    for detector in detectors:
        found.extend(detector.detect(window))
    return found
