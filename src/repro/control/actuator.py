"""Transactional application of verified remediations.

The :class:`Actuator` is the only component that mutates the live
target, and it refuses to do so blind:

1. **pre-verify** — the remediation is dry-run against the
   differential checks (:mod:`repro.control.verify`) on scratch
   objects; a failed check rejects the action before anything changes;
2. **snapshot** — the target's revertible state is captured;
3. **apply** — the remediation executes against the live objects;
4. **post-check** — the live engine must still reproduce the direct
   solver's answer on the canonical scenario; a failed post-check
   triggers **rollback** to the snapshot.

Every transition is appended to the telemetry event log
(``control.verified`` / ``control.rejected`` / ``control.applied`` /
``control.rolled_back`` / ``control.skipped``) so the full decision
chain is auditable from the JSONL stream alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core import solve_connected_equilibrium
from ..serving.keys import ScenarioSpec
from ..telemetry import TELEMETRY as _TEL
from .remediations import Remediation
from .target import ControlTarget
from .verify import (CheckResult, VerificationReport, Verifier,
                     _check_setup, _rel_error, quiet_telemetry)

__all__ = ["Decision", "Actuator"]

#: Decision outcomes, in the order the pipeline can reach them.
OUTCOMES = ("rejected", "skipped", "applied", "rolled-back", "dry-run")


@dataclass(frozen=True)
class Decision:
    """What happened to one proposed remediation.

    Attributes:
        remediation: The proposed action.
        outcome: ``"rejected"`` (pre-verify failed, nothing changed),
            ``"skipped"`` (no-op for this target), ``"applied"``,
            ``"rolled-back"`` (post-check failed, snapshot restored),
            or ``"dry-run"`` (verified but deliberately not applied).
        report: The pre-verification report.
        post_check: The live post-apply check (None when not reached).
    """

    remediation: Remediation
    outcome: str
    report: VerificationReport
    post_check: Optional[CheckResult] = None

    @property
    def applied(self) -> bool:
        return self.outcome == "applied"

    def to_dict(self) -> Dict[str, Any]:
        return {"remediation": self.remediation.to_dict(),
                "outcome": self.outcome,
                "verified": self.report.ok,
                "checks": [c.to_dict() for c in self.report.checks],
                "post_check": (None if self.post_check is None
                               else self.post_check.to_dict())}


def live_self_check(target: ControlTarget,
                    tol: float = 1e-6) -> CheckResult:
    """Post-apply check on the *live* engine: the canonical miner-stage
    scenario served through it must match the direct solve.

    The miner stage (fixed canonical prices) is used instead of the
    full Stackelberg solve because the leader stage admits multiple
    near-optimal price points under warm starts — comparing there would
    roll back perfectly valid remediations.
    """
    name = "live-self-check"
    if target.engine is None:
        return CheckResult(name, True, 0.0, detail="no engine attached")
    try:
        # Quiet: the check's own solve must not feed the detectors.
        with quiet_telemetry():
            params, prices = _check_setup()
            kernel = (target.engine.kernel_override
                      or target.default_kernel)
            direct = solve_connected_equilibrium(params, prices,
                                                 kernel=kernel)
            result = target.engine.serve(
                ScenarioSpec(params=params, prices=prices,
                             kernel=kernel))
        if not result.ok:
            return CheckResult(name, False,
                               detail=f"serving failed: {result.error}")
        err = max(_rel_error(result.value.e, direct.e),
                  _rel_error(result.value.c, direct.c))
        return CheckResult(name, err <= tol, err,
                           detail=f"source={result.source}")
    except Exception as ex:  # repro: noqa[RPR007] — a failed check is
        # a rollback signal, never a crash of the control loop.
        return CheckResult(name, False,
                           detail=f"{type(ex).__name__}: {ex}")


class Actuator:
    """Verify-then-apply executor with rollback.

    Args:
        target: The live objects remediations act on.
        verifier: The differential-check dry-runner.
        self_check: Post-apply live check; injectable for tests (return
            a failing :class:`CheckResult` to force a rollback). None
            disables the post-check (pre-verification still gates).
        dry_run: Verify every proposal but never mutate the target.
    """

    def __init__(self, target: ControlTarget,
                 verifier: Optional[Verifier] = None,
                 self_check: Optional[
                     Callable[[ControlTarget], CheckResult]
                 ] = live_self_check,
                 dry_run: bool = False) -> None:
        self.target = target
        self.verifier = verifier or Verifier(
            default_kernel=target.default_kernel)
        self.self_check = self_check
        self.dry_run = dry_run

    def execute(self, remediation: Remediation) -> Decision:
        """Run the verify → snapshot → apply → post-check pipeline."""
        state = self.target.state()
        report = self.verifier.verify(remediation,
                                      current_kernel=state.kernel)
        if not report.ok:
            _TEL.emit("control.rejected",
                      remediation=remediation.to_dict(),
                      checks=[c.to_dict() for c in report.checks])
            return Decision(remediation, "rejected", report)
        _TEL.emit("control.verified",
                  remediation=remediation.to_dict(),
                  checks=[c.to_dict() for c in report.checks])
        if self.dry_run:
            return Decision(remediation, "dry-run", report)

        snapshot = self.target.snapshot()
        changed = self.target.apply(remediation)
        if not changed:
            _TEL.emit("control.skipped",
                      remediation=remediation.to_dict(),
                      reason="no-op for this target")
            return Decision(remediation, "skipped", report)

        post: Optional[CheckResult] = None
        if self.self_check is not None:
            post = self.self_check(self.target)
            if not post.ok:
                self.target.restore(snapshot)
                _TEL.emit("control.rolled_back",
                          remediation=remediation.to_dict(),
                          post_check=post.to_dict())
                return Decision(remediation, "rolled-back", report,
                                post_check=post)
        _TEL.emit("control.applied",
                  remediation=remediation.to_dict(),
                  description=remediation.describe())
        return Decision(remediation, "applied", report, post_check=post)
