"""Tabular Q-learning for the repeated mining game.

The bandit learners in :mod:`repro.learning.bandits` are stateless; this
agent conditions on a coarse observation of the previous round — the
discretized opponent edge share — which lets it represent reactive
strategies. In self-play on this game the learned policy collapses to a
single state's greedy action, matching the bandit result; the agent exists
to demonstrate (and test) that the equilibrium is robust to the richer
learner class the paper alludes to ([18]-[21]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["QLearningAgent"]


class QLearningAgent:
    """Tabular Q-learning over (state, action) with ε-greedy behaviour.

    Args:
        num_states: Number of discrete observations.
        num_actions: Number of actions (grid indices).
        learning_rate: TD step size ``α``.
        discount: Discount factor ``γ`` for the repeated game.
        epsilon: Initial exploration rate.
        epsilon_decay: Multiplicative per-step decay of ``epsilon``.
        seed: RNG seed.
    """

    def __init__(self, num_states: int, num_actions: int,
                 learning_rate: float = 0.1, discount: float = 0.9,
                 epsilon: float = 0.2, epsilon_decay: float = 0.995,
                 epsilon_min: float = 0.01, seed: int = 0) -> None:
        if num_states < 1 or num_actions < 1:
            raise ConfigurationError("state/action counts must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        if not 0.0 <= discount < 1.0:
            raise ConfigurationError("discount must be in [0, 1)")
        self.num_states = num_states
        self.num_actions = num_actions
        self.learning_rate = learning_rate
        self.discount = discount
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min
        self.q = np.zeros((num_states, num_actions))
        self._rng = np.random.default_rng(seed)

    def select(self, state: int) -> int:
        """ε-greedy action for ``state``."""
        self._check_state(state)
        if self._rng.random() < self.epsilon:
            action = int(self._rng.integers(self.num_actions))
        else:
            action = int(np.argmax(self.q[state]))
        self.epsilon = max(self.epsilon * self.epsilon_decay,
                           self.epsilon_min)
        return action

    def update(self, state: int, action: int, payoff: float,
               next_state: Optional[int] = None) -> None:
        """One TD(0) backup; terminal transitions pass ``next_state=None``."""
        self._check_state(state)
        if not 0 <= action < self.num_actions:
            raise ConfigurationError(f"action {action} out of range")
        bootstrap = 0.0
        if next_state is not None:
            self._check_state(next_state)
            bootstrap = self.discount * float(np.max(self.q[next_state]))
        td_target = payoff + bootstrap
        self.q[state, action] += self.learning_rate * (
            td_target - self.q[state, action])

    def greedy_policy(self) -> np.ndarray:
        """Greedy action per state."""
        return np.argmax(self.q, axis=1)

    def _check_state(self, state: int) -> None:
        if not 0 <= state < self.num_states:
            raise ConfigurationError(f"state {state} out of range")


def discretize_edge_share(edge_total: float, total: float,
                          num_states: int) -> int:
    """Map the opponents' edge share ``E/S`` to a discrete state index."""
    if num_states < 1:
        raise ConfigurationError("num_states must be >= 1")
    if total <= 0:
        return 0
    share = min(max(edge_total / total, 0.0), 1.0)
    return min(int(share * num_states), num_states - 1)


__all__.append("discretize_edge_share")
