"""The Section VI-C reinforcement-learning loop.

Structure follows the paper exactly:

* a **pricing epoch** is ``T = 50`` blocks during which SP prices are
  fixed and the active miner set is redrawn every block from the
  population model (``N(μ, σ²)`` — or a fixed count for the permissioned
  comparison);
* miners learn their request vectors within the epoch (they converge
  within 50 blocks, which the paper states and our tests check);
* after each epoch the SPs adapt their prices from the realized profits;
* the process repeats until the SP prices reach a fixed point.

Miners are fresh learners each epoch (their action grids depend on the
epoch's prices), which mirrors the paper's "miners' strategies converge
after at most 50 blocks ... once the miners' behavior converges, both the
ESP and the CSP update their pricing strategies adaptively".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..population import PopulationModel, PopulationProcess
from .discretization import StrategyGrid
from .miners import LearningMiner, RoundObservation
from .providers import PriceLearner

__all__ = ["EpochResult", "TrainingResult", "RLTrainer"]


@dataclass
class EpochResult:
    """Aggregates of one pricing epoch.

    Attributes:
        p_e: ESP price in force.
        p_c: CSP price in force.
        mean_edge: Converged per-miner edge request (pool average of the
            greedy strategies).
        mean_cloud: Converged per-miner cloud request.
        esp_units: Per-block units the ESP actually served (tail average).
        csp_units: Per-block units the CSP actually served (tail average).
        blocks: Number of blocks simulated.
        overload_rate: Fraction of blocks whose realized edge demand
            exceeded ``E_max`` (standalone mode; 0 otherwise).
    """

    p_e: float
    p_c: float
    mean_edge: float
    mean_cloud: float
    esp_units: float
    csp_units: float
    blocks: int
    overload_rate: float

    def esp_profit(self, unit_cost: float) -> float:
        """Per-block ESP profit ``(P_e - C_e) * units``."""
        return (self.p_e - unit_cost) * self.esp_units

    def csp_profit(self, unit_cost: float) -> float:
        """Per-block CSP profit ``(P_c - C_c) * units``."""
        return (self.p_c - unit_cost) * self.csp_units


@dataclass
class TrainingResult:
    """Outcome of a full training run.

    Attributes:
        epochs: Per-epoch aggregates in order.
        converged: Whether the SP greedy prices stabilized.
        final_p_e: Last greedy ESP price.
        final_p_c: Last greedy CSP price.
    """

    epochs: List[EpochResult] = field(default_factory=list)
    converged: bool = False
    final_p_e: float = 0.0
    final_p_c: float = 0.0

    @property
    def final_epoch(self) -> EpochResult:
        if not self.epochs:
            raise ConfigurationError("no epochs were run")
        return self.epochs[-1]


class RLTrainer:
    """Multi-agent trainer for the mobile blockchain mining market.

    Args:
        population: Miner-count model (Gaussian for permissionless,
            :class:`~repro.population.FixedPopulation` for permissioned).
        budget: Common miner budget ``B``.
        reward: Block reward ``R``.
        fork_rate: Fork rate ``β``.
        e_max: ESP capacity — set for standalone mode, ``None`` for
            connected.
        h: Connected-mode satisfaction probability (ignored when ``e_max``
            is set).
        blocks_per_epoch: The paper's ``T`` (default 50).
        feedback: Miner feedback mode (``"expected"``/``"realized"``).
        grid_spend_levels / grid_split_levels: Strategy grid resolution.
        seed: Master RNG seed (drives population draws, learner
            exploration, and winner sampling).
    """

    def __init__(self, population: PopulationModel, budget: float,
                 reward: float, fork_rate: float,
                 e_max: Optional[float] = None, h: float = 1.0,
                 blocks_per_epoch: int = 50, feedback: str = "expected",
                 grid_spend_levels: int = 8, grid_split_levels: int = 13,
                 seed: int = 0) -> None:
        if budget <= 0 or reward <= 0:
            raise ConfigurationError("budget and reward must be positive")
        if not 0.0 <= fork_rate < 1.0:
            raise ConfigurationError("fork rate must be in [0, 1)")
        if blocks_per_epoch < 1:
            raise ConfigurationError("blocks_per_epoch must be >= 1")
        if e_max is not None and e_max <= 0:
            raise ConfigurationError("e_max must be positive when set")
        if not 0.0 < h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        self.population = population
        self.budget = budget
        self.reward = reward
        self.fork_rate = fork_rate
        self.e_max = e_max
        self.h = h
        self.blocks_per_epoch = blocks_per_epoch
        self.feedback = feedback
        self.grid_spend_levels = grid_spend_levels
        self.grid_split_levels = grid_split_levels
        self.pool_size = int(np.max(population.support()))
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # One epoch at fixed prices.
    # ------------------------------------------------------------------ #

    def run_epoch(self, p_e: float, p_c: float,
                  epoch_index: int = 0) -> EpochResult:
        """Simulate one T-block epoch at fixed prices."""
        if p_e <= 0 or p_c <= 0:
            raise ConfigurationError("prices must be positive")
        grid = StrategyGrid.build(self.budget, p_e, p_c,
                                  spend_levels=self.grid_spend_levels,
                                  split_levels=self.grid_split_levels)
        base = self._seed + 7919 * (epoch_index + 1)
        miners = [LearningMiner(i, grid, feedback=self.feedback,
                                seed=base + i)
                  for i in range(self.pool_size)]
        process = PopulationProcess(self.population, self.pool_size,
                                    seed=base + 104729)
        tail_start = max(self.blocks_per_epoch // 2,
                         self.blocks_per_epoch - 10)
        esp_units_sum = 0.0
        csp_units_sum = 0.0
        tail_blocks = 0
        overloads = 0
        for t in range(self.blocks_per_epoch):
            block = process.next_block()
            active = list(block.active)
            if len(active) == 0:
                continue
            e_vec = np.zeros(len(active))
            c_vec = np.zeros(len(active))
            for pos, idx in enumerate(active):
                _, e, c = miners[idx].act()
                e_vec[pos] = e
                c_vec[pos] = c
            E = float(e_vec.sum())
            S = E + float(c_vec.sum())
            overloaded = self.e_max is not None and E > self.e_max
            overloads += int(overloaded)
            winner_pos = self._sample_winner(e_vec, c_vec, overloaded)
            for pos, idx in enumerate(active):
                e_others = E - e_vec[pos]
                s_others = S - e_vec[pos] - c_vec[pos]
                sat = self._sat_weights(miners[idx].grid, e_others)
                realized = -(p_e * e_vec[pos] + p_c * c_vec[pos])
                if pos == winner_pos:
                    realized += self.reward
                obs = RoundObservation(
                    e_others=e_others, s_others=s_others,
                    reward=self.reward, fork_rate=self.fork_rate,
                    sat_weight=sat, realized_payoff=realized,
                    won=(pos == winner_pos))
                miners[idx].observe(obs)
            if t >= tail_start:
                tail_blocks += 1
                # The ESP sells the served edge units: connected mode serves
                # the expected fraction h (the rest transfers to the CSP),
                # standalone serves all-or-none against E_max.
                if self.e_max is None:
                    esp_units = self.h * E
                else:
                    esp_units = E if not overloaded else 0.0
                esp_units_sum += esp_units
                csp_units_sum += S - esp_units
        strategies = np.array([m.greedy_strategy() for m in miners])
        denom = max(tail_blocks, 1)
        return EpochResult(
            p_e=p_e, p_c=p_c,
            mean_edge=float(strategies[:, 0].mean()),
            mean_cloud=float(strategies[:, 1].mean()),
            esp_units=esp_units_sum / denom,
            csp_units=csp_units_sum / denom,
            blocks=self.blocks_per_epoch,
            overload_rate=overloads / self.blocks_per_epoch)

    def _sat_weights(self, grid: StrategyGrid,
                     e_others: float) -> np.ndarray:
        """Counterfactual satisfaction weight per grid action."""
        if self.e_max is None:
            return np.full(grid.size, self.h)
        return (e_others + grid.actions[:, 0]
                <= self.e_max).astype(float)

    def _sample_winner(self, e_vec: np.ndarray, c_vec: np.ndarray,
                       overloaded: bool) -> int:
        """Draw the block winner from the model winning probabilities."""
        S = float((e_vec + c_vec).sum())
        if S <= 0:
            return int(self._rng.integers(len(e_vec)))
        E = float(e_vec.sum())
        beta = self.fork_rate
        if self.e_max is not None and overloaded:
            # Standalone overload: edge requests rejected, cloud-only race.
            weights = c_vec.copy()
            if weights.sum() <= 0:
                weights = np.ones_like(c_vec)
        else:
            base = (1.0 - beta) * (e_vec + c_vec) / S
            bonus = beta * (self.h if self.e_max is None else 1.0)
            edge = bonus * e_vec / E if E > 0 else 0.0
            weights = base + edge
        weights = np.maximum(weights, 0.0)
        weights /= weights.sum()
        return int(self._rng.choice(len(e_vec), p=weights))

    # ------------------------------------------------------------------ #
    # Full training with adaptive SP pricing.
    # ------------------------------------------------------------------ #

    def train(self, esp_learner: PriceLearner, csp_learner: PriceLearner,
              max_epochs: int = 60, patience: int = 5) -> TrainingResult:
        """Alternate epochs and SP price updates until a fixed point.

        Convergence: the greedy prices of both SPs unchanged for
        ``patience`` consecutive epochs.
        """
        if max_epochs < 1:
            raise ConfigurationError("max_epochs must be >= 1")
        result = TrainingResult()
        stable = 0
        last_pair: Optional[Tuple[float, float]] = None
        for epoch in range(max_epochs):
            p_e = esp_learner.start_epoch()
            p_c = csp_learner.start_epoch()
            outcome = self.run_epoch(p_e, p_c, epoch_index=epoch)
            esp_learner.end_epoch(outcome.esp_profit(esp_learner.unit_cost))
            csp_learner.end_epoch(outcome.csp_profit(csp_learner.unit_cost))
            result.epochs.append(outcome)
            pair = (esp_learner.greedy_price(), csp_learner.greedy_price())
            if last_pair is not None and pair == last_pair:
                stable += 1
                if stable >= patience:
                    result.converged = True
                    break
            else:
                stable = 0
            last_pair = pair
        result.final_p_e, result.final_p_c = last_pair or (0.0, 0.0)
        return result
