"""Bandit learners over finite action sets.

The repeated mining game is, from each miner's perspective, a
non-stationary multi-armed bandit (opponents learn too), so all learners
use constant step sizes and exploration that can be annealed. Three
standard strategies are provided; the trainer defaults to ε-greedy, which
is what converges most robustly in self-play for this game.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["BanditLearner", "EpsilonGreedyLearner", "SoftmaxLearner",
           "UCBLearner"]


class BanditLearner(abc.ABC):
    """Incremental value-estimating learner over ``num_actions`` arms."""

    def __init__(self, num_actions: int, step_size: float = 0.1,
                 initial_value: float = 0.0, seed: int = 0) -> None:
        if num_actions < 1:
            raise ConfigurationError("need at least one action")
        if not 0.0 < step_size <= 1.0:
            raise ConfigurationError("step_size must be in (0, 1]")
        self.num_actions = num_actions
        self.step_size = step_size
        self.values = np.full(num_actions, float(initial_value))
        self.counts = np.zeros(num_actions, dtype=int)
        self.total_updates = 0
        self._rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def select(self) -> int:
        """Choose an arm."""

    def update(self, action: int, payoff: float) -> None:
        """Incorporate one observed payoff for ``action``."""
        if not 0 <= action < self.num_actions:
            raise ConfigurationError(f"action {action} out of range")
        self.counts[action] += 1
        self.total_updates += 1
        self.values[action] += self.step_size * (payoff
                                                 - self.values[action])

    def update_all(self, payoffs: np.ndarray) -> None:
        """Full-information update: payoffs observed for every arm.

        Used by the belief-based feedback mode, where a miner evaluates
        every grid action against the opponents' observed aggregates.
        """
        payoffs = np.asarray(payoffs, dtype=float)
        if payoffs.shape != (self.num_actions,):
            raise ConfigurationError("payoffs must cover every action")
        self.total_updates += 1
        self.values += self.step_size * (payoffs - self.values)

    def greedy(self) -> int:
        """Current greedy arm (ties broken by lowest index)."""
        return int(np.argmax(self.values))


class EpsilonGreedyLearner(BanditLearner):
    """ε-greedy selection with multiplicative ε decay."""

    def __init__(self, num_actions: int, epsilon: float = 0.2,
                 epsilon_decay: float = 0.995, epsilon_min: float = 0.01,
                 **kwargs: Any) -> None:
        super().__init__(num_actions, **kwargs)
        if not 0.0 <= epsilon <= 1.0:
            raise ConfigurationError("epsilon must be in [0, 1]")
        if not 0.0 < epsilon_decay <= 1.0:
            raise ConfigurationError("epsilon_decay must be in (0, 1]")
        self.epsilon = epsilon
        self.epsilon_decay = epsilon_decay
        self.epsilon_min = epsilon_min

    def select(self) -> int:
        if self._rng.random() < self.epsilon:
            choice = int(self._rng.integers(self.num_actions))
        else:
            choice = self.greedy()
        self.epsilon = max(self.epsilon * self.epsilon_decay,
                           self.epsilon_min)
        return choice


class SoftmaxLearner(BanditLearner):
    """Boltzmann selection with temperature annealing."""

    def __init__(self, num_actions: int, temperature: float = 1.0,
                 temperature_decay: float = 0.99,
                 temperature_min: float = 0.01, **kwargs: Any) -> None:
        super().__init__(num_actions, **kwargs)
        if temperature <= 0:
            raise ConfigurationError("temperature must be positive")
        self.temperature = temperature
        self.temperature_decay = temperature_decay
        self.temperature_min = temperature_min

    def select(self) -> int:
        logits = self.values / self.temperature
        logits = logits - logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        choice = int(self._rng.choice(self.num_actions, p=probs))
        self.temperature = max(self.temperature * self.temperature_decay,
                               self.temperature_min)
        return choice


class UCBLearner(BanditLearner):
    """UCB1 selection (exploration bonus on visit counts)."""

    def __init__(self, num_actions: int, exploration: float = 1.0,
                 **kwargs: Any) -> None:
        super().__init__(num_actions, **kwargs)
        if exploration < 0:
            raise ConfigurationError("exploration must be non-negative")
        self.exploration = exploration

    def select(self) -> int:
        untried = np.flatnonzero(self.counts == 0)
        if untried.size > 0:
            return int(untried[0])
        t = max(self.total_updates, 1)
        bonus = self.exploration * np.sqrt(np.log(t) / self.counts)
        return int(np.argmax(self.values + bonus))
