"""Learning miners: grid strategies + bandit/Q learners + feedback rules.

Two feedback modes mirror the information structures discussed in the
paper's Section VII-3:

* ``"expected"`` (belief-based, default) — after each block a miner
  observes the aggregate demand the SPs publish (total purchased units are
  public through the network difficulty) and evaluates *every* grid action
  counterfactually against those aggregates, performing a
  full-information value update. This is the fictitious-play-flavoured
  learner that converges within the paper's T=50-block epochs.
* ``"realized"`` — only the chosen action is updated, with the realized
  payoff ``R·1{won} - spending``. Unbiased but high-variance; used by the
  ablation benchmarks to show the variance/speed trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .bandits import BanditLearner, EpsilonGreedyLearner
from .discretization import StrategyGrid

__all__ = ["RoundObservation", "LearningMiner", "QLearningMiner"]


@dataclass(frozen=True)
class RoundObservation:
    """What one miner observes after a block.

    Attributes:
        e_others: Opponents' total edge units ``ē`` this block.
        s_others: Opponents' total units ``s̄`` this block.
        reward: Block reward ``R``.
        fork_rate: Fork rate ``β``.
        sat_weight: Satisfaction weight of the edge bonus this block given
            own edge demand ``e`` (callable-materialized by the trainer as
            an array aligned with the miner's grid, or a scalar).
        realized_payoff: The miner's realized payoff (``"realized"`` mode).
        won: Whether the miner won the block.
    """

    e_others: float
    s_others: float
    reward: float
    fork_rate: float
    sat_weight: np.ndarray
    realized_payoff: float
    won: bool


class LearningMiner:
    """A miner that learns its request vector by repeated interaction.

    Args:
        miner_id: Stable identity.
        grid: Discretized strategy set.
        learner: Bandit learner over the grid (defaults to ε-greedy).
        feedback: ``"expected"`` or ``"realized"`` (see module docstring).
    """

    def __init__(self, miner_id: int, grid: StrategyGrid,
                 learner: Optional[BanditLearner] = None,
                 feedback: str = "expected", seed: int = 0) -> None:
        if feedback not in ("expected", "realized"):
            raise ConfigurationError(f"unknown feedback mode {feedback!r}")
        self.miner_id = miner_id
        self.grid = grid
        self.learner = learner if learner is not None else \
            EpsilonGreedyLearner(grid.size, seed=seed)
        if self.learner.num_actions != grid.size:
            raise ConfigurationError(
                "learner action count does not match the grid size")
        self.feedback = feedback
        self.last_action: Optional[int] = None

    def act(self) -> Tuple[int, float, float]:
        """Select an action; returns ``(index, e, c)``."""
        idx = self.learner.select()
        self.last_action = idx
        e, c = self.grid.action(idx)
        return idx, e, c

    def counterfactual_utilities(self, obs: RoundObservation) -> np.ndarray:
        """Utility of every grid action against the observed aggregates."""
        e = self.grid.actions[:, 0]
        c = self.grid.actions[:, 1]
        beta = obs.fork_rate
        S = obs.s_others + e + c
        E = obs.e_others + e
        base = np.where(S > 0, (1.0 - beta) * (e + c)
                        / np.maximum(S, 1e-300), 0.0)
        bonus = np.where(E > 0, beta * e / np.maximum(E, 1e-300), 0.0)
        w = np.broadcast_to(np.asarray(obs.sat_weight, dtype=float),
                            e.shape)
        income = obs.reward * (base + w * bonus)
        spend = self.grid.p_e * e + self.grid.p_c * c
        return income - spend

    def observe(self, obs: RoundObservation) -> None:
        """Update the learner from one block's outcome."""
        if self.last_action is None:
            raise ConfigurationError("observe() called before act()")
        if self.feedback == "expected":
            self.learner.update_all(self.counterfactual_utilities(obs))
        else:
            self.learner.update(self.last_action, obs.realized_payoff)

    def greedy_strategy(self) -> Tuple[float, float]:
        """The currently learned (greedy) request vector."""
        return self.grid.action(self.learner.greedy())

    def strategy_entropy(self) -> float:
        """Entropy of the visit distribution — a convergence diagnostic."""
        counts = self.learner.counts.astype(float)
        total = counts.sum()
        if total <= 0:
            return 0.0
        p = counts[counts > 0] / total
        return float(-np.sum(p * np.log(p)))


class QLearningMiner:
    """A miner whose policy conditions on the opponents' edge share.

    Wraps a :class:`~repro.learning.qlearning.QLearningAgent` over the
    same strategy grid as :class:`LearningMiner`, with the previous
    round's discretized opponent edge share ``ē/s̄`` as the state. The
    richer learner class demonstrates (and the tests assert) that the
    equilibrium is robust beyond stateless bandits — in self-play against
    stationary opponents the per-state greedy actions collapse to the
    bandit solution.

    Args:
        miner_id: Stable identity.
        grid: Discretized strategy set.
        num_states: Number of edge-share bins.
        seed: RNG seed.
        **agent_kwargs: Forwarded to :class:`QLearningAgent`.
    """

    def __init__(self, miner_id: int, grid: StrategyGrid,
                 num_states: int = 5, seed: int = 0,
                 **agent_kwargs: Any) -> None:
        from .qlearning import QLearningAgent

        if num_states < 1:
            raise ConfigurationError("num_states must be >= 1")
        self.miner_id = miner_id
        self.grid = grid
        self.num_states = num_states
        self.agent = QLearningAgent(num_states, grid.size, seed=seed,
                                    **agent_kwargs)
        self._state = 0
        self.last_action: Optional[int] = None

    def observe_state(self, e_others: float, s_others: float) -> int:
        """Update (and return) the discretized opponent edge share."""
        from .qlearning import discretize_edge_share

        self._state = discretize_edge_share(e_others, s_others,
                                            self.num_states)
        return self._state

    def act(self) -> Tuple[int, float, float]:
        """Select an action in the current state; returns (index, e, c)."""
        idx = self.agent.select(self._state)
        self.last_action = idx
        e, c = self.grid.action(idx)
        return idx, e, c

    def learn(self, payoff: float, e_others: float,
              s_others: float) -> None:
        """TD update with the next state derived from fresh observations."""
        if self.last_action is None:
            raise ConfigurationError("learn() called before act()")
        from .qlearning import discretize_edge_share

        next_state = discretize_edge_share(e_others, s_others,
                                           self.num_states)
        self.agent.update(self._state, self.last_action, payoff,
                          next_state=next_state)
        self._state = next_state

    def greedy_strategy(self, state: Optional[int] = None
                        ) -> Tuple[float, float]:
        """Greedy request vector for ``state`` (current state default)."""
        s = self._state if state is None else state
        return self.grid.action(int(self.agent.greedy_policy()[s]))
