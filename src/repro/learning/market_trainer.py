"""RL against the physical market (no analytic shortcuts).

:class:`repro.learning.trainer.RLTrainer` evaluates learners against the
model's utility expressions; this trainer closes the loop through the
*substrates* instead: every block, the learners' requests go through the
real :class:`~repro.offloading.Dispatcher` (capacity admission or
connected-mode transfers with billing) and a mining round is played by
the :class:`~repro.blockchain.RoundSimulator` on the realized pools. The
only learning signal is the realized payoff ``R·1{won} − charges`` — the
fully physical, fully incomplete-information setting the paper's RL
section describes.

Because the signal is a high-variance Bernoulli, convergence needs more
blocks than the belief-based trainer; the tests run long epochs and
assert agreement in *expectation* with the analytic equilibrium, which is
exactly the cross-substrate validation this class exists for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..offloading import (CloudProvider, Dispatcher, EdgeProvider,
                          ResourceRequest)
from ..blockchain.simulator import RoundSimulator
from .bandits import EpsilonGreedyLearner
from .discretization import StrategyGrid
from .miners import LearningMiner

__all__ = ["MarketEpochResult", "MarketRLTrainer"]


@dataclass
class MarketEpochResult:
    """Aggregates of one market-coupled training epoch.

    Attributes:
        mean_edge: Average greedy per-miner edge request at epoch end.
        mean_cloud: Average greedy per-miner cloud request.
        esp_revenue: Total ESP revenue over the epoch.
        csp_revenue: Total CSP revenue over the epoch.
        rejections: Edge requests rejected (standalone mode).
        transfers: Edge requests transferred (connected mode).
        blocks: Blocks played.
    """

    mean_edge: float
    mean_cloud: float
    esp_revenue: float
    csp_revenue: float
    rejections: int
    transfers: int
    blocks: int


class MarketRLTrainer:
    """Realized-payoff learning through the physical offloading market.

    Args:
        n: Number of miners.
        budget: Common miner budget.
        reward: Block reward ``R``.
        fork_rate: Fork rate ``β`` for the mining rounds.
        p_e / p_c: Posted prices.
        h: Connected-mode satisfaction probability (ignored when
            ``e_max`` is set).
        e_max: Standalone ESP capacity (``None`` = connected mode).
        grid_spend_levels / grid_split_levels: Strategy grid resolution.
        epsilon / step_size: Bandit parameters (realized payoffs are
            noisy; the defaults anneal slowly).
        seed: Master seed.
    """

    def __init__(self, n: int, budget: float, reward: float,
                 fork_rate: float, p_e: float, p_c: float, h: float = 1.0,
                 e_max: Optional[float] = None,
                 grid_spend_levels: int = 4, grid_split_levels: int = 5,
                 epsilon: float = 0.3, step_size: float = 0.05,
                 seed: int = 0) -> None:
        if n < 2:
            raise ConfigurationError("need n >= 2 miners")
        if p_e <= 0 or p_c <= 0:
            raise ConfigurationError("prices must be positive")
        self.n = n
        self.reward = reward
        self.fork_rate = fork_rate
        self.p_e = p_e
        self.p_c = p_c
        self.h = h
        self.e_max = e_max
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        grid = StrategyGrid.build(budget, p_e, p_c,
                                  spend_levels=grid_spend_levels,
                                  split_levels=grid_split_levels)
        self.miners: List[LearningMiner] = [
            LearningMiner(i, grid,
                          learner=EpsilonGreedyLearner(
                              grid.size, epsilon=epsilon,
                              epsilon_decay=0.9995, epsilon_min=0.02,
                              step_size=step_size, seed=seed + i),
                          feedback="realized")
            for i in range(n)
        ]

    def _providers(self) -> Tuple[EdgeProvider, CloudProvider]:
        esp = EdgeProvider(price=self.p_e, h=self.h,
                           capacity=self.e_max,
                           seed=int(self._rng.integers(2 ** 31)))
        csp = CloudProvider(price=self.p_c)
        return esp, csp

    def run_epoch(self, blocks: int = 2000) -> MarketEpochResult:
        """Play ``blocks`` market rounds, learning from realized payoffs."""
        if blocks < 1:
            raise ConfigurationError("need at least one block")
        esp, csp = self._providers()
        dispatcher = Dispatcher(esp, csp)
        rejections = 0
        transfers = 0
        for _ in range(blocks):
            requests: List[ResourceRequest] = []
            actions: List[int] = []
            for miner in self.miners:
                action, e, c = miner.act()
                actions.append(action)
                requests.append(ResourceRequest(miner.miner_id, e, c))
            allocations = dispatcher.dispatch_all(requests)
            e_real = np.array([a.edge_units for a in allocations])
            c_real = np.array([a.cloud_units for a in allocations])
            rejections += sum(a.status.value == "rejected"
                              for a in allocations)
            transfers += sum(a.status.value == "transferred"
                             for a in allocations)
            total = float((e_real + c_real).sum())
            if total > 0:
                sim = RoundSimulator(
                    np.maximum(e_real, 0.0), np.maximum(c_real, 0.0),
                    self.fork_rate,
                    seed=int(self._rng.integers(2 ** 31)))
                winner = int(np.argmax(sim.run(1).wins))
            else:
                winner = -1
            for idx, (miner, alloc) in enumerate(zip(self.miners,
                                                     allocations)):
                payoff = -alloc.total_charge
                if idx == winner:
                    payoff += self.reward
                miner.learner.update(actions[idx], payoff)
        strategies = np.array([m.greedy_strategy() for m in self.miners])
        return MarketEpochResult(
            mean_edge=float(strategies[:, 0].mean()),
            mean_cloud=float(strategies[:, 1].mean()),
            esp_revenue=esp.account.revenue,
            csp_revenue=csp.account.revenue,
            rejections=rejections, transfers=transfers, blocks=blocks)
