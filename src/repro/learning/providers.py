"""Adaptive pricing agents for the SPs.

In the Section VI-C loop the SPs hold prices fixed for a T-block epoch,
observe the demand the (converged) miners generate, and then adapt. The
:class:`PriceLearner` implements that outer loop as a bandit over a price
grid with per-epoch profit feedback, plus an optional local hill-climbing
refinement once the bandit has settled.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..exceptions import ConfigurationError
from .bandits import EpsilonGreedyLearner

__all__ = ["PriceLearner"]


class PriceLearner:
    """Epoch-level price adaptation for one SP.

    Args:
        price_grid: Candidate unit prices (must be positive, ascending).
        unit_cost: The SP's unit operating cost (profit feedback is
            computed by the trainer; stored here for reporting).
        epsilon: Initial exploration rate of the underlying bandit.
        step_size: Value-update step of the bandit.
        seed: RNG seed.
    """

    def __init__(self, price_grid: Union[Sequence[float], np.ndarray],
                 unit_cost: float = 0.0,
                 epsilon: float = 0.3, step_size: float = 0.3,
                 seed: int = 0) -> None:
        grid = np.asarray(price_grid, dtype=float)
        if grid.ndim != 1 or grid.size < 2:
            raise ConfigurationError("price_grid must be 1-D with >= 2 "
                                     "candidates")
        if np.any(grid <= 0):
            raise ConfigurationError("prices must be positive")
        if np.any(np.diff(grid) <= 0):
            raise ConfigurationError("price_grid must be strictly ascending")
        if unit_cost < 0:
            raise ConfigurationError("unit_cost must be non-negative")
        self.grid = grid
        self.unit_cost = unit_cost
        self._bandit = EpsilonGreedyLearner(grid.size, epsilon=epsilon,
                                            epsilon_decay=0.9,
                                            epsilon_min=0.02,
                                            step_size=step_size, seed=seed)
        self._current: Optional[int] = None

    @property
    def current_price(self) -> float:
        """Price in force for the current epoch."""
        if self._current is None:
            raise ConfigurationError("no epoch started yet")
        return float(self.grid[self._current])

    def start_epoch(self) -> float:
        """Pick the price for the next epoch."""
        self._current = self._bandit.select()
        return self.current_price

    def end_epoch(self, profit: float) -> None:
        """Feed back the epoch's realized profit."""
        if self._current is None:
            raise ConfigurationError("end_epoch() without start_epoch()")
        self._bandit.update(self._current, profit)

    def greedy_price(self) -> float:
        """The price the learner currently believes is most profitable."""
        return float(self.grid[self._bandit.greedy()])

    def value_table(self) -> np.ndarray:
        """(price, estimated profit) rows for diagnostics."""
        return np.column_stack([self.grid, self._bandit.values])
