"""Reinforcement-learning framework of Section VI-C: strategy grids,
bandit and Q-learning agents for miners, adaptive pricing for the SPs,
and the epoch trainer that reproduces the paper's learning loop."""

from .bandits import (BanditLearner, EpsilonGreedyLearner, SoftmaxLearner,
                      UCBLearner)
from .discretization import StrategyGrid
from .fictitious import FictitiousPlayResult, fictitious_play
from .market_trainer import MarketEpochResult, MarketRLTrainer
from .miners import LearningMiner, QLearningMiner, RoundObservation
from .providers import PriceLearner
from .qlearning import QLearningAgent, discretize_edge_share
from .trainer import EpochResult, RLTrainer, TrainingResult

__all__ = [
    "BanditLearner",
    "EpsilonGreedyLearner",
    "SoftmaxLearner",
    "UCBLearner",
    "StrategyGrid",
    "FictitiousPlayResult",
    "fictitious_play",
    "MarketEpochResult",
    "MarketRLTrainer",
    "LearningMiner",
    "QLearningMiner",
    "RoundObservation",
    "PriceLearner",
    "QLearningAgent",
    "discretize_edge_share",
    "EpochResult",
    "RLTrainer",
    "TrainingResult",
]
