"""Fictitious play for the miner subgame.

A classical learning dynamic complementing the bandit learners: each
miner tracks the *empirical average* of its opponents' aggregate requests
over past rounds and plays an exact best response (via
:func:`repro.core.miner_best_response.solve_best_response`) to that
belief. For the connected-mode subgame — whose best-response map is a
contraction around the unique NE (Theorem 2) — fictitious play converges
to the same equilibrium as the best-response iteration, which the test
suite asserts. This provides an independent, learning-theoretic
validation of the equilibrium concept, matching the paper's framing that
players "update their beliefs about unobservable actions of others
through repeated interactions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.miner_best_response import ResponseContext, solve_best_response
from ..core.params import GameParameters, Prices
from ..exceptions import ConfigurationError
from ..game.diagnostics import ConvergenceReport, ResidualRecorder

__all__ = ["FictitiousPlayResult", "fictitious_play"]


@dataclass
class FictitiousPlayResult:
    """Outcome of a fictitious-play run.

    Attributes:
        e: Final per-miner edge requests.
        c: Final per-miner cloud requests.
        beliefs_e: Final per-miner beliefs about opponents' edge total.
        beliefs_s: Final per-miner beliefs about opponents' grand total.
        report: Convergence diagnostics (residual = last strategy change).
        trajectory: Per-round aggregate ``(E, C)`` history.
    """

    e: np.ndarray
    c: np.ndarray
    beliefs_e: np.ndarray
    beliefs_s: np.ndarray
    report: ConvergenceReport
    trajectory: List[Tuple[float, float]]

    @property
    def converged(self) -> bool:
        return self.report.converged


def fictitious_play(params: GameParameters, prices: Prices,
                    rounds: int = 500, tol: float = 1e-8,
                    initial: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                    ) -> FictitiousPlayResult:
    """Run belief-averaging fictitious play on the miner subgame.

    Each round every miner updates its belief as the running average of
    the observed opponent aggregates and best-responds to the belief:

        belief_t = belief_{t-1} + (observed_t - belief_{t-1}) / t

    Args:
        params: Game parameters (connected mode; standalone capacity is
            not enforced by beliefs — use the GNEP solver for that).
        prices: Announced SP prices.
        rounds: Maximum rounds of play.
        tol: Relative convergence tolerance on the strategy update.
        initial: Optional starting profile ``(e, c)``.

    Returns:
        :class:`FictitiousPlayResult`.
    """
    if rounds < 1:
        raise ConfigurationError("need at least one round")
    n = params.n
    budgets = params.budget_array
    h = params.effective_h
    if initial is None:
        e = budgets / (4.0 * prices.p_e)
        c = budgets / (4.0 * prices.p_c)
    else:
        e = np.array(initial[0], dtype=float).copy()
        c = np.array(initial[1], dtype=float).copy()
        if e.shape != (n,) or c.shape != (n,):
            raise ConfigurationError("initial profile shape mismatch")

    beliefs_e = np.array([float(np.sum(e)) - e[i] for i in range(n)])
    beliefs_s = np.array([float(np.sum(e + c)) - e[i] - c[i]
                          for i in range(n)])
    recorder = ResidualRecorder(tol)
    trajectory: List[Tuple[float, float]] = []
    converged = False
    iterations = 0
    for t in range(1, rounds + 1):
        iterations = t
        # Everyone best-responds to beliefs simultaneously.
        e_new = np.empty(n)
        c_new = np.empty(n)
        for i in range(n):
            ctx = ResponseContext(
                e_others=max(float(beliefs_e[i]), 0.0),
                s_others=max(float(beliefs_s[i]), float(beliefs_e[i]),
                             0.0))
            br = solve_best_response(ctx, reward=params.reward,
                                     beta=params.fork_rate, h=h,
                                     p_e=prices.p_e, p_c=prices.p_c,
                                     budget=float(budgets[i]))
            e_new[i] = br.e
            c_new[i] = br.c
        scale = max(1.0, float(np.max(np.abs(e_new))),
                    float(np.max(np.abs(c_new))))
        residual = max(float(np.max(np.abs(e_new - e))),
                       float(np.max(np.abs(c_new - c)))) / scale
        e, c = e_new, c_new
        E = float(np.sum(e))
        S = E + float(np.sum(c))
        trajectory.append((E, S - E))
        # Belief update: running average of observed opponent aggregates.
        step = 1.0 / t
        observed_e = E - e
        observed_s = S - e - c
        beliefs_e += step * (observed_e - beliefs_e)
        beliefs_s += step * (observed_s - beliefs_s)
        if recorder.record(residual):
            converged = True
            break
    report = recorder.report(converged, iterations)
    return FictitiousPlayResult(e=e, c=c, beliefs_e=beliefs_e,
                                beliefs_s=beliefs_s, report=report,
                                trajectory=trajectory)
