"""Strategy-space discretization for learning agents.

Learning miners act on a finite grid of request vectors ``(e, c)`` spanning
their budget set: spending fractions × edge/cloud splits. The grid always
contains the pure-cloud and pure-edge extremes and the zero request, so no
corner equilibrium is unreachable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["StrategyGrid"]


@dataclass(frozen=True)
class StrategyGrid:
    """A finite grid over one miner's budget set.

    Attributes:
        actions: Array of shape ``(m, 2)`` with rows ``[e, c]``.
        budget: The budget the grid spans.
        p_e: ESP price used to build the grid.
        p_c: CSP price used to build the grid.
    """

    actions: np.ndarray
    budget: float
    p_e: float
    p_c: float

    @classmethod
    def build(cls, budget: float, p_e: float, p_c: float,
              spend_levels: int = 5, split_levels: int = 9,
              ) -> "StrategyGrid":
        """Construct a grid of ``~spend_levels * split_levels`` actions.

        Args:
            budget: Miner budget ``B``.
            p_e: ESP unit price.
            p_c: CSP unit price.
            spend_levels: Number of spending fractions in ``(0, 1]``.
            split_levels: Number of edge-share levels in ``[0, 1]``.
        """
        if budget <= 0 or p_e <= 0 or p_c <= 0:
            raise ConfigurationError(
                "budget and prices must be positive to build a grid")
        if spend_levels < 1 or split_levels < 2:
            raise ConfigurationError(
                "need spend_levels >= 1 and split_levels >= 2")
        rows: List[Tuple[float, float]] = [(0.0, 0.0)]
        for frac in np.linspace(1.0 / spend_levels, 1.0, spend_levels):
            spend = budget * float(frac)
            for share in np.linspace(0.0, 1.0, split_levels):
                e = spend * float(share) / p_e
                c = spend * (1.0 - float(share)) / p_c
                rows.append((e, c))
        actions = np.array(sorted(set(rows)))
        return cls(actions=actions, budget=budget, p_e=p_e, p_c=p_c)

    @property
    def size(self) -> int:
        return int(self.actions.shape[0])

    def action(self, index: int) -> Tuple[float, float]:
        """The ``(e, c)`` pair at ``index``."""
        e, c = self.actions[index]
        return float(e), float(c)

    def nearest(self, e: float, c: float) -> int:
        """Index of the grid action closest (Euclidean) to ``(e, c)``."""
        d = np.linalg.norm(self.actions - np.array([e, c]), axis=1)
        return int(np.argmin(d))

    def feasible(self, tol: float = 1e-9) -> bool:
        """Whether every action respects the budget."""
        spend = self.actions[:, 0] * self.p_e + self.actions[:, 1] * self.p_c
        return bool(np.all(spend <= self.budget + tol))
