"""The resilient offloading pipeline: guarded solve + faulted market run.

:func:`run_resilient_pipeline` is the chaos-suite entry point. It plays
the full two-stage game end to end under a :class:`FaultPlan`:

1. **Leader + follower stage, guarded** — the Stackelberg equilibrium is
   solved through :func:`~repro.resilience.guard.guarded_stackelberg`.
   If the plan keeps the ESP dark for the entire run, the pipeline
   instead computes the all-cloud (``P_e -> inf``) equilibrium and says
   so in the report.
2. **Market rounds, faulted** — the equilibrium request vectors are
   replayed through a :class:`ResilientDispatcher` over fault-injecting
   providers for ``n_rounds`` blocks; CSP latency spikes inflate the
   per-round fork rate, retries and drops are absorbed, and a round in
   which nothing at all was provisioned mints no block instead of
   raising.

The outcome carries a :class:`~repro.resilience.degradation.DegradationReport`
naming every fault fired, fallback taken, retry spent, and request
dropped. Two runs with the same plan and seed produce identical reports;
under :meth:`FaultPlan.none` the equilibrium is bit-identical to the
unguarded ``solve_stackelberg``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, Iterable, List,
                    Optional, Tuple)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (the
    # control package imports resilience; the runtime edge goes the
    # other way only through this parameter).
    from ..control.loop import ControlLoop

from ..blockchain.simulator import RoundSimulator
from ..core.nep import MinerEquilibrium
from ..core.params import EdgeMode, GameParameters, Prices
from ..offloading.market import MarketRound
from ..offloading.provider import CloudProvider, EdgeProvider
from ..offloading.request import ResourceRequest
from .degradation import DegradationReport, all_cloud_equilibrium
from .dispatcher import ResilientDispatcher
from .faults import FaultInjector, FaultPlan
from .guard import SolverGuard, guarded_stackelberg
from .providers import FaultyCloudProvider, FaultyEdgeProvider
from .retry import RetryPolicy

__all__ = ["ResilientMarket", "PipelineOutcome", "run_resilient_pipeline"]


class ResilientMarket:
    """A priced market over repeated rounds with faults and retries.

    The fault-tolerant counterpart of
    :class:`~repro.offloading.market.OffloadingMarket`: providers are
    wrapped with the injector, dispatch goes through
    :class:`ResilientDispatcher`, the per-round fork rate reflects any
    active CSP latency spike, and a fully-failed round (nothing
    provisioned anywhere) settles as a no-block round with zero payoffs
    instead of raising.
    """

    def __init__(self, edge: EdgeProvider, cloud: CloudProvider,
                 reward: float, fork_rate: float, plan: FaultPlan,
                 policy: Optional[RetryPolicy] = None,
                 seed: int = 0) -> None:
        self.injector = FaultInjector(plan)
        self.edge = FaultyEdgeProvider(edge, self.injector)
        self.cloud = FaultyCloudProvider(cloud, self.injector)
        self.dispatcher = ResilientDispatcher(
            self.edge, self.cloud, policy=policy, seed=seed)
        self.reward = reward
        self.fork_rate = fork_rate
        self._seed = seed
        self._round_counter = 0

    def play_round(self,
                   requests: Iterable[ResourceRequest]) -> MarketRound:
        """Dispatch, mine, and settle one round under the fault plan.

        Advances the injector's round clock afterwards, so consecutive
        calls walk through the plan's windows in order.
        """
        allocations = self.dispatcher.dispatch_all(list(requests))
        e = np.array([a.edge_units for a in allocations])
        c = np.array([a.cloud_units for a in allocations])
        beta = self.cloud.effective_fork_rate(self.fork_rate)
        self._round_counter += 1
        if float(np.sum(e + c)) <= 0:
            # Nothing ran anywhere (total outage + exhausted retries):
            # no block is mined this round; miners pay nothing, win
            # nothing.
            round_result = MarketRound(
                allocations=allocations, winner=-1,
                payoffs=np.zeros(len(allocations)),
                esp_revenue=0.0, csp_revenue=0.0)
        else:
            sim = RoundSimulator(e, c, beta,
                                 seed=self._seed + self._round_counter)
            tally = sim.run(1)
            winner = int(np.argmax(tally.wins))
            payoffs = -np.array([a.total_charge for a in allocations])
            payoffs[winner] += self.reward
            round_result = MarketRound(
                allocations=allocations, winner=winner, payoffs=payoffs,
                esp_revenue=float(sum(a.edge_charge
                                      for a in allocations)),
                csp_revenue=float(sum(a.cloud_charge
                                      for a in allocations)))
        self.injector.advance_round()
        return round_result


@dataclass
class PipelineOutcome:
    """Everything a chaos run produced.

    Attributes:
        equilibrium: The miner equilibrium the requests were drawn from
            (guarded Stackelberg follower stage, or the all-cloud limit).
        prices: The prices that equilibrium responded to.
        rounds: Per-round market results.
        report: The degradation report (see module docstring).
        mean_miner_payoff: Mean realized per-miner, per-round payoff.
        esp_revenue: Total ESP revenue across the run.
        csp_revenue: Total CSP revenue across the run.
        blocks_mined: Rounds that actually minted a block.
    """

    equilibrium: MinerEquilibrium
    prices: Prices
    rounds: List[MarketRound] = field(default_factory=list)
    report: DegradationReport = field(default_factory=DegradationReport)
    control_summary: Optional[Dict[str, Any]] = None

    @property
    def mean_miner_payoff(self) -> float:
        if not self.rounds:
            return 0.0
        return float(np.mean([np.mean(r.payoffs) for r in self.rounds]))

    @property
    def esp_revenue(self) -> float:
        return float(sum(r.esp_revenue for r in self.rounds))

    @property
    def csp_revenue(self) -> float:
        return float(sum(r.csp_revenue for r in self.rounds))

    @property
    def blocks_mined(self) -> int:
        return sum(1 for r in self.rounds if r.winner >= 0)


def run_resilient_pipeline(params: GameParameters, plan: FaultPlan,
                           n_rounds: int = 20, seed: int = 0,
                           policy: Optional[RetryPolicy] = None,
                           guard: Optional[SolverGuard] = None,
                           controller: Optional["ControlLoop"] = None,
                           ) -> PipelineOutcome:
    """Play the full Stackelberg pipeline under a fault plan.

    See the module docstring for the two stages. With
    ``plan=FaultPlan.none()`` the solved equilibrium is bit-identical to
    ``solve_stackelberg(params)`` and the report comes back clean.

    Args:
        params: Game parameters (either edge operation mode).
        plan: The chaos scenario.
        n_rounds: Market rounds (blocks) to replay the equilibrium for.
        seed: Seed for the mining draws and retry jitter (the fault
            draws are seeded by ``plan.seed``).
        policy: Retry policy for transient provider failures.
        guard: Solver guard for the equilibrium stage.
        controller: Optional :class:`~repro.control.loop.ControlLoop`;
            when given, the loop ticks once per market round over the
            run's own dispatcher (wired into the controller's target if
            it has none), and rounds played while the target is in
            all-cloud degradation mode reroute every edge unit to the
            CSP. ``None`` (the default) leaves the run bit-identical
            to a controller-free pipeline.
    """
    notes: List[str] = []
    fallbacks: Tuple[str, ...] = ()
    if plan.esp_down_for_all(n_rounds):
        # The ESP never comes up: solving the two-leader game would price
        # a provider that cannot deliver. Recompute the P_e -> inf limit.
        miners = all_cloud_equilibrium(params)
        prices = miners.prices
        notes.append("all-cloud equilibrium substituted: ESP out for the "
                     "whole run (P_e -> inf limit)")
    else:
        guarded = guarded_stackelberg(params, guard=guard)
        se = guarded.value
        miners = se.miners
        prices = se.prices
        fallbacks = guarded.fallbacks_used
        if guarded.degraded:
            notes.append(f"leader stage degraded: solved by "
                         f"{guarded.solver} "
                         f"(diagnosis: {guarded.diagnosis})")

    requests = [ResourceRequest(miner_id=i, edge_units=float(miners.e[i]),
                                cloud_units=float(miners.c[i]))
                for i in range(params.n)]

    edge = EdgeProvider(price=prices.p_e, unit_cost=params.edge_cost,
                        h=params.effective_h,
                        capacity=(params.e_max
                                  if params.mode is EdgeMode.STANDALONE
                                  else None),
                        seed=seed)
    cloud = CloudProvider(price=prices.p_c, unit_cost=params.cloud_cost,
                          d_avg=params.d_avg or 0.0)
    market = ResilientMarket(edge, cloud, reward=params.reward,
                             fork_rate=params.fork_rate, plan=plan,
                             policy=policy, seed=seed)
    if controller is not None and controller.target.dispatcher is None:
        # Let the loop watch (and retune) this run's own dispatcher.
        controller.target.dispatcher = market.dispatcher
    rerouted = [ResourceRequest(miner_id=r.miner_id, edge_units=0.0,
                                cloud_units=r.edge_units + r.cloud_units)
                for r in requests]
    rerouted_from: Optional[int] = None
    rounds: List[MarketRound] = []
    for rnd in range(n_rounds):
        degraded_now = (controller is not None
                        and controller.target.degraded)
        if degraded_now and rerouted_from is None:
            rerouted_from = rnd
        rounds.append(market.play_round(
            rerouted if degraded_now else requests))
        if controller is not None:
            # The dispatcher's retry policy may have been tightened by
            # an earlier tick; the market object shares the instance,
            # so the change takes effect on the next dispatch.
            controller.tick()
    if rerouted_from is not None:
        notes.append(f"control: edge load rerouted to cloud from round "
                     f"{rerouted_from} (all-cloud degradation mode)")

    report = DegradationReport(
        faults=market.injector.events,
        fallbacks=fallbacks,
        retries=market.dispatcher.stats.retries,
        failed_requests=tuple(market.dispatcher.failed_requests),
        notes=tuple(notes))
    return PipelineOutcome(
        equilibrium=miners, prices=prices, rounds=rounds, report=report,
        control_summary=(None if controller is None
                         else controller.summary()))
