"""Retry with exponential backoff and decorrelated jitter.

The policy is pure data plus a deterministic delay generator: given the
same seed it produces the same delay schedule, which keeps chaos runs
reproducible. Delays are *simulated* by default — this is a simulation
library, so :func:`retry_call` advances a virtual clock instead of
sleeping; pass ``sleep=time.sleep`` to block for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, TypeVar

import numpy as np

from ..exceptions import ConfigurationError, TransientProviderError
from ..telemetry import TELEMETRY as _TEL

__all__ = ["RetryPolicy", "RetryOutcome", "retry_call"]

T = TypeVar("T")

_JITTER_MODES = ("decorrelated", "full", "none")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff parameters for retrying transient provider failures.

    Attributes:
        max_attempts: Total attempts including the first (>= 1).
        base_delay: Lower bound of every backoff delay (seconds).
        max_delay: Cap on every backoff delay (seconds).
        deadline: Optional budget on the *sum* of delays; once the
            accumulated (virtual) sleep time would exceed it, the retry
            loop gives up even with attempts left.
        jitter: ``"decorrelated"`` (AWS-style: next in
            ``U[base, 3 * prev]``), ``"full"`` (``U[base, base * 2**k]``),
            or ``"none"`` (pure exponential doubling). All modes clamp
            into ``[base_delay, max_delay]``.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    deadline: Optional[float] = None
    jitter: str = "decorrelated"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay <= 0:
            raise ConfigurationError(
                f"base_delay must be positive, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})")
        if self.deadline is not None and self.deadline < 0:
            raise ConfigurationError(
                f"deadline must be non-negative, got {self.deadline}")
        if self.jitter not in _JITTER_MODES:
            raise ConfigurationError(
                f"jitter must be one of {_JITTER_MODES}, got {self.jitter!r}")

    def delays(self, seed: int = 0) -> Iterator[float]:
        """Yield the (at most ``max_attempts - 1``) backoff delays.

        Deterministic in ``seed``: the same seed reproduces the same
        schedule. Every yielded delay lies in
        ``[base_delay, max_delay]``.
        """
        rng = np.random.default_rng(seed)
        prev = self.base_delay
        for attempt in range(1, self.max_attempts):
            if self.jitter == "none":
                delay = self.base_delay * (2.0 ** (attempt - 1))
            elif self.jitter == "full":
                hi = min(self.max_delay,
                         self.base_delay * (2.0 ** attempt))
                delay = float(rng.uniform(self.base_delay, hi))
            else:  # decorrelated
                hi = max(self.base_delay, 3.0 * prev)
                delay = float(rng.uniform(self.base_delay, hi))
            delay = min(max(delay, self.base_delay), self.max_delay)
            prev = delay
            yield delay


@dataclass
class RetryOutcome:
    """What happened inside one :func:`retry_call`.

    Attributes:
        value: The successful return value (``None`` if ``succeeded`` is
            False — the error was re-raised unless ``swallow=True``).
        succeeded: Whether any attempt returned.
        attempts: Attempts actually made (1 = no retries needed).
        retries: ``attempts - 1``.
        total_delay: Sum of (virtual) backoff delays taken.
        delays: The individual delays, in order.
        last_error: The final error when every attempt failed.
    """

    value: object = None
    succeeded: bool = False
    attempts: int = 0
    total_delay: float = 0.0
    delays: List[float] = field(default_factory=list)
    last_error: Optional[BaseException] = None

    @property
    def retries(self) -> int:
        return max(self.attempts - 1, 0)


def retry_call(fn: Callable[[], T], policy: RetryPolicy, seed: int = 0,
               sleep: Optional[Callable[[float], None]] = None,
               on_retry: Optional[Callable[[int, BaseException], None]]
               = None, swallow: bool = False) -> RetryOutcome:
    """Call ``fn`` under ``policy``, retrying on transient errors.

    Only :class:`~repro.exceptions.TransientProviderError` is retried —
    anything else is a bug or a permanent condition and propagates
    immediately. When every attempt fails the last error is re-raised
    (or, with ``swallow=True``, returned inside the outcome so batch
    callers can degrade instead of abort).

    Args:
        fn: Zero-argument callable to attempt.
        policy: Backoff/attempt budget.
        seed: Seed of the jitter schedule (determinism).
        sleep: Optional real sleep function; by default delays are only
            accounted, not slept.
        on_retry: Optional hook called with ``(attempt, error)`` before
            each backoff — e.g. to roll back partial billing.
        swallow: Return the failed outcome instead of re-raising.
    """
    outcome = RetryOutcome()
    schedule = policy.delays(seed)
    while True:
        outcome.attempts += 1
        try:
            outcome.value = fn()
            outcome.succeeded = True
            if _TEL.enabled and outcome.retries:
                _record_retries(outcome, exhausted=False)
            return outcome
        except TransientProviderError as ex:
            outcome.last_error = ex
            if on_retry is not None:
                on_retry(outcome.attempts, ex)
            delay = next(schedule, None)
            exhausted = (delay is None
                         or outcome.attempts >= policy.max_attempts
                         or (policy.deadline is not None
                             and outcome.total_delay + delay
                             > policy.deadline))
            if exhausted:
                if _TEL.enabled:
                    _record_retries(outcome, exhausted=True)
                if swallow:
                    return outcome
                raise
            outcome.total_delay += delay
            outcome.delays.append(delay)
            if sleep is not None:
                sleep(delay)


def _record_retries(outcome: RetryOutcome, exhausted: bool) -> None:
    """Export one retry loop's backoff activity (telemetry enabled)."""
    _TEL.metrics.counter("retry_retries_total",
                         "Transient-failure retries performed").inc(
        outcome.retries)
    backoff = _TEL.metrics.histogram(
        "retry_backoff_seconds", "Individual (virtual) backoff delays")
    for delay in outcome.delays:
        backoff.observe(delay)
    if exhausted:
        _TEL.metrics.counter(
            "retry_exhausted_total",
            "Retry loops that ran out of attempt budget").inc()
        _TEL.emit("retry.exhausted", attempts=outcome.attempts,
                  error=str(outcome.last_error))
