"""Graceful degradation: the all-cloud limit and the degradation report.

When the ESP is faulted out entirely the market does not stop — miners
fall back to the CSP, which is the ``P_e -> inf`` limit of the pricing
game: the CSP re-optimizes as the sole leader and the miners play a
cloud-only contest. :func:`all_cloud_equilibrium` computes exactly that
limit with the existing solvers. :class:`DegradationReport` is the label
every resilient result carries: which faults fired, which fallbacks ran,
how many retries were spent, and which requests were dropped — so a
degraded number can never masquerade as a clean one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.nep import MinerEquilibrium, solve_connected_equilibrium
from ..core.params import GameParameters, Prices
from ..core.sp_game import DemandOracle, csp_best_response
from .faults import FaultEvent

__all__ = ["DegradationReport", "all_cloud_equilibrium"]

#: Price standing in for ``P_e -> inf``: far above any reward-justified
#: willingness to pay, so edge demand is identically zero.
_EFFECTIVELY_INFINITE = 1e9


@dataclass(frozen=True)
class DegradationReport:
    """What resilience machinery had to do to produce a result.

    An all-default report (``degraded == False``) means the clean path
    ran: no faults fired, no fallbacks, no retries, nothing dropped.

    Attributes:
        faults: Every :class:`~repro.resilience.faults.FaultEvent` that
            fired, in firing order.
        fallbacks: Names of solver fallback steps that had to run
            (empty when the primary solver answered).
        retries: Total provider-call retries spent by the dispatcher.
        failed_requests: Miner ids whose requests were dropped after
            exhausting retries (duplicates preserved: one entry per
            dropped dispatch).
        notes: Free-form degradation annotations (e.g. "all-cloud
            equilibrium substituted: ESP out for the whole run").
    """

    faults: Tuple[FaultEvent, ...] = ()
    fallbacks: Tuple[str, ...] = ()
    retries: int = 0
    failed_requests: Tuple[int, ...] = ()
    notes: Tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        """Whether anything at all deviated from the clean path."""
        return bool(self.faults or self.fallbacks or self.retries
                    or self.failed_requests or self.notes)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic plain-data form (stable across same-seed runs)."""
        return {
            "degraded": self.degraded,
            "faults": [{"round": f.round, "kind": f.kind,
                        "description": f.description}
                       for f in self.faults],
            "fallbacks": list(self.fallbacks),
            "retries": self.retries,
            "failed_requests": list(self.failed_requests),
            "notes": list(self.notes),
        }

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        if not self.degraded:
            return "clean run: no faults fired, no fallbacks, no retries"
        parts = [f"{len(self.faults)} fault event(s)"]
        if self.fallbacks:
            parts.append("fallbacks: " + ", ".join(self.fallbacks))
        parts.append(f"{self.retries} retry(ies)")
        if self.failed_requests:
            parts.append(f"{len(self.failed_requests)} dropped request(s)")
        if self.notes:
            parts.append("; ".join(self.notes))
        return "DEGRADED — " + "; ".join(parts)


def all_cloud_equilibrium(params: GameParameters,
                          p_c: Optional[float] = None,
                          tol: float = 1e-9) -> MinerEquilibrium:
    """Miner equilibrium of the ``P_e -> inf`` limit (ESP gone).

    With the ESP out of the market the CSP is the only leader: unless a
    cloud price is pinned explicitly, it re-optimizes as a monopolist
    (its best response to an effectively infinite ``P_e``), and the
    miners play the cloud-only contest at that price. Standalone-mode
    parameters are accepted — at zero edge demand the capacity
    constraint is slack, so the plain NEP solver applies.

    Args:
        params: Game parameters (either mode).
        p_c: Optional pinned CSP price; default re-optimizes.
        tol: Tolerance of the miner solve.
    """
    if p_c is None:
        oracle = DemandOracle(params, tol=tol)
        p_c = csp_best_response(oracle, _EFFECTIVELY_INFINITE)
    prices = Prices(p_e=_EFFECTIVELY_INFINITE, p_c=float(p_c))
    return solve_connected_equilibrium(params, prices, tol=tol)
