"""Solver guards: numerical sanity, divergence detection, deadlines, and a
declarative fallback chain around the iterative equilibrium solvers.

The NEP/GNEP/Stackelberg iterations can fail in ways a bare
:class:`~repro.exceptions.ConvergenceError` hides from callers who just
want *an* answer: residual series that diverge or 2-cycle, NaN/Inf leaking
out of an ill-conditioned best response, or a solve that simply takes too
long. :class:`SolverGuard` wraps any chain of solver callables: each step
runs in order until one produces a finite, non-pathological result; the
survivor is returned inside a :class:`GuardedSolution` that says exactly
which solver answered and why the earlier ones were rejected — a
degraded-but-labeled equilibrium instead of an exception.

The zero-overhead contract: when the primary solver succeeds, its result
object is returned unmodified (``GuardedSolution.value is`` the primary's
return value), so guarded and unguarded paths are bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConvergenceError, ReproError
from ..game.diagnostics import classify_residuals

__all__ = ["FallbackStep", "GuardedSolution", "SolverGuard",
           "guarded_miner_equilibrium", "guarded_stackelberg"]


@dataclass(frozen=True)
class FallbackStep:
    """One link of a fallback chain: a label and a zero-arg solver."""

    name: str
    solve: Callable[[], Any]


@dataclass
class GuardedSolution:
    """Outcome of a guarded solve.

    Attributes:
        value: The accepted solver result (unmodified).
        solver: Name of the fallback step that produced it.
        degraded: True when any step before the accepted one failed, or
            the accepted result itself is only a stalled approximation.
        attempts: Step names tried, in order.
        failures: Step name -> reason it was rejected.
        diagnosis: :func:`~repro.game.diagnostics.classify_residuals`
            verdict on the accepted result's residual history (when the
            result carries a ``report``).
    """

    value: Any
    solver: str
    degraded: bool
    attempts: List[str] = field(default_factory=list)
    failures: Dict[str, str] = field(default_factory=dict)
    diagnosis: Optional[str] = None

    @property
    def fallbacks_used(self) -> Tuple[str, ...]:
        """Names of the steps that failed before the accepted one."""
        return tuple(n for n in self.attempts if n in self.failures)


def _find_report(value: Any) -> Optional[Any]:
    report = getattr(value, "report", None)
    if report is not None and hasattr(report, "history"):
        return report
    miners = getattr(value, "miners", None)
    if miners is not None:
        return _find_report(miners)
    return None


def _finite(value: Any) -> bool:
    """Recursively check the numeric payload of a solver result."""
    if value is None:
        return True
    if isinstance(value, (int, float)):
        return bool(np.isfinite(value))
    if isinstance(value, np.ndarray):
        return bool(np.all(np.isfinite(value)))
    for attr in ("e", "c", "p_e", "p_c", "v_e", "v_c", "nu"):
        if hasattr(value, attr) and not _finite(getattr(value, attr)):
            return False
    for attr in ("prices", "miners"):
        if hasattr(value, attr) and not _finite(getattr(value, attr)):
            return False
    return True


class SolverGuard:
    """Runs a fallback chain of solvers under numerical and time guards.

    Args:
        deadline: Optional wall-clock budget (seconds) across the whole
            chain; once exceeded, remaining steps are skipped and the
            best stalled result so far (if any) is returned degraded.
        accept_stalled: Whether a non-converged result whose residuals
            merely plateaued ("stalled") is acceptable (degraded) or
            should trip the next fallback.
        clock: Injectable monotonic clock (tests).
    """

    def __init__(self, deadline: Optional[float] = None,
                 accept_stalled: bool = True,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.deadline = deadline
        self.accept_stalled = accept_stalled
        self._clock = clock

    def _reject_reason(self, value: Any) -> Optional[str]:
        """Why a result is unacceptable, or None if it is fine."""
        if not _finite(value):
            return "non-finite values in solution"
        report = _find_report(value)
        if report is None or report.converged:
            return None
        verdict = classify_residuals(report.history, report.tolerance)
        if verdict in ("diverging", "oscillating", "invalid"):
            return f"residuals {verdict}"
        if verdict == "stalled" and not self.accept_stalled:
            return "residuals stalled above tolerance"
        return None

    def run(self, steps: Sequence[FallbackStep]) -> GuardedSolution:
        """Try each step in order; return the first acceptable result.

        Raises:
            ConvergenceError: When every step fails (or the deadline
                expires) and no salvageable result was seen.
        """
        if not steps:
            raise ValueError("SolverGuard.run needs at least one step")
        start = self._clock()
        attempts: List[str] = []
        failures: Dict[str, str] = {}
        salvage: Optional[GuardedSolution] = None
        for i, step in enumerate(steps):
            if (self.deadline is not None and i > 0
                    and self._clock() - start > self.deadline):
                failures[step.name] = "skipped: deadline exceeded"
                attempts.append(step.name)
                continue
            attempts.append(step.name)
            try:
                value = step.solve()
            except ReproError as ex:
                failures[step.name] = f"{type(ex).__name__}: {ex}"
                continue
            reason = self._reject_reason(value)
            report = _find_report(value)
            diagnosis = None
            if report is not None:
                diagnosis = classify_residuals(report.history,
                                               report.tolerance)
            if reason is None:
                degraded = bool(failures) or diagnosis == "stalled"
                return GuardedSolution(value=value, solver=step.name,
                                       degraded=degraded,
                                       attempts=attempts,
                                       failures=failures,
                                       diagnosis=diagnosis)
            failures[step.name] = reason
            if salvage is None and _finite(value):
                # Keep the first finite-but-flawed result as a last
                # resort: a labeled approximation beats an exception.
                salvage = GuardedSolution(value=value, solver=step.name,
                                          degraded=True,
                                          diagnosis=diagnosis)
        if salvage is not None:
            salvage.attempts = attempts
            salvage.failures = dict(failures)
            return salvage
        raise ConvergenceError(
            "every solver in the fallback chain failed: "
            + "; ".join(f"{n}: {r}" for n, r in failures.items()))


def guarded_miner_equilibrium(params: Any, prices: Any,
                              guard: Optional[SolverGuard] = None,
                              **solver_kwargs: Any) -> GuardedSolution:
    """Miner-stage solve with the default fallback chain.

    Chain: mode-appropriate best-response solver (the paper's algorithm)
    -> extragradient on the VI (assumption-light, slower) -> closed-form
    homogeneous approximation (always finite, exact only for homogeneous
    games in the covered regimes).
    """
    from ..core.gnep import (solve_standalone_equilibrium,
                             solve_standalone_extragradient)
    from ..core.nep import MinerEquilibrium, solve_connected_equilibrium
    from ..core.params import EdgeMode

    guard = guard or SolverGuard()
    steps: List[FallbackStep] = []
    if params.mode is EdgeMode.STANDALONE:
        steps.append(FallbackStep(
            "gnep-decomposition",
            lambda: solve_standalone_equilibrium(params, prices,
                                                 **solver_kwargs)))
        steps.append(FallbackStep(
            "vi-extragradient",
            lambda: solve_standalone_extragradient(params, prices)))
    else:
        steps.append(FallbackStep(
            "nep-best-response",
            lambda: solve_connected_equilibrium(params, prices,
                                                **solver_kwargs)))
        steps.append(FallbackStep(
            "nep-damped",
            lambda: solve_connected_equilibrium(params, prices,
                                                damping=0.5)))

    def closed_form() -> "MinerEquilibrium":
        from ..core.homogeneous_demand import homogeneous_demand
        from ..game.diagnostics import ConvergenceReport
        demand = homogeneous_demand(params, prices)
        n = params.n
        report = ConvergenceReport(
            converged=True, iterations=0, residual=0.0, tolerance=0.0,
            message="closed-form homogeneous approximation (fallback)")
        return MinerEquilibrium(
            e=np.full(n, demand.e), c=np.full(n, demand.c),
            params=params, prices=prices, report=report, nu=demand.nu)

    steps.append(FallbackStep("closed-form", closed_form))
    return guard.run(steps)


def guarded_stackelberg(params: Any,
                        guard: Optional[SolverGuard] = None,
                        **solver_kwargs: Any) -> GuardedSolution:
    """Leader-stage solve with the default fallback chain.

    Chain: the anticipating scheme (Theorem 4; the library default) ->
    damped best-response (Algorithm 1/2 with damping 0.5, which settles
    the reaction-curve jump instead of cycling on it).
    """
    from ..core.stackelberg import solve_stackelberg

    guard = guard or SolverGuard()
    steps = [
        FallbackStep("stackelberg-anticipating",
                     lambda: solve_stackelberg(params, **solver_kwargs)),
        FallbackStep("stackelberg-damped-br",
                     lambda: solve_stackelberg(params,
                                               scheme="best-response",
                                               damping=0.5)),
    ]
    return guard.run(steps)
