"""Retry-aware dispatch: transactional provider calls with backoff.

:class:`ResilientDispatcher` extends the plain
:class:`~repro.offloading.dispatcher.Dispatcher` with a
:class:`~repro.resilience.retry.RetryPolicy`. A dispatch attempt that dies
on a :class:`~repro.exceptions.TransientProviderError` is *rolled back* —
provider ledgers and the standalone admission load are restored from a
snapshot — before the retry, so billing stays exact no matter where inside
the two-provider sequence the failure struck. When the attempt budget is
exhausted the request is degraded to a zero-unit ``FAILED`` allocation
instead of aborting the whole round (graceful degradation); the drop is
recorded in :attr:`failed_requests` for the degradation report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..offloading.dispatcher import Dispatcher
from ..offloading.request import (Allocation, ResourceRequest,
                                  ResponseStatus)
from ..telemetry import TELEMETRY as _TEL
from .retry import RetryOutcome, RetryPolicy, retry_call

__all__ = ["ResilientDispatcher", "DispatchStats"]


@dataclass
class _Snapshot:
    edge_units_sold: float
    edge_revenue: float
    edge_load: float
    cloud_units_sold: float
    cloud_revenue: float


@dataclass
class DispatchStats:
    """Retry/degradation counters accumulated across dispatches."""

    dispatches: int = 0
    retries: int = 0
    failed_requests: int = 0
    total_backoff: float = 0.0


def _unwrap(provider: Any) -> Any:
    """Reach the billing provider through any fault-injection wrapper."""
    return getattr(provider, "inner", provider)


class ResilientDispatcher(Dispatcher):
    """A :class:`Dispatcher` that retries transient provider failures.

    Args:
        edge: The ESP (possibly a
            :class:`~repro.resilience.providers.FaultyEdgeProvider`).
        cloud: The CSP (possibly a
            :class:`~repro.resilience.providers.FaultyCloudProvider`).
        policy: Backoff/attempt budget for transient failures.
        seed: Seed for the jitter schedules (one sub-seed per dispatch,
            so schedules are independent yet reproducible).
        sleep: Optional real sleep function (delays are virtual by
            default).
    """

    def __init__(self, edge: Any, cloud: Any,
                 policy: Optional[RetryPolicy] = None,
                 seed: int = 0,
                 sleep: Optional[Callable[[float], None]] = None) -> None:
        super().__init__(edge, cloud)
        self.policy = policy or RetryPolicy()
        self.stats = DispatchStats()
        self.failed_requests: List[int] = []
        self._seed = seed
        self._sleep = sleep
        self._dispatch_counter = 0

    def _snapshot(self) -> _Snapshot:
        edge = _unwrap(self.edge)
        cloud = _unwrap(self.cloud)
        return _Snapshot(
            edge_units_sold=edge.account.units_sold,
            edge_revenue=edge.account.revenue,
            edge_load=edge.load,
            cloud_units_sold=cloud.account.units_sold,
            cloud_revenue=cloud.account.revenue)

    def _rollback(self, snap: _Snapshot) -> None:
        edge = _unwrap(self.edge)
        cloud = _unwrap(self.cloud)
        edge.account.units_sold = snap.edge_units_sold
        edge.account.revenue = snap.edge_revenue
        edge._load = snap.edge_load
        cloud.account.units_sold = snap.cloud_units_sold
        cloud.account.revenue = snap.cloud_revenue

    def dispatch(self, request: ResourceRequest) -> Allocation:
        """Dispatch one request, retrying transient provider failures.

        Each attempt is transactional: any billing performed before the
        failing call is rolled back, so a retried request is never
        double-charged. After the final failed attempt the request
        degrades to a zero-unit ``FAILED`` allocation.
        """
        self.stats.dispatches += 1
        self._dispatch_counter += 1
        snap = self._snapshot()

        def attempt() -> Allocation:
            return super(ResilientDispatcher, self).dispatch(request)

        def roll_back(attempt_no: int, error: BaseException) -> None:
            self._rollback(snap)

        outcome: RetryOutcome = retry_call(
            attempt, self.policy,
            seed=self._seed + self._dispatch_counter,
            sleep=self._sleep, on_retry=roll_back, swallow=True)
        self.stats.retries += outcome.retries
        self.stats.total_backoff += outcome.total_delay
        if _TEL.enabled:
            _TEL.metrics.counter("dispatch_total",
                                 "Resource-request dispatches").inc()
        if outcome.succeeded:
            return outcome.value
        self.stats.failed_requests += 1
        self.failed_requests.append(request.miner_id)
        if _TEL.enabled:
            _TEL.metrics.counter(
                "dispatch_degraded_total",
                "Requests degraded to zero-unit FAILED allocations"
            ).inc()
            _TEL.emit("dispatch.degraded", miner_id=request.miner_id,
                      attempts=outcome.attempts)
        return Allocation(request=request, status=ResponseStatus.FAILED,
                          edge_units=0.0, cloud_units=0.0,
                          edge_charge=0.0, cloud_charge=0.0)
