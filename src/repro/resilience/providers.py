"""Fault-injecting provider wrappers.

:class:`FaultyEdgeProvider` and :class:`FaultyCloudProvider` wrap the real
:class:`~repro.offloading.provider.EdgeProvider` /
:class:`~repro.offloading.provider.CloudProvider` and expose the exact same
surface, so they slot into the existing
:class:`~repro.offloading.dispatcher.Dispatcher` unchanged. Every fault is
applied *before* the inner provider bills anything, which is what makes the
retry layer safe: a failed call leaves the ledgers untouched.
"""

from __future__ import annotations

from typing import Any

from ..exceptions import TransientProviderError
from ..offloading.provider import CloudProvider, EdgeProvider
from .faults import FaultInjector

__all__ = ["FaultyEdgeProvider", "FaultyCloudProvider"]


class _FaultyBase:
    """Delegating wrapper: unknown attributes fall through to ``inner``."""

    def __init__(self, inner: Any,
                 injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class FaultyEdgeProvider(_FaultyBase):
    """An ESP whose behaviour is perturbed by a :class:`FaultInjector`.

    * During an :class:`~repro.resilience.faults.EspOutage` window the
      provider behaves as fully unavailable: connected-mode requests all
      transfer to the CSP, standalone-mode requests are all rejected —
      both flow through the normal dispatcher paths.
    * Under :class:`~repro.resilience.faults.CapacityDegradation` the
      standalone admission check runs against the degraded capacity and
      the connected satisfaction probability is scaled down.
    * Active :class:`~repro.resilience.faults.TransientFaults` targeting
      the ESP make calls raise
      :class:`~repro.exceptions.TransientProviderError` before billing.
    """

    def __init__(self, inner: EdgeProvider,
                 injector: FaultInjector) -> None:
        super().__init__(inner, injector)

    @property
    def standalone(self) -> bool:
        return self.inner.standalone

    @property
    def load(self) -> float:
        return self.inner.load

    @property
    def remaining_capacity(self) -> float:
        if self.inner.capacity is None:
            return float("inf")
        degraded = self.inner.capacity * self.injector.capacity_factor()
        return max(degraded - self.inner.load, 0.0)

    def reset_epoch(self) -> None:
        self.inner.reset_epoch()

    def _check_transient(self, operation: str) -> None:
        if self.injector.transient_failure("esp"):
            raise TransientProviderError(
                f"ESP {operation} failed transiently", provider="esp",
                operation=operation)

    def sample_satisfaction(self) -> bool:
        if self.injector.esp_down():
            return False
        self._check_transient("sample_satisfaction")
        satisfied = self.inner.sample_satisfaction()
        factor = self.injector.capacity_factor()
        if satisfied and factor < 1.0:
            # Degraded connected-mode ESP: thin the satisfaction rate to
            # factor * h with an extra (injector-seeded) Bernoulli draw.
            satisfied = self.injector.bernoulli(factor)
        return satisfied

    def try_admit(self, units: float) -> bool:
        if self.injector.esp_down():
            return False
        self._check_transient("try_admit")
        if units > self.remaining_capacity + 1e-12:
            return False
        return self.inner.try_admit(units)

    def admit(self, units: float) -> float:
        if self.injector.esp_down():
            raise TransientProviderError(
                "ESP admit during outage", provider="esp",
                operation="admit")
        self._check_transient("admit")
        return self.inner.admit(units)


class FaultyCloudProvider(_FaultyBase):
    """A CSP with transient provisioning failures and latency spikes.

    The CSP never runs out of capacity, so its faults are transient call
    failures (retried upstream) and latency spikes, which inflate the
    effective delay — exposed via :attr:`effective_d_avg` and
    :meth:`effective_fork_rate` for the market layer to consume.
    """

    def __init__(self, inner: CloudProvider,
                 injector: FaultInjector) -> None:
        super().__init__(inner, injector)

    @property
    def effective_d_avg(self) -> float:
        """``D_avg`` with any active latency spike applied."""
        return self.inner.d_avg * self.injector.latency_factor()

    def effective_fork_rate(self, base: float) -> float:
        """Fork rate under the active latency spike.

        Compounds the per-exposure orphaning probability over a
        ``factor``-times longer window: ``1 - (1 - base)**factor``. The
        result stays in ``[base, 1)`` for ``factor >= 1``.
        """
        factor = self.injector.latency_factor()
        # Exact no-fault / no-fork fast path. # repro: noqa[RPR002]
        if factor == 1.0 or base == 0.0:  # repro: noqa[RPR002]
            return base
        return min(1.0 - (1.0 - base) ** factor, 1.0 - 1e-9)

    def provision(self, units: float) -> float:
        if self.injector.transient_failure("csp"):
            raise TransientProviderError(
                "CSP provision failed transiently", provider="csp",
                operation="provision")
        return self.inner.provision(units)
