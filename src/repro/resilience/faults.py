"""Fault-injection scenario DSL and the seeded injector that executes it.

Real edge-resource markets fail in ways the paper's clean model does not
represent: the ESP drops off the network for a while, the CSP's WAN path
degrades and inflates the effective delay (hence the fork rate), capacity
shrinks under contention, and individual provisioning calls time out.
A :class:`FaultPlan` declares such a scenario as data; a
:class:`FaultInjector` executes it deterministically (seeded RNG, round
counter) and records every fault that actually fired so a
:class:`~repro.resilience.degradation.DegradationReport` can name them.

Time is measured in *market rounds* (one block / one provisioning epoch);
windows are half-open ``[start, stop)`` with ``stop=None`` meaning "until
the end of the run".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError
from ..telemetry import TELEMETRY as _TEL

__all__ = ["EspOutage", "CspLatencySpike", "CapacityDegradation",
           "TransientFaults", "FaultSpec", "FaultPlan", "FaultEvent",
           "FaultInjector"]


def _check_window(start: int, stop: Optional[int]) -> None:
    if start < 0:
        raise ConfigurationError(f"fault window start must be >= 0, "
                                 f"got {start}")
    if stop is not None and stop <= start:
        raise ConfigurationError(
            f"fault window must be non-empty, got [{start}, {stop})")


def _active(start: int, stop: Optional[int], rnd: int) -> bool:
    return rnd >= start and (stop is None or rnd < stop)


@dataclass(frozen=True)
class EspOutage:
    """The ESP is unreachable during ``[start, stop)``.

    A connected-mode ESP satisfies nothing (every edge request transfers
    to the CSP); a standalone ESP rejects everything. An outage covering
    the whole run is the ``P_e -> inf`` limit the degradation layer
    recomputes the all-cloud equilibrium for.
    """

    start: int = 0
    stop: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)


@dataclass(frozen=True)
class CspLatencySpike:
    """The CSP's communication delay is inflated during ``[start, stop)``.

    ``factor >= 1`` multiplies the effective ``D_avg``; the induced fork
    rate inflates as ``beta' = 1 - (1 - beta)**factor`` (independent
    per-unit-time orphaning compounded over a ``factor``-times longer
    exposure window), which keeps ``beta'`` in ``[beta, 1)``.
    """

    start: int = 0
    stop: Optional[int] = None
    factor: float = 2.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        if self.factor < 1.0:
            raise ConfigurationError(
                f"latency spike factor must be >= 1, got {self.factor}")


@dataclass(frozen=True)
class CapacityDegradation:
    """The ESP serves only ``factor`` of its nominal capacity.

    Standalone mode: the admission check runs against ``factor * E_max``.
    Connected mode: the satisfaction probability is scaled to
    ``factor * h`` (the overloaded ESP transfers more often).
    """

    start: int = 0
    stop: Optional[int] = None
    factor: float = 0.5

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        if not 0.0 <= self.factor <= 1.0:
            raise ConfigurationError(
                f"capacity factor must be in [0, 1], got {self.factor}")


@dataclass(frozen=True)
class TransientFaults:
    """Individual provider calls fail with probability ``rate``.

    ``target`` selects which side fails: ``"esp"``, ``"csp"``, or
    ``"both"``. Failures raise
    :class:`~repro.exceptions.TransientProviderError` *before* any billing
    happens, so a retried call never double-charges.
    """

    rate: float
    target: str = "csp"
    start: int = 0
    stop: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.stop)
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(
                f"transient fault rate must be in [0, 1], got {self.rate}")
        if self.target not in ("esp", "csp", "both"):
            raise ConfigurationError(
                f"target must be 'esp', 'csp' or 'both', got {self.target!r}")


FaultSpec = Union[EspOutage, CspLatencySpike, CapacityDegradation,
                  TransientFaults]


@dataclass(frozen=True)
class FaultPlan:
    """A declarative chaos scenario: which faults, when, and the seed.

    The plan is immutable data; all execution state (round counter, RNG,
    fired events) lives in the :class:`FaultInjector` so one plan can be
    replayed any number of times — two injectors built from the same plan
    produce identical fault sequences.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, (EspOutage, CspLatencySpike,
                                  CapacityDegradation, TransientFaults)):
                raise ConfigurationError(
                    f"unknown fault spec {type(f).__name__}")

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """The empty plan: nothing ever fails."""
        return cls(faults=(), seed=seed)

    def esp_down_for_all(self, n_rounds: int) -> bool:
        """Whether an outage keeps the ESP dark for all ``n_rounds``."""
        return any(isinstance(f, EspOutage) and f.start == 0
                   and (f.stop is None or f.stop >= n_rounds)
                   for f in self.faults)


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (recorded once per round and kind)."""

    round: int
    kind: str
    description: str

    def __str__(self) -> str:
        return f"[round {self.round}] {self.kind}: {self.description}"


class FaultInjector:
    """Executes a :class:`FaultPlan`: answers provider queries, rolls the
    transient-failure dice, advances the round clock, and records events.

    Determinism: the transient draws come from a private
    ``np.random.default_rng(plan.seed)``, so the same plan and the same
    sequence of provider calls reproduce the same faults bit-for-bit.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._round = 0
        self._events: List[FaultEvent] = []
        self._seen: Set[Tuple[int, str]] = set()

    @property
    def round(self) -> int:
        """Current market round (starts at 0)."""
        return self._round

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """Every fault fired so far, in firing order."""
        return tuple(self._events)

    def advance_round(self) -> None:
        """Move the scenario clock to the next market round."""
        self._round += 1

    def reset(self) -> None:
        """Restart the scenario (round 0, fresh RNG, cleared events)."""
        self._rng = np.random.default_rng(self.plan.seed)
        self._round = 0
        self._events = []
        self._seen = set()

    def _record(self, kind: str, description: str) -> None:
        key = (self._round, kind)
        if key in self._seen:
            return
        self._seen.add(key)
        self._events.append(FaultEvent(round=self._round, kind=kind,
                                       description=description))
        if _TEL.enabled:
            _TEL.metrics.counter("faults_injected_total",
                                 "Fault events fired by the injector",
                                 labels={"kind": kind}).inc()
            _TEL.emit("fault.injected", fault=kind, round=self._round,
                      description=description)

    # ----------------------------------------------------------------- #
    # Queries the faulty providers ask.
    # ----------------------------------------------------------------- #

    def esp_down(self) -> bool:
        """Whether an ESP outage window covers the current round."""
        for f in self.plan.faults:
            if isinstance(f, EspOutage) and _active(f.start, f.stop,
                                                    self._round):
                self._record("esp-outage",
                             f"ESP unreachable (window [{f.start}, "
                             f"{'end' if f.stop is None else f.stop}))")
                return True
        return False

    def capacity_factor(self) -> float:
        """Fraction of nominal ESP capacity available this round."""
        factor = 1.0
        for f in self.plan.faults:
            if isinstance(f, CapacityDegradation) and _active(
                    f.start, f.stop, self._round):
                factor = min(factor, f.factor)
        if factor < 1.0:
            self._record("capacity-degradation",
                         f"ESP capacity degraded to {factor:.0%}")
        return factor

    def latency_factor(self) -> float:
        """Multiplier on the CSP's effective communication delay."""
        factor = 1.0
        for f in self.plan.faults:
            if isinstance(f, CspLatencySpike) and _active(
                    f.start, f.stop, self._round):
                factor = max(factor, f.factor)
        if factor > 1.0:
            self._record("csp-latency-spike",
                         f"CSP delay inflated {factor:.2f}x")
        return factor

    def bernoulli(self, p: float) -> bool:
        """One seeded Bernoulli draw (used for degraded satisfaction)."""
        return bool(self._rng.random() < p)

    def transient_failure(self, target: str) -> bool:
        """Roll the dice: does this provider call fail transiently?

        ``target`` is ``"esp"`` or ``"csp"`` (the calling side). One RNG
        draw is consumed per matching active fault spec, so the draw
        sequence — and therefore the whole scenario — is reproducible.
        """
        failed = False
        for f in self.plan.faults:
            if not isinstance(f, TransientFaults):
                continue
            if f.target not in (target, "both"):
                continue
            if not _active(f.start, f.stop, self._round):
                continue
            if bool(self._rng.random() < f.rate):
                self._record(f"transient-{target}",
                             f"{target.upper()} call failed transiently "
                             f"(rate {f.rate:g})")
                failed = True
        return failed
