"""Resilience layer: fault injection, retry/backoff, solver guards, and
graceful degradation across the offloading pipeline.

The paper's premise is that edge resources are scarce and *unreliable*
relative to the cloud; this package makes those failure modes first-class
and testable:

* :class:`FaultPlan` / :class:`FaultInjector` — a seeded scenario DSL
  (ESP outage windows, CSP latency spikes, capacity degradation,
  transient call failures) executed deterministically;
* :class:`FaultyEdgeProvider` / :class:`FaultyCloudProvider` — wrappers
  that apply the plan while exposing the unchanged provider surface;
* :class:`RetryPolicy` / :func:`retry_call` — exponential backoff with
  decorrelated jitter, used by :class:`ResilientDispatcher` for
  transactional, never-double-billed retries;
* :class:`SolverGuard` — NaN/divergence/oscillation detection and
  declarative fallback chains around the equilibrium solvers;
* :class:`DegradationReport` / :func:`run_resilient_pipeline` — the
  labeled, reproducible chaos run: same plan + seed, same report.
"""

from .degradation import DegradationReport, all_cloud_equilibrium
from .dispatcher import DispatchStats, ResilientDispatcher
from .faults import (CapacityDegradation, CspLatencySpike, EspOutage,
                     FaultEvent, FaultInjector, FaultPlan, TransientFaults)
from .guard import (FallbackStep, GuardedSolution, SolverGuard,
                    guarded_miner_equilibrium, guarded_stackelberg)
from .pipeline import (PipelineOutcome, ResilientMarket,
                       run_resilient_pipeline)
from .providers import FaultyCloudProvider, FaultyEdgeProvider
from .retry import RetryOutcome, RetryPolicy, retry_call

__all__ = [
    "DegradationReport",
    "all_cloud_equilibrium",
    "DispatchStats",
    "ResilientDispatcher",
    "CapacityDegradation",
    "CspLatencySpike",
    "EspOutage",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "TransientFaults",
    "FallbackStep",
    "GuardedSolution",
    "SolverGuard",
    "guarded_miner_equilibrium",
    "guarded_stackelberg",
    "PipelineOutcome",
    "ResilientMarket",
    "run_resilient_pipeline",
    "FaultyCloudProvider",
    "FaultyEdgeProvider",
    "RetryOutcome",
    "RetryPolicy",
    "retry_call",
]
