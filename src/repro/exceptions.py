"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A model or solver was configured with invalid parameters.

    Raised eagerly at construction time (fail fast): e.g. a negative price,
    a fork rate outside ``[0, 1)``, or fewer than two miners.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration budget.

    The offending :class:`~repro.game.diagnostics.ConvergenceReport` is
    attached as the ``report`` attribute when available.
    """

    def __init__(self, message: str, report: object = None) -> None:
        super().__init__(message)
        self.report = report


class InfeasibleGameError(ReproError, ValueError):
    """The requested game admits no feasible/meaningful equilibrium.

    Example: prices violating the mixed-strategy condition of Theorem 3 when
    a closed-form mixed equilibrium is requested.
    """


class CapacityError(ReproError, ValueError):
    """A resource request exceeds a provider's capacity constraints."""


class TransientProviderError(ReproError, RuntimeError):
    """A provider call failed for a (presumably) transient reason.

    Raised by the fault-injecting providers in :mod:`repro.resilience` and
    retried by :class:`~repro.resilience.ResilientDispatcher`. The failing
    provider (``"esp"``/``"csp"``) and operation are attached so retry
    bookkeeping and :class:`~repro.resilience.DegradationReport` entries can
    name the fault precisely.
    """

    def __init__(self, message: str, provider: str = "unknown",
                 operation: str = "unknown") -> None:
        super().__init__(message)
        self.provider = provider
        self.operation = operation
