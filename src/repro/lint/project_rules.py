"""Interprocedural rules over the whole-program :class:`ProjectIndex`.

These rules see what the per-file engine cannot: state shared across
methods (RPR010/RPR011), seeds and solver seams flowing across call
edges (RPR012/RPR013), and blocking work reached *transitively* from
an async handler (the project-level form of RPR009).  Each rule is a
:class:`ProjectRule` with a single ``check(index)`` generator;
:func:`analyze_project` builds the index from paths, applies the
config's select/ignore sets and the ordinary ``# repro: noqa[...]``
suppressions, and returns sorted findings.
"""

from __future__ import annotations

import ast
from typing import (Dict, FrozenSet, Iterator, List, Optional, Sequence,
                    Set, Tuple, Type, Union)

from pathlib import Path

from .engine import Finding, LintConfig
from .project import (CallSite, ClassInfo, FunctionInfo, ProjectIndex,
                      build_project, infer_lock_discipline)

__all__ = [
    "ProjectRule",
    "LockDisciplineViolation",
    "LockOrderCycle",
    "UnseededSolverRNG",
    "DroppedSolverSeam",
    "TransitiveBlockingInAsync",
    "PROJECT_RULES",
    "project_rule_catalog",
    "analyze_project",
]

#: Module-path segments that identify solver code for RPR012 scoping.
_SOLVER_SEGMENTS = frozenset({"core", "game", "kernels"})

#: Serving entry points whose whole call closure must be deterministic.
_SERVING_ROOTS = (("ServingEngine", "serve"),
                  ("ServingEngine", "serve_batch"))


def _module_segments(fn: FunctionInfo) -> FrozenSet[str]:
    return frozenset(fn.module.name.split("."))


def _solver_roots(index: ProjectIndex) -> List[FunctionInfo]:
    """Entry points whose forward closure is the determinism scope:
    ``solve_*`` in core/game/kernels plus the serving engine."""
    roots: List[FunctionInfo] = []
    for fn in index.functions.values():
        if (fn.name.startswith("solve_")
                and _module_segments(fn) & _SOLVER_SEGMENTS):
            roots.append(fn)
        elif (fn.class_name, fn.name) in _SERVING_ROOTS:
            roots.append(fn)
    return roots


def _passes_param(site: CallSite, callee: FunctionInfo,
                  param: str) -> bool:
    """Whether the call site supplies ``param`` to the callee."""
    if param in site.keywords or site.has_star_kwargs:
        return True
    if any(isinstance(a, ast.Starred) for a in site.node.args):
        return True
    if param in callee.params:
        index = callee.params.index(param)
        if index < len(site.node.args):
            return True
    return False


def _finding(rule: "ProjectRule", fn: FunctionInfo, node: ast.AST,
             message: str) -> Optional[Finding]:
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    if fn.module.suppressed(rule.id, line):
        return None
    symbol = fn.qualname
    return Finding(rule_id=rule.id, message=message,
                   path=fn.module.path, line=line, col=col,
                   severity=rule.severity, symbol=symbol)


class ProjectRule:
    """Base class for whole-program rules.

    Unlike :class:`repro.lint.engine.Rule` (per-node hooks inside one
    file), a project rule receives the entire :class:`ProjectIndex`
    and yields findings anywhere in the tree.
    """

    id: str = "RPR000"
    name: str = "project-rule"
    severity: str = "error"
    description: str = ""
    rationale: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        raise NotImplementedError


class LockDisciplineViolation(ProjectRule):
    """RPR010: guarded attribute touched outside ``self._lock``."""

    id = "RPR010"
    name = "lock-discipline"
    severity = "error"
    description = ("Method touches a lock-guarded attribute outside "
                   "`with self._lock:`.")
    rationale = ("Which attributes a class's lock guards is inferred "
                 "from the majority of accesses; the minority unlocked "
                 "access is almost always the bug — a torn read or a "
                 "check-then-act race against every locked writer.")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for qualname in sorted(index.classes):
            cls = index.classes[qualname]
            if not cls.lock_attrs:
                continue
            discipline = infer_lock_discipline(index, cls)
            for violation in discipline.violations:
                locked, total = discipline.guarded[violation.attr]
                verb = "writes" if violation.is_write else "reads"
                finding = _finding(
                    self, violation.method, violation.node,
                    f"{cls.name}.{violation.method.name} {verb} "
                    f"`self.{violation.attr}` outside the lock, but "
                    f"{locked}/{total} accesses of it are under "
                    f"`with self.{sorted(cls.lock_attrs)[0]}:`")
                if finding is not None:
                    yield finding


def _acquires_lock(fn: FunctionInfo, cls: ClassInfo) -> bool:
    """Whether the method body lexically takes ``with self.<lock>:``."""
    for node in ast.walk(fn.node):
        if isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if (isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in cls.lock_attrs):
                    return True
    return False


class LockOrderCycle(ProjectRule):
    """RPR011: cyclic lock-acquisition order between classes."""

    id = "RPR011"
    name = "lock-order-cycle"
    severity = "error"
    description = ("Two lock-owning classes acquire each other's locks "
                   "in opposite orders on some call path.")
    rationale = ("If thread 1 holds A's lock and calls into a "
                 "lock-taking method of B while thread 2 holds B's "
                 "lock and calls into A, the process deadlocks.  The "
                 "acquisition graph must stay acyclic.")

    def _edges(self, index: ProjectIndex
               ) -> Dict[str, List[Tuple[str, CallSite]]]:
        edges: Dict[str, List[Tuple[str, CallSite]]] = {}
        for _, sites in index.call_graph.all_callers():
            for site in sites:
                if not site.under_lock or site.callee is None:
                    continue
                owner = site.caller.owner_qualname
                target = site.callee.owner_qualname
                if owner is None or target is None or owner == target:
                    continue
                target_cls = index.classes.get(target)
                if target_cls is None or not target_cls.lock_attrs:
                    continue
                if not _acquires_lock(site.callee, target_cls):
                    continue
                edges.setdefault(owner, []).append((target, site))
        return edges

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        edges = self._edges(index)
        reported: Set[FrozenSet[str]] = set()
        for start in sorted(edges):
            stack: List[Tuple[str, Tuple[str, ...]]] = [
                (start, (start,))]
            while stack:
                node, path = stack.pop()
                for target, site in edges.get(node, ()):
                    if target == start:
                        cycle = frozenset(path)
                        if cycle in reported:
                            continue
                        reported.add(cycle)
                        names = " -> ".join(
                            index.classes[q].name
                            for q in path + (start,))
                        finding = _finding(
                            self, site.caller, site.node,
                            f"lock-order cycle: {names}; a thread "
                            f"holding one lock can deadlock against "
                            f"a thread holding the other")
                        if finding is not None:
                            yield finding
                    elif target not in path:
                        stack.append((target, path + (target,)))


def _is_default_rng_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return isinstance(func, ast.Attribute) and \
        func.attr == "default_rng"


def _rng_seed_expr(node: ast.Call) -> Optional[ast.expr]:
    """The seed expression of a ``default_rng`` call, None if omitted."""
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "seed":
            return kw.value
    return None


def _seed_passthrough_params(fn: FunctionInfo) -> FrozenSet[str]:
    """Parameters that the body feeds into ``default_rng(<param>)``."""
    names: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call) and _is_default_rng_call(node):
            seed = _rng_seed_expr(node)
            if isinstance(seed, ast.Name) and seed.id in fn.params:
                names.add(seed.id)
    return frozenset(names)


class UnseededSolverRNG(ProjectRule):
    """RPR012: unseeded/global RNG reachable from a solver entry."""

    id = "RPR012"
    name = "unseeded-solver-rng"
    severity = "error"
    description = ("A function reachable from a solver or serving "
                   "entry point consumes unseeded or global RNG "
                   "state, or a call site omits the seed that the "
                   "callee would otherwise feed into default_rng.")
    rationale = ("Equilibrium outputs must be bit-identical across "
                 "runs — caching, coalescing, and the control plane's "
                 "verify step all compare results.  One unseeded "
                 "generator anywhere in the closure breaks "
                 "reproducibility invisibly.")

    _GLOBAL_SAMPLERS = frozenset({
        "random", "uniform", "normal", "standard_normal", "rand",
        "randn", "randint", "choice", "shuffle", "permutation",
        "lognormal", "exponential", "seed"})

    def _local_findings(self, fn: FunctionInfo
                        ) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            if _is_default_rng_call(node):
                seed = _rng_seed_expr(node)
                if seed is None or (isinstance(seed, ast.Constant)
                                    and seed.value is None):
                    yield (node,
                           "default_rng() without a seed on a "
                           "solver-reachable path; thread an explicit "
                           "seed through the call chain")
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in self._GLOBAL_SAMPLERS
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")):
                yield (node,
                       f"global numpy RNG `{func.value.value.id}."
                       f"random.{func.attr}` on a solver-reachable "
                       f"path; use a seeded default_rng Generator")

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        roots = [fn.qualname for fn in _solver_roots(index)]
        reachable = index.call_graph.reachable_from(roots)
        for qualname in sorted(reachable):
            fn = index.functions.get(qualname)
            if fn is None:
                continue
            for node, message in self._local_findings(fn):
                finding = _finding(self, fn, node, message)
                if finding is not None:
                    yield finding
            # Call sites that drop an optional seed the callee would
            # forward into default_rng: the callee then falls back to
            # default_rng(None) — OS entropy — on this path.
            for site in index.call_graph.sites_from(qualname):
                callee = site.callee
                if callee is None:
                    continue
                for param in _seed_passthrough_params(callee):
                    default = callee.defaults.get(param)
                    if not (isinstance(default, ast.Constant)
                            and default.value is None):
                        continue
                    if _passes_param(site, callee, param):
                        continue
                    finding = _finding(
                        self, fn, site.node,
                        f"call to {callee.name}() omits `{param}`, "
                        f"whose None default becomes default_rng(None)"
                        f" — nondeterministic on a solver-reachable "
                        f"path")
                    if finding is not None:
                        yield finding


class DroppedSolverSeam(ProjectRule):
    """RPR013: caller declares tol/max_iter/kernel but drops it."""

    id = "RPR013"
    name = "dropped-solver-seam"
    severity = "error"
    description = ("A function declaring a `tol`/`max_iter`/`kernel` "
                   "parameter calls a solver accepting the same "
                   "parameter without forwarding it.")
    rationale = ("A seam parameter that dies between the API and the "
                 "inner solve means callers believe they control the "
                 "tolerance or kernel when the default silently wins; "
                 "RPR004/RPR006 check signatures per file, this "
                 "checks the hand-off itself across modules.")

    _SEAMS = ("tol", "max_iter", "kernel")

    @staticmethod
    def _loaded_names(fn: FunctionInfo) -> FrozenSet[str]:
        return frozenset(
            node.id for node in ast.walk(fn.node)
            if isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load))

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        for qualname, sites in index.call_graph.all_callers():
            caller = index.functions.get(qualname)
            if caller is None:
                continue
            # A seam is *dropped* only when the caller never reads the
            # parameter: the value dies in the signature.  A caller
            # that consumes `tol` itself (e.g. as an acceptance
            # threshold, like the control-plane verifiers) merely
            # shares the name with the solver seam.
            loaded = self._loaded_names(caller)
            seams = [s for s in self._SEAMS
                     if s in caller.params and s not in loaded]
            if not seams:
                continue
            for site in sites:
                callee = site.callee
                if callee is None or not (
                        callee.name.startswith("solve_")
                        or callee.name.startswith("_solve")):
                    continue
                for seam in seams:
                    if seam not in callee.params:
                        continue
                    if _passes_param(site, callee, seam):
                        continue
                    finding = _finding(
                        self, caller, site.node,
                        f"{caller.name}() accepts `{seam}` but calls "
                        f"{callee.name}() without forwarding it; the "
                        f"callee's default silently overrides the "
                        f"caller's value")
                    if finding is not None:
                        yield finding


class TransitiveBlockingInAsync(ProjectRule):
    """RPR009 (project form): async handler transitively blocks."""

    id = "RPR009"
    name = "blocking-call-in-async"
    severity = "error"
    description = ("An async def in the service layer reaches "
                   "time.sleep/file I/O through the call graph, even "
                   "though no blocking call is lexically inline.")
    rationale = ("The event loop does not care how deep the stack is "
                 "when the thread blocks.  The per-file rule catches "
                 "inline calls; this catches the helper three hops "
                 "down that quietly does disk I/O.")

    _IO_METHODS = frozenset({"read_text", "write_text", "read_bytes",
                             "write_bytes"})
    _OS_CALLS = frozenset({"replace", "fsync", "rename", "remove",
                           "unlink"})

    def _blocking_primitive(self, fn: FunctionInfo) -> Optional[str]:
        """Description of a lexical blocking primitive in the body."""
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                return "open()"
            if not isinstance(func, ast.Attribute):
                continue
            leaf = func.attr
            root = func.value.id if isinstance(func.value, ast.Name) \
                else None
            if root == "time" and leaf == "sleep":
                return "time.sleep()"
            if root == "requests":
                return f"requests.{leaf}()"
            if root == "os" and leaf in self._OS_CALLS:
                return f"os.{leaf}()"
            if leaf in self._IO_METHODS:
                return f".{leaf}()"
        return None

    def _blocking_map(self, index: ProjectIndex) -> Dict[str, str]:
        """qualname -> reason, for every transitively-blocking sync
        function (propagated backward through sync call edges)."""
        reasons: Dict[str, str] = {}
        for qualname, fn in index.functions.items():
            if fn.is_async:
                continue
            primitive = self._blocking_primitive(fn)
            if primitive is not None:
                reasons[qualname] = primitive
        changed = True
        while changed:
            changed = False
            for qualname, fn in index.functions.items():
                if fn.is_async or qualname in reasons:
                    continue
                for site in index.call_graph.sites_from(qualname):
                    callee = site.callee
                    if (callee is not None and not callee.is_async
                            and callee.qualname in reasons):
                        reasons[qualname] = (
                            f"{callee.name}() -> "
                            f"{reasons[callee.qualname]}")
                        changed = True
                        break
        return reasons

    def check(self, index: ProjectIndex) -> Iterator[Finding]:
        reasons = self._blocking_map(index)
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            if not fn.is_async:
                continue
            if "service" not in _module_segments(fn):
                continue
            for site in index.call_graph.sites_from(qualname):
                callee = site.callee
                if (callee is None or callee.is_async
                        or callee.qualname not in reasons):
                    continue
                finding = _finding(
                    self, fn, site.node,
                    f"async {fn.name}() calls {callee.name}(), which "
                    f"transitively blocks: {callee.name}() -> "
                    f"{reasons[callee.qualname]}; run it through "
                    f"run_in_executor")
                if finding is not None:
                    yield finding


PROJECT_RULES: Tuple[Type[ProjectRule], ...] = (
    TransitiveBlockingInAsync,
    LockDisciplineViolation,
    LockOrderCycle,
    UnseededSolverRNG,
    DroppedSolverSeam,
)


def project_rule_catalog() -> List[Dict[str, str]]:
    """Machine-readable catalog of the whole-program rules."""
    return [
        {"id": r.id, "name": r.name, "severity": r.severity,
         "description": r.description, "rationale": r.rationale}
        for r in PROJECT_RULES
    ]


def analyze_project(paths: Sequence[Union[str, Path]],
                    config: Optional[LintConfig] = None
                    ) -> List[Finding]:
    """Build the project index over *paths* and run every project
    rule, honoring the config's select/ignore sets.  Findings come
    back in (path, line, col, rule) order, noqa-suppressed lines
    already removed."""
    cfg = config if config is not None else LintConfig()
    index = build_project(paths)
    findings: List[Finding] = []
    for rule_cls in PROJECT_RULES:
        if cfg.select is not None and rule_cls.id not in cfg.select:
            continue
        if rule_cls.id in cfg.ignore:
            continue
        findings.extend(rule_cls().check(index))
    return sorted(findings, key=lambda f: f.sort_key())
