"""Finding reporters: human text and machine JSON.

Two report shapes share one finding schema: the per-file report
(``render_text``/``render_json``) and the whole-program report
(``render_project_text``/``render_project_json``), which additionally
carries the project rule catalog and the baseline accounting
(suppressed/stale counts).  JSON documents are versioned; version 2
added the ``symbol`` field on findings.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

from .baseline import BaselineResult
from .engine import Finding
from .project_rules import project_rule_catalog
from .rules import rule_catalog

__all__ = [
    "render_text",
    "render_json",
    "render_project_text",
    "render_project_json",
    "summarize",
]

#: Schema version shared by both JSON reports.  2: findings gained
#: ``symbol`` (empty for per-file findings); project report added.
SCHEMA_VERSION = 2


def summarize(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Counts by rule and by severity."""
    by_rule = Counter(f.rule_id for f in findings)
    by_severity = Counter(f.severity for f in findings)
    return {
        "total": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
        "by_severity": dict(sorted(by_severity.items())),
    }


def render_text(findings: Sequence[Finding],
                statistics: bool = False) -> str:
    """One ``path:line:col: RPRxxx [severity] message`` line per
    finding, optionally followed by per-rule counts."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.severity}] "
        f"{f.message}"
        for f in findings
    ]
    if statistics and findings:
        lines.append("")
        for rule_id, count in sorted(
                Counter(f.rule_id for f in findings).items()):
            lines.append(f"{rule_id}: {count}")
    if not findings:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """Stable JSON document: findings + summary + rule catalog
    versioned for downstream tooling."""
    doc = {
        "version": SCHEMA_VERSION,
        "findings": [f.to_dict() for f in findings],
        "summary": summarize(findings),
        "rules": rule_catalog(),
    }
    return json.dumps(doc, indent=indent, sort_keys=True)


def render_project_text(findings: Sequence[Finding],
                        baseline: Optional[BaselineResult] = None,
                        statistics: bool = False) -> str:
    """Text report for the whole-program analyzer: new findings in
    the per-file format (with the symbol appended), then the baseline
    accounting."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.severity}] "
        f"{f.message} [{f.symbol}]"
        for f in findings
    ]
    if not findings:
        lines.append("no findings")
    if baseline is not None and (baseline.suppressed or baseline.stale):
        lines.append("")
        lines.append(f"baseline: {len(baseline.suppressed)} finding(s) "
                     f"suppressed, {len(baseline.stale)} stale "
                     f"entr{'y' if len(baseline.stale) == 1 else 'ies'}")
        for entry in baseline.stale:
            lines.append(f"  stale: {entry.rule} {entry.path} "
                         f"[{entry.symbol}] — fixed; prune it with "
                         f"--write-baseline")
    if statistics and findings:
        lines.append("")
        for rule_id, count in sorted(
                Counter(f.rule_id for f in findings).items()):
            lines.append(f"{rule_id}: {count}")
    return "\n".join(lines)


def render_project_json(findings: Sequence[Finding],
                        baseline: Optional[BaselineResult] = None,
                        indent: int = 2) -> str:
    """JSON report for the whole-program analyzer.  Mirrors
    :func:`render_json` (same finding schema and version) plus the
    project rule catalog and baseline accounting."""
    baseline_doc: Dict[str, Any] = {
        "suppressed": 0,
        "stale": [],
    }
    if baseline is not None:
        baseline_doc = {
            "suppressed": len(baseline.suppressed),
            "stale": [
                {"rule": e.rule, "path": e.path, "symbol": e.symbol,
                 "message": e.message,
                 "justification": e.justification}
                for e in baseline.stale
            ],
        }
    doc = {
        "version": SCHEMA_VERSION,
        "mode": "project",
        "findings": [f.to_dict() for f in findings],
        "summary": summarize(findings),
        "baseline": baseline_doc,
        "rules": project_rule_catalog(),
    }
    return json.dumps(doc, indent=indent, sort_keys=True)
