"""Finding reporters: human text and machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from .engine import Finding
from .rules import rule_catalog

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, Any]:
    """Counts by rule and by severity."""
    by_rule = Counter(f.rule_id for f in findings)
    by_severity = Counter(f.severity for f in findings)
    return {
        "total": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
        "by_severity": dict(sorted(by_severity.items())),
    }


def render_text(findings: Sequence[Finding],
                statistics: bool = False) -> str:
    """One ``path:line:col: RPRxxx [severity] message`` line per
    finding, optionally followed by per-rule counts."""
    lines: List[str] = [
        f"{f.path}:{f.line}:{f.col}: {f.rule_id} [{f.severity}] "
        f"{f.message}"
        for f in findings
    ]
    if statistics and findings:
        lines.append("")
        for rule_id, count in sorted(
                Counter(f.rule_id for f in findings).items()):
            lines.append(f"{rule_id}: {count}")
    if not findings:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """Stable JSON document: findings + summary + rule catalog
    versioned for downstream tooling."""
    doc = {
        "version": 1,
        "findings": [f.to_dict() for f in findings],
        "summary": summarize(findings),
        "rules": rule_catalog(),
    }
    return json.dumps(doc, indent=indent, sort_keys=True)
