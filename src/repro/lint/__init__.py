"""repro.lint — domain-aware AST static analysis for the solver stack.

A visitor-based rule engine over Python's :mod:`ast` with eight RPR
rules encoding the numerical conventions no general-purpose linter
checks: explicit seeded RNGs (RPR001), tolerance-based float
comparison (RPR002), zero-guarded divisions by game aggregates
(RPR003), the ``kernel``/warm-start seams on every solver entry point
(RPR004), mutable defaults (RPR005), solver determinism (RPR006),
narrow exception handling outside the resilience layer (RPR007), and
the zero-overhead telemetry contract in hot loops (RPR008).

Findings can be suppressed per line with ``# repro: noqa`` (all
rules) or ``# repro: noqa[RPR002,RPR007]`` (listed rules).  The CLI
front end is ``repro-mining lint``; see ``docs/STATIC_ANALYSIS.md``
for the rule catalog with rationale.

Usage::

    from repro.lint import lint_paths, render_text

    findings = lint_paths(["src"])
    print(render_text(findings))
"""

from __future__ import annotations

from .baseline import (Baseline, BaselineEntry, BaselineResult,
                       apply_baseline, fingerprint, load_baseline,
                       write_baseline)
from .engine import (Finding, LintConfig, LintContext, Rule,
                     iter_python_files, lint_path, lint_paths,
                     lint_source, parse_suppressions)
from .project import (CallGraph, ProjectIndex, SymbolTable,
                      build_project, infer_lock_discipline)
from .project_rules import (PROJECT_RULES, ProjectRule,
                            analyze_project, project_rule_catalog)
from .reporters import (render_json, render_project_json,
                        render_project_text, render_text, summarize)
from .rules import ALL_RULES, rule_catalog

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "Rule",
    "ALL_RULES",
    "rule_catalog",
    "lint_source",
    "lint_path",
    "lint_paths",
    "iter_python_files",
    "parse_suppressions",
    "render_text",
    "render_json",
    "render_project_text",
    "render_project_json",
    "summarize",
    # Whole-program analysis layer.
    "ProjectIndex",
    "SymbolTable",
    "CallGraph",
    "build_project",
    "infer_lock_discipline",
    "ProjectRule",
    "PROJECT_RULES",
    "project_rule_catalog",
    "analyze_project",
    # Baseline mechanism.
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]
