"""The rule engine: one AST walk per file, fanning out to every rule.

The engine owns everything rules should not have to reimplement:
file discovery, parsing, the lexical context stacks (enclosing
functions, loops, ``if`` tests), ``# repro: noqa[...]`` suppression
comments, and rule selection.  A rule is a small object with an id,
a severity, and ``on_<NodeType>`` hooks; the :class:`_Walker` visits
the tree once and dispatches each node to every interested rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, FrozenSet, Iterable, Iterator, List,
                    Optional, Sequence, Set, Tuple, Union)

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "Rule",
    "lint_source",
    "lint_path",
    "lint_paths",
    "iter_python_files",
    "parse_suppressions",
]

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR007]`` — the only
#: suppression syntax the engine honours.  Matched per physical line.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")

#: Packages whose modules hold solver/numerical code; several rules
#: scope themselves to these (see :class:`LintContext` helpers).
SOLVER_PACKAGES = ("core", "game", "kernels", "serving")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "error"
    #: Dotted name of the enclosing function/method for project-level
    #: findings; empty for per-file findings (no symbol resolution).
    symbol: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass(frozen=True)
class LintConfig:
    """Which rules run, at which severity, with which options.

    Args:
        select: When given, only these rule ids run.
        ignore: Rule ids switched off entirely.
        severities: Per-rule severity overrides (``"error"`` or
            ``"warning"``).
        rule_options: Per-rule option dictionaries merged over each
            rule's defaults (e.g. extra aggregate names for RPR003).
    """

    select: Optional[FrozenSet[str]] = None
    ignore: FrozenSet[str] = frozenset()
    severities: Dict[str, str] = field(default_factory=dict)
    rule_options: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select is not None:
            return rule_id in self.select
        return True


class LintContext:
    """Per-file state shared by the walker and every rule."""

    def __init__(self, path: Union[str, Path], source: str,
                 config: LintConfig) -> None:
        self.path = str(path)
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(self.lines)
        # Lexical stacks maintained by the walker.
        self.function_stack: List[ast.AST] = []
        self.loop_stack: List[ast.AST] = []
        self.if_test_stack: List[str] = []
        # Names assigned from a floor expression (max(...), a positive
        # constant offset); one scope set per enclosing function.
        self.floored_stack: List[Set[str]] = [set()]
        self._parts = self._module_parts()

    # -- module classification -------------------------------------
    def _module_parts(self) -> Tuple[str, ...]:
        return Path(self.path).parts

    def in_package(self, name: str) -> bool:
        """True when the file lives under a package directory *name*."""
        return name in self._parts

    @property
    def module_name(self) -> str:
        return Path(self.path).stem

    @property
    def is_test_file(self) -> bool:
        return ("tests" in self._parts
                or self.module_name.startswith("test_")
                or self.module_name.startswith("bench_")
                or self.module_name == "conftest")

    @property
    def is_bench_module(self) -> bool:
        return self.module_name.startswith("bench")

    @property
    def is_solver_module(self) -> bool:
        """Numerical solver code: core/game/kernels/serving, not bench."""
        if self.is_test_file or self.is_bench_module:
            return False
        return any(self.in_package(p) for p in SOLVER_PACKAGES)

    # -- suppression + emission ------------------------------------
    def suppressed(self, rule_id: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return not codes or rule_id in codes

    def finding(self, rule: "Rule", node: ast.AST,
                message: str) -> Optional[Finding]:
        """Build a finding for *node* unless a noqa comment covers it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressed(rule.id, line):
            return None
        severity = self.config.severities.get(rule.id, rule.severity)
        return Finding(rule_id=rule.id, message=message, path=self.path,
                       line=line, col=col, severity=severity)

    # -- convenience for rules -------------------------------------
    def unparse(self, node: ast.AST) -> str:
        try:
            return ast.unparse(node)
        except Exception:  # repro: noqa[RPR007] — best-effort rendering
            return "<expr>"

    def guarded_by(self, needle: str) -> bool:
        """Does any enclosing ``if``/``while``/ternary test mention
        *needle* (textually)?  The cheap lexical notion of "guarded"
        used by RPR003."""
        return any(needle in test for test in self.if_test_stack)

    def is_floored(self, name: str) -> bool:
        """Was *name* last assigned from a floor expression (e.g.
        ``denom = max(x, 1.0)``) in an enclosing scope?"""
        return any(name in scope for scope in self.floored_stack)


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``/``name``/``severity``/``description``/
    ``rationale`` and implement ``on_<NodeType>`` hooks returning an
    iterable of :class:`Finding` (or ``None``).  ``options`` holds
    rule-specific configuration merged with any
    :attr:`LintConfig.rule_options` entry.
    """

    id: str = "RPR000"
    name: str = "abstract-rule"
    severity: str = "error"
    description: str = ""
    rationale: str = ""
    default_options: Dict[str, Any] = {}

    def __init__(self, options: Optional[Dict[str, Any]] = None) -> None:
        merged = dict(self.default_options)
        if options:
            merged.update(options)
        self.options = merged

    def hooks(self) -> Dict[str, Any]:
        """Map node-class-name -> bound hook method."""
        out = {}
        for attr in dir(self):
            if attr.startswith("on_"):
                out[attr[3:]] = getattr(self, attr)
        return out


class _Walker(ast.NodeVisitor):
    """Single-pass dispatcher: maintains the context stacks and fans
    each node out to every rule hook registered for its type."""

    def __init__(self, ctx: LintContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        # node-class-name -> [(rule, hook), ...]
        self.dispatch: Dict[str, List[Tuple[Rule, Any]]] = {}
        for rule in rules:
            for node_name, hook in rule.hooks().items():
                self.dispatch.setdefault(node_name, []).append(
                    (rule, hook))

    def _emit(self, result: Optional[Iterable[Optional[Finding]]]) -> None:
        if result is None:
            return
        for finding in result:
            if finding is not None:
                self.findings.append(finding)

    def _fan_out(self, node: ast.AST) -> None:
        for _rule, hook in self.dispatch.get(type(node).__name__, ()):
            self._emit(hook(node, self.ctx))

    # -- traversal --------------------------------------------------
    def _visit_block(self, stmts: Sequence[ast.stmt]) -> None:
        """Visit a statement sequence, accumulating sibling guards:
        once an ``if``/``assert`` mentioning some expression has run,
        later statements in the same block count as guarded by its
        test (covers the ``if S == 0: return ...`` early-exit and the
        ``if S <= 0: S = eps`` reassignment idioms)."""
        pushed = 0
        for stmt in stmts:
            self.visit(stmt)
            self._track_assign(stmt)
            if isinstance(stmt, ast.If):
                self.ctx.if_test_stack.append(self.ctx.unparse(stmt.test))
                pushed += 1
            elif isinstance(stmt, ast.Assert):
                self.ctx.if_test_stack.append(self.ctx.unparse(stmt.test))
                pushed += 1
        for _ in range(pushed):
            self.ctx.if_test_stack.pop()

    def _visit_fields(self, node: ast.AST) -> None:
        """Visit children, routing statement lists through
        :meth:`_visit_block`."""
        for _name, value in ast.iter_fields(node):
            if isinstance(value, list):
                if value and all(isinstance(v, ast.stmt) for v in value):
                    self._visit_block(value)
                else:
                    for item in value:
                        if isinstance(item, ast.AST):
                            self.visit(item)
            elif isinstance(value, ast.AST):
                self.visit(value)

    # -- floor-assignment tracking ---------------------------------
    @staticmethod
    def _has_positive_offset(node: ast.AST) -> bool:
        """``512.0 + x`` (recursively over ``+``) is bounded away
        from zero when the rest is non-negative."""
        if not (isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Add)):
            return False
        for side in (node.left, node.right):
            if (isinstance(side, ast.Constant)
                    and isinstance(side.value, (int, float))
                    and side.value > 0):
                return True
            if _Walker._has_positive_offset(side):
                return True
        return False

    @staticmethod
    def _is_floor_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "max":
                return len(node.args) >= 2
            if isinstance(func, ast.Attribute) and func.attr == "maximum":
                return True  # np.maximum(...)
        return _Walker._has_positive_offset(node)

    def _track_assign(self, node: ast.AST) -> None:
        scope = self.ctx.floored_stack[-1]
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], None
        else:
            return
        floored = value is not None and self._is_floor_expr(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if floored:
                    scope.add(target.id)
                else:
                    scope.discard(target.id)

    # -- stack-maintaining visits ----------------------------------
    def _visit_function(self, node: ast.AST) -> None:
        self._fan_out(node)
        self.ctx.function_stack.append(node)
        self.ctx.floored_stack.append(set())
        self._visit_fields(node)
        self.ctx.floored_stack.pop()
        self.ctx.function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _visit_loop(self, node: ast.AST) -> None:
        self._fan_out(node)
        self.ctx.loop_stack.append(node)
        if isinstance(node, ast.While):
            # ``while S > 0:`` guards its own body.
            self.ctx.if_test_stack.append(self.ctx.unparse(node.test))
            self._visit_fields(node)
            self.ctx.if_test_stack.pop()
        else:
            self._visit_fields(node)
        self.ctx.loop_stack.pop()

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_If(self, node: ast.If) -> None:
        self._fan_out(node)
        test_src = self.ctx.unparse(node.test)
        # Both branches count as guarded: the else of
        # ``if S == 0: ... else: x / S`` is exactly the guarded path,
        # and the lexical needle check cannot tell polarities apart.
        self.ctx.if_test_stack.append(test_src)
        self.visit(node.test)
        self._visit_block(node.body)
        if node.orelse:
            self._visit_block(node.orelse)
        self.ctx.if_test_stack.pop()

    def visit_IfExp(self, node: ast.IfExp) -> None:
        self._fan_out(node)
        test_src = self.ctx.unparse(node.test)
        self.ctx.if_test_stack.append(test_src)
        self.visit(node.test)
        self.visit(node.body)
        self.visit(node.orelse)
        self.ctx.if_test_stack.pop()

    def visit_Assert(self, node: ast.Assert) -> None:
        self._fan_out(node)
        self.ctx.if_test_stack.append(self.ctx.unparse(node.test))
        self._visit_fields(node)
        self.ctx.if_test_stack.pop()

    def visit(self, node: ast.AST) -> None:
        method = "visit_" + type(node).__name__
        if method in type(self).__dict__:
            getattr(self, method)(node)
        else:
            self._fan_out(node)
            self._visit_fields(node)


def parse_suppressions(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Line number (1-based) -> suppressed rule ids.

    An empty frozenset means *all* rules are suppressed on that line
    (bare ``# repro: noqa``).
    """
    out: Dict[int, FrozenSet[str]] = {}
    for i, line in enumerate(lines, start=1):
        if "repro:" not in line:
            continue
        m = _NOQA_RE.search(line)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[i] = frozenset()
        else:
            out[i] = frozenset(
                c.strip() for c in codes.split(",") if c.strip())
    return out


def _active_rules(config: LintConfig) -> List[Rule]:
    # Imported here to avoid a cycle (rules import Rule from engine).
    from .rules import ALL_RULES

    rules = []
    for rule_cls in ALL_RULES:
        if config.enabled(rule_cls.id):
            rules.append(rule_cls(config.rule_options.get(rule_cls.id)))
    return rules


def lint_source(source: str, path: Union[str, Path] = "<string>",
                config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one source string; *path* drives module classification."""
    config = config if config is not None else LintConfig()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(rule_id="RPR999", severity="error",
                        message=f"syntax error: {exc.msg}",
                        path=str(path), line=exc.lineno or 1,
                        col=exc.offset or 0)]
    ctx = LintContext(path, source, config)
    walker = _Walker(ctx, _active_rules(config))
    walker.visit(tree)
    return sorted(walker.findings, key=Finding.sort_key)


def lint_path(path: Union[str, Path],
              config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), p, config)


def iter_python_files(paths: Iterable[Union[str, Path]]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files, skipping
    caches and hidden directories."""
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if any(part.startswith(".") or part == "__pycache__"
                   for part in c.parts):
                continue
            if c not in seen:
                seen.add(c)
                yield c


def lint_paths(paths: Iterable[Union[str, Path]],
               config: Optional[LintConfig] = None) -> List[Finding]:
    """Lint every python file under *paths* (files or directories)."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_path(file_path, config))
    return sorted(findings, key=Finding.sort_key)
