"""Committed-baseline support for the whole-program analyzer.

A baseline file (conventionally ``lint-baseline.json`` at the repo
root) records known findings so the project gate fails only on
*regressions*: findings not in the baseline.  Entries are matched by
``(rule, path, symbol, message)`` — deliberately without line
numbers, so unrelated edits that shift code do not invalidate the
baseline.  Each entry may carry a ``justification`` explaining why
the finding is accepted rather than fixed; ``--write-baseline``
regenerates the file from current findings while preserving the
justifications of entries that survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .engine import Finding

__all__ = [
    "BaselineEntry",
    "Baseline",
    "BaselineResult",
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

#: (rule, path, symbol, message) — line numbers intentionally absent.
Fingerprint = Tuple[str, str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    """Stable identity of a finding for baseline matching.

    Line numbers are deliberately excluded so unrelated edits that
    shift code do not invalidate baseline entries.
    """
    return (finding.rule_id, finding.path, finding.symbol,
            finding.message)


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding with its justification."""

    rule: str
    path: str
    symbol: str
    message: str
    justification: str = ""

    @property
    def key(self) -> Fingerprint:
        return (self.rule, self.path, self.symbol, self.message)


@dataclass
class Baseline:
    """The parsed baseline file."""

    entries: Dict[Fingerprint, BaselineEntry]
    path: str = ""

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class BaselineResult:
    """Outcome of matching findings against a baseline."""

    #: Findings not covered by the baseline — these gate.
    new: List[Finding]
    #: Findings matched and suppressed by the baseline.
    suppressed: List[Finding]
    #: Baseline entries with no matching finding (fixed since the
    #: baseline was written); reported non-fatally so the file gets
    #: pruned, but never failing the gate.
    stale: List[BaselineEntry]


def load_baseline(path: Union[str, Path]) -> Baseline:
    """Read a baseline file.  A missing file is an empty baseline."""
    file_path = Path(path)
    if not file_path.exists():
        return Baseline(entries={}, path=str(file_path))
    doc = json.loads(file_path.read_text(encoding="utf-8"))
    entries: Dict[Fingerprint, BaselineEntry] = {}
    for raw in doc.get("entries", []):
        entry = BaselineEntry(
            rule=str(raw["rule"]), path=str(raw["path"]),
            symbol=str(raw.get("symbol", "")),
            message=str(raw["message"]),
            justification=str(raw.get("justification", "")))
        entries[entry.key] = entry
    return Baseline(entries=entries, path=str(file_path))


def apply_baseline(findings: Sequence[Finding],
                   baseline: Baseline) -> BaselineResult:
    """Split findings into new vs. baselined, and report stale
    entries."""
    matched: Dict[Fingerprint, bool] = {
        key: False for key in baseline.entries}
    new: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if key in baseline.entries:
            matched[key] = True
            suppressed.append(finding)
        else:
            new.append(finding)
    stale = [baseline.entries[key]
             for key, seen in matched.items() if not seen]
    stale.sort(key=lambda e: e.key)
    return BaselineResult(new=new, suppressed=suppressed, stale=stale)


def write_baseline(findings: Sequence[Finding],
                   path: Union[str, Path],
                   previous: Union[Baseline, None] = None) -> Baseline:
    """Regenerate the baseline from *findings*, carrying forward the
    justification of every entry that still matches."""
    keep = previous.entries if previous is not None else {}
    entries: Dict[Fingerprint, BaselineEntry] = {}
    for finding in findings:
        key = fingerprint(finding)
        prior = keep.get(key)
        entries[key] = BaselineEntry(
            rule=finding.rule_id, path=finding.path,
            symbol=finding.symbol, message=finding.message,
            justification=prior.justification if prior is not None
            else "")
    doc = {
        "version": 1,
        "entries": [
            {"rule": e.rule, "path": e.path, "symbol": e.symbol,
             "message": e.message, "justification": e.justification}
            for e in sorted(entries.values(), key=lambda e: e.key)
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return Baseline(entries=entries, path=str(path))
