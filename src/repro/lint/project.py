"""Whole-program analysis: symbol table, call graph, lock inference.

Where :mod:`repro.lint.engine` walks one file at a time, this layer
parses an entire package tree once, resolves imports into a
:class:`SymbolTable`, links every call expression it can resolve into
a :class:`CallGraph`, and infers per-class lock discipline
(:func:`infer_lock_discipline`).  The interprocedural rules of
:mod:`repro.lint.project_rules` (RPR010-RPR013 and the transitive form
of RPR009) run over the resulting :class:`ProjectIndex`; the index is
also a public API for future tooling (dead-code sweeps, layering
checks, impact analysis).

Resolution is deliberately *conservative*: a call is linked only when
the receiver's type is actually known — from a parameter annotation, a
constructor assignment (``self.engine = ServingEngine(...)``), an
attribute whose type was inferred in ``__init__``, or a module-level
singleton (``TELEMETRY = Telemetry()``).  Unresolved calls produce no
edges, so the graph under-approximates reachability rather than
flooding the rules with name-collision false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Union)

from .engine import parse_suppressions

__all__ = [
    "ModuleInfo",
    "FunctionInfo",
    "ClassInfo",
    "CallSite",
    "CallGraph",
    "SymbolTable",
    "ProjectIndex",
    "AttrAccess",
    "LockDiscipline",
    "build_project",
    "infer_lock_discipline",
    "iter_project_files",
]

#: Constructors whose assignment marks an attribute as a lock.
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


def iter_project_files(root: Union[str, Path]) -> Iterator[Path]:
    """Sorted ``.py`` files under *root* (a package directory).

    Unlike :func:`repro.lint.engine.iter_python_files`, hidden-path
    filtering is applied *relative to the root*, so a fixture package
    that happens to live under a dot-directory can still be analyzed by
    pointing the project builder straight at it.
    """
    base = Path(root)
    if base.is_file():
        yield base
        return
    for candidate in sorted(base.rglob("*.py")):
        relative = candidate.relative_to(base)
        if any(part.startswith(".") or part == "__pycache__"
               for part in relative.parts):
            continue
        yield candidate


def _module_name(path: Path) -> str:
    """Dotted module name derived from the ``__init__.py`` chain.

    ``src/repro/serving/cache.py`` -> ``repro.serving.cache`` because
    ``src/`` has no ``__init__.py`` while ``repro/`` and ``serving/``
    do.  Works for any package root, including test fixtures.
    """
    resolved = path.resolve()
    parts: List[str] = []
    if resolved.name != "__init__.py":
        parts.append(resolved.stem)
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts)) if parts else resolved.stem


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    name: str
    path: str
    tree: ast.Module
    source: str
    #: Local name -> dotted target (``np`` -> ``numpy``,
    #: ``ScenarioCache`` -> ``repro.serving.cache.ScenarioCache``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level variable -> class qualname (singleton instances).
    var_types: Dict[str, str] = field(default_factory=dict)
    #: Line -> suppressed rule ids (``# repro: noqa[...]``).
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def suppressed(self, rule_id: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        if codes is None:
            return False
        return not codes or rule_id in codes


@dataclass
class FunctionInfo:
    """One top-level function or method (nested defs fold into it)."""

    qualname: str
    module: ModuleInfo
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    name: str
    class_name: Optional[str] = None
    is_async: bool = False
    params: Tuple[str, ...] = ()
    #: Parameter name -> default expression (absent = required).
    defaults: Dict[str, ast.expr] = field(default_factory=dict)
    has_kwarg: bool = False

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def owner_qualname(self) -> Optional[str]:
        """Qualname of the owning class, when this is a method."""
        if self.class_name is None:
            return None
        return f"{self.module.name}.{self.class_name}"


@dataclass
class ClassInfo:
    """One class definition with its methods and inferred attr types."""

    qualname: str
    module: ModuleInfo
    node: ast.ClassDef
    name: str
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Simple base-class names (resolution happens lazily).
    bases: Tuple[str, ...] = ()
    #: Attributes assigned a ``threading.Lock()`` / ``RLock()``.
    lock_attrs: FrozenSet[str] = frozenset()
    #: Instance attribute -> class qualname, inferred from ``__init__``
    #: assignments and annotations.
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved call expression linking caller to callee."""

    caller: FunctionInfo
    node: ast.Call
    #: Resolved callee (None when only a class constructor matched).
    callee: Optional[FunctionInfo] = None
    #: Class constructed, when the call is ``SomeClass(...)``.
    constructs: Optional[ClassInfo] = None
    #: Whether the call site sits lexically inside a
    #: ``with self.<lock>:`` block of the caller's class.
    under_lock: bool = False
    #: Keyword argument names passed explicitly at this site.
    keywords: FrozenSet[str] = frozenset()
    #: Whether the call uses ``**`` expansion (keywords unknowable).
    has_star_kwargs: bool = False

    @property
    def callee_qualname(self) -> Optional[str]:
        if self.callee is not None:
            return self.callee.qualname
        return None


class CallGraph:
    """Directed call graph over :class:`FunctionInfo` qualnames."""

    def __init__(self) -> None:
        self._edges: Dict[str, List[CallSite]] = {}

    def add(self, site: CallSite) -> None:
        self._edges.setdefault(site.caller.qualname, []).append(site)

    def sites_from(self, qualname: str) -> Sequence[CallSite]:
        """Resolved call sites inside the named function."""
        return tuple(self._edges.get(qualname, ()))

    def callees(self, qualname: str) -> Set[str]:
        """Qualnames of functions directly called by ``qualname``
        (constructor calls contribute the class's ``__init__``)."""
        out: Set[str] = set()
        for site in self._edges.get(qualname, ()):
            if site.callee is not None:
                out.add(site.callee.qualname)
            if site.constructs is not None:
                init = site.constructs.methods.get("__init__")
                if init is not None:
                    out.add(init.qualname)
        return out

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Forward transitive closure over call edges."""
        seen: Set[str] = set()
        frontier = [r for r in roots]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.callees(current) - seen)
        return seen

    def all_callers(self) -> Iterator[Tuple[str, Sequence[CallSite]]]:
        for qualname in sorted(self._edges):
            yield qualname, tuple(self._edges[qualname])


class SymbolTable:
    """Project-wide name resolution over modules, classes, functions."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- dotted-name resolution ------------------------------------

    def resolve_dotted(self, dotted: str,
                       _seen: Optional[Set[str]] = None
                       ) -> Optional[Tuple[str, str]]:
        """Resolve a dotted name to ``(kind, qualname)``.

        ``kind`` is ``"function"``, ``"class"``, ``"module"``, or
        ``"instance"`` (a module-level singleton; the qualname is then
        the *type's* qualname).  Re-export chains through package
        ``__init__`` modules are followed.
        """
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.functions:
            return ("function", dotted)
        if dotted in self.classes:
            return ("class", dotted)
        if dotted in self.modules:
            return ("module", dotted)
        if "." not in dotted:
            return None
        prefix, leaf = dotted.rsplit(".", 1)
        module = self.modules.get(prefix)
        if module is None:
            resolved_prefix = self.resolve_dotted(prefix, seen)
            if resolved_prefix is None or resolved_prefix[0] != "module":
                return None
            module = self.modules[resolved_prefix[1]]
        instance_type = module.var_types.get(leaf)
        if instance_type is not None:
            return ("instance", instance_type)
        target = module.imports.get(leaf)
        if target is not None:
            return self.resolve_dotted(target, seen)
        return None

    def resolve_local(self, module: ModuleInfo,
                      name: str) -> Optional[Tuple[str, str]]:
        """Resolve a bare name as used inside *module*."""
        own = f"{module.name}.{name}"
        if own in self.functions:
            return ("function", own)
        if own in self.classes:
            return ("class", own)
        if name in module.var_types:
            return ("instance", module.var_types[name])
        target = module.imports.get(name)
        if target is not None:
            return self.resolve_dotted(target)
        return None

    # -- method resolution -----------------------------------------

    def resolve_method(self, class_qualname: str,
                       method: str) -> Optional[FunctionInfo]:
        """Find ``method`` on a class or its project-resolved bases."""
        seen: Set[str] = set()
        frontier = [class_qualname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            found = cls.methods.get(method)
            if found is not None:
                return found
            for base in cls.bases:
                resolved = self.resolve_local(cls.module, base)
                if resolved is not None and resolved[0] == "class":
                    frontier.append(resolved[1])
        return None


@dataclass
class AttrAccess:
    """One ``self.<attr>`` touch inside a method."""

    method: FunctionInfo
    attr: str
    node: ast.Attribute
    under_lock: bool
    is_write: bool


@dataclass
class LockDiscipline:
    """Inferred lock discipline of one lock-owning class.

    Attributes:
        cls: The class under analysis.
        lock_attrs: Its lock attribute names (``_lock``, ...).
        guarded: Attribute -> ``(locked, total)`` access counts for
            every attribute inferred to be lock-guarded
            (majority-of-accesses rule).
        held_methods: Methods proven to run with the lock already held
            (private, and every intra-class call site is under the
            lock).
        accesses: Every recorded attribute access outside ``__init__``.
        violations: Accesses of guarded attributes outside the lock.
    """

    cls: ClassInfo
    lock_attrs: FrozenSet[str]
    guarded: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    held_methods: FrozenSet[str] = frozenset()
    accesses: List[AttrAccess] = field(default_factory=list)
    violations: List[AttrAccess] = field(default_factory=list)


@dataclass
class ProjectIndex:
    """Everything the interprocedural rules consume."""

    symbols: SymbolTable
    call_graph: CallGraph
    #: Per-class raw attribute accesses (input to lock inference).
    attr_accesses: Dict[str, List[AttrAccess]] = field(
        default_factory=dict)
    #: Per-class intra-class method call sites ``(caller method name,
    #: callee method name, under_lock)`` used by the held-method
    #: fixpoint.
    intra_class_calls: Dict[str, List[Tuple[str, str, bool]]] = field(
        default_factory=dict)

    @property
    def modules(self) -> Dict[str, ModuleInfo]:
        return self.symbols.modules

    @property
    def functions(self) -> Dict[str, FunctionInfo]:
        return self.symbols.functions

    @property
    def classes(self) -> Dict[str, ClassInfo]:
        return self.symbols.classes


# ---------------------------------------------------------------------------
# Pass 1: modules, classes, functions, imports
# ---------------------------------------------------------------------------

def _param_names(node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
                 ) -> Tuple[Tuple[str, ...], Dict[str, ast.expr], bool]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args
             + args.kwonlyargs]
    defaults: Dict[str, ast.expr] = {}
    positional = args.posonlyargs + args.args
    for param, default in zip(positional[len(positional)
                                         - len(args.defaults):],
                              args.defaults):
        defaults[param.arg] = default
    for param, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None:
            defaults[param.arg] = kw_default
    return tuple(names), defaults, args.kwarg is not None


def _record_imports(module: ModuleInfo) -> None:
    package = module.name.rsplit(".", 1)[0] if "." in module.name \
        else module.name
    if module.path.endswith("__init__.py"):
        package = module.name
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                module.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = module.name.split(".")
                if not module.path.endswith("__init__.py"):
                    base_parts = base_parts[:-1]
                cut = node.level - 1
                if cut:
                    base_parts = base_parts[:-cut] if cut <= len(
                        base_parts) else []
                base = ".".join(base_parts)
            else:
                base = node.module or package
            prefix = base
            if node.module and node.level:
                prefix = f"{base}.{node.module}" if base else node.module
            elif not node.level:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = (f"{prefix}.{alias.name}"
                                         if prefix else alias.name)


def _is_lock_factory(call: ast.expr, module: ModuleInfo) -> bool:
    if not isinstance(call, ast.Call):
        return False
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _LOCK_FACTORIES:
        return True
    if isinstance(func, ast.Name) and func.id in _LOCK_FACTORIES:
        target = module.imports.get(func.id, "")
        return target.startswith("threading.") or func.id in \
            _LOCK_FACTORIES and target == ""
    return False


def _collect_module(symbols: SymbolTable, path: Path,
                    source: str) -> Optional[ModuleInfo]:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    module = ModuleInfo(name=_module_name(path), path=str(path),
                        tree=tree, source=source,
                        suppressions=parse_suppressions(
                            source.splitlines()))
    _record_imports(module)
    symbols.modules[module.name] = module

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params, defaults, has_kwarg = _param_names(node)
            info = FunctionInfo(
                qualname=f"{module.name}.{node.name}", module=module,
                node=node, name=node.name,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                params=params, defaults=defaults, has_kwarg=has_kwarg)
            symbols.functions[info.qualname] = info
        elif isinstance(node, ast.ClassDef):
            _collect_class(symbols, module, node)
    return module


def _collect_class(symbols: SymbolTable, module: ModuleInfo,
                   node: ast.ClassDef) -> None:
    qualname = f"{module.name}.{node.name}"
    bases = tuple(b.id for b in node.bases if isinstance(b, ast.Name))
    cls = ClassInfo(qualname=qualname, module=module, node=node,
                    name=node.name, bases=bases)
    lock_attrs: Set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params, defaults, has_kwarg = _param_names(item)
            info = FunctionInfo(
                qualname=f"{qualname}.{item.name}", module=module,
                node=item, name=item.name, class_name=node.name,
                is_async=isinstance(item, ast.AsyncFunctionDef),
                params=params, defaults=defaults, has_kwarg=has_kwarg)
            cls.methods[item.name] = info
            symbols.functions[info.qualname] = info
            for sub in ast.walk(item):
                if (isinstance(sub, ast.Assign)
                        and _is_lock_factory(sub.value, module)):
                    for target in sub.targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"):
                            lock_attrs.add(target.attr)
    cls.lock_attrs = frozenset(lock_attrs)
    symbols.classes[qualname] = cls


def _collect_module_vars(symbols: SymbolTable,
                         module: ModuleInfo) -> None:
    """Module-level singleton instances: ``TELEMETRY = Telemetry()``."""
    for node in module.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        if not isinstance(func, ast.Name):
            continue
        resolved = symbols.resolve_local(module, func.id)
        if resolved is None or resolved[0] != "class":
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                module.var_types[target.id] = resolved[1]


# ---------------------------------------------------------------------------
# Pass 2: type inference for class attributes
# ---------------------------------------------------------------------------

class _TypeEnv:
    """Expression typing inside one function body."""

    def __init__(self, symbols: SymbolTable, module: ModuleInfo,
                 owner: Optional[ClassInfo]) -> None:
        self.symbols = symbols
        self.module = module
        self.owner = owner
        self.locals: Dict[str, str] = {}

    def annotation_class(self, ann: Optional[ast.expr]
                         ) -> Optional[str]:
        """Class qualname named by an annotation (Optional unwrapped)."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            base = ann.value
            wrapper = None
            if isinstance(base, ast.Name):
                wrapper = base.id
            elif isinstance(base, ast.Attribute):
                wrapper = base.attr
            if wrapper in ("Optional", "Union"):
                inner = ann.slice
                elements = (inner.elts if isinstance(inner, ast.Tuple)
                            else [inner])
                for element in elements:
                    found = self.annotation_class(element)
                    if found is not None:
                        return found
            return None
        if isinstance(ann, ast.Name):
            resolved = self.symbols.resolve_local(self.module, ann.id)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
            return None
        if isinstance(ann, ast.Attribute):
            dotted = _attr_dotted(ann)
            if dotted is None:
                return None
            resolved = self.symbols.resolve_dotted(dotted)
            if resolved is None:
                local = self.module.imports.get(dotted.split(".")[0])
                if local is not None:
                    rebased = ".".join([local] + dotted.split(".")[1:])
                    resolved = self.symbols.resolve_dotted(rebased)
            if resolved is not None and resolved[0] == "class":
                return resolved[1]
        return None

    def seed_params(self, fn: FunctionInfo) -> None:
        args = fn.node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            found = self.annotation_class(arg.annotation)
            if found is not None:
                self.locals[arg.arg] = found

    def type_of(self, expr: ast.expr) -> Optional[str]:
        """Class qualname an expression evaluates to, if inferable."""
        if isinstance(expr, ast.Name):
            local = self.locals.get(expr.id)
            if local is not None:
                return local
            resolved = self.symbols.resolve_local(self.module, expr.id)
            if resolved is not None and resolved[0] == "instance":
                return resolved[1]
            return None
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                resolved = self.symbols.resolve_local(self.module,
                                                      func.id)
                if resolved is not None and resolved[0] == "class":
                    return resolved[1]
                if resolved is not None and resolved[0] == "function":
                    fn = self.symbols.functions[resolved[1]]
                    return self.annotation_class(fn.node.returns)
            if isinstance(func, ast.Attribute):
                method = self.method_of(func)
                if method is not None:
                    env = _TypeEnv(self.symbols, method.module, None)
                    return env.annotation_class(method.node.returns)
            return None
        if isinstance(expr, ast.Attribute):
            base_type = self.type_of(expr.value)
            if base_type is not None:
                cls = self.symbols.classes.get(base_type)
                if cls is not None:
                    found = cls.attr_types.get(expr.attr)
                    if found is not None:
                        return found
                    prop = self.symbols.resolve_method(base_type,
                                                       expr.attr)
                    if prop is not None:
                        env = _TypeEnv(self.symbols, prop.module, None)
                        return env.annotation_class(prop.node.returns)
                return None
            if (isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and self.owner is not None):
                return self.owner.attr_types.get(expr.attr)
            dotted = _attr_dotted(expr)
            if dotted is not None:
                resolved = self.symbols.resolve_dotted(dotted)
                if resolved is None:
                    root = dotted.split(".")[0]
                    target = self.module.imports.get(root)
                    if target is not None:
                        rebased = ".".join(
                            [target] + dotted.split(".")[1:])
                        resolved = self.symbols.resolve_dotted(rebased)
                if resolved is not None and resolved[0] == "instance":
                    return resolved[1]
            return None
        if isinstance(expr, ast.IfExp):
            return self.type_of(expr.body) or self.type_of(expr.orelse)
        if isinstance(expr, ast.Await):
            return self.type_of(expr.value)
        return None

    def method_of(self, func: ast.Attribute
                  ) -> Optional[FunctionInfo]:
        """Resolve ``<expr>.name(...)``'s target method/function."""
        value = func.value
        # self.m(...)
        if (isinstance(value, ast.Name) and value.id == "self"
                and self.owner is not None):
            return self.symbols.resolve_method(self.owner.qualname,
                                               func.attr)
        # module.f(...) via imports
        if isinstance(value, ast.Name):
            target = self.module.imports.get(value.id)
            if target is not None:
                resolved = self.symbols.resolve_dotted(
                    f"{target}.{func.attr}")
                if resolved is not None and resolved[0] == "function":
                    return self.symbols.functions[resolved[1]]
        # typed receiver: self.engine.serve(...), var.m(...),
        # _TEL.metrics.counter(...)
        base_type = self.type_of(value)
        if base_type is not None:
            return self.symbols.resolve_method(base_type, func.attr)
        return None

    def assign(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            inferred = self.type_of(value)
            if inferred is not None:
                self.locals[target.id] = inferred
            else:
                self.locals.pop(target.id, None)


def _attr_dotted(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _infer_attr_types(symbols: SymbolTable) -> None:
    """Fill ``ClassInfo.attr_types`` from annotations and ``__init__``
    constructor assignments (two passes so cross-class attribute chains
    settle)."""
    for _ in range(2):
        for cls in symbols.classes.values():
            for item in cls.node.body:
                if (isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)):
                    env = _TypeEnv(symbols, cls.module, cls)
                    found = env.annotation_class(item.annotation)
                    if found is not None:
                        cls.attr_types[item.target.id] = found
            for method in cls.methods.values():
                env = _TypeEnv(symbols, cls.module, cls)
                env.seed_params(method)
                for stmt in ast.walk(method.node):
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                env.assign(target, stmt.value)
                            elif (isinstance(target, ast.Attribute)
                                    and isinstance(target.value,
                                                   ast.Name)
                                    and target.value.id == "self"):
                                inferred = env.type_of(stmt.value)
                                if inferred is not None:
                                    cls.attr_types[target.attr] = \
                                        inferred
                    elif (isinstance(stmt, ast.AnnAssign)
                            and isinstance(stmt.target, ast.Attribute)
                            and isinstance(stmt.target.value, ast.Name)
                            and stmt.target.value.id == "self"):
                        found = env.annotation_class(stmt.annotation)
                        if found is not None:
                            cls.attr_types[stmt.target.attr] = found


# ---------------------------------------------------------------------------
# Pass 3: call graph + attribute accesses
# ---------------------------------------------------------------------------

class _BodyScanner(ast.NodeVisitor):
    """Walk one function body: resolve calls, record self-attr
    accesses, and track the lexical ``with self._lock`` context."""

    def __init__(self, index: ProjectIndex, fn: FunctionInfo,
                 owner: Optional[ClassInfo]) -> None:
        self.index = index
        self.fn = fn
        self.owner = owner
        self.env = _TypeEnv(index.symbols, fn.module, owner)
        self.env.seed_params(fn)
        self.lock_depth = 0
        self.lock_attr_names: FrozenSet[str] = (
            owner.lock_attrs if owner is not None else frozenset())

    # -- helpers ----------------------------------------------------

    def _is_lock_cm(self, item: ast.expr) -> bool:
        return (isinstance(item, ast.Attribute)
                and isinstance(item.value, ast.Name)
                and item.value.id == "self"
                and item.attr in self.lock_attr_names)

    def _record_access(self, node: ast.Attribute,
                       is_write: bool) -> None:
        if self.owner is None:
            return
        if not (isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return
        if node.attr in self.owner.methods:
            return  # method/property reference, not shared state
        if node.attr in self.lock_attr_names:
            return  # touching the lock itself is the discipline
        access = AttrAccess(method=self.fn, attr=node.attr, node=node,
                            under_lock=self.lock_depth > 0,
                            is_write=is_write)
        self.index.attr_accesses.setdefault(
            self.owner.qualname, []).append(access)

    # -- visits -----------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        locked = any(self._is_lock_cm(item.context_expr)
                     for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if locked:
            self.lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked:
            self.lock_depth -= 1

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self._record_access(node,
                            isinstance(node.ctx,
                                       (ast.Store, ast.Del)))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)
            if isinstance(target, ast.Name):
                self.env.assign(target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``self.x += 1`` reads and writes the attribute.
        self.visit(node.value)
        if isinstance(node.target, ast.Attribute):
            self._record_access(node.target, True)
            self.visit(node.target.value)
        else:
            self.visit(node.target)

    def visit_Call(self, node: ast.Call) -> None:
        callee: Optional[FunctionInfo] = None
        constructs: Optional[ClassInfo] = None
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self.index.symbols.resolve_local(
                self.fn.module, func.id)
            if resolved is not None:
                if resolved[0] == "function":
                    callee = self.index.symbols.functions[resolved[1]]
                elif resolved[0] == "class":
                    constructs = self.index.symbols.classes[resolved[1]]
        elif isinstance(func, ast.Attribute):
            callee = self.env.method_of(func)
        if callee is not None or constructs is not None:
            keywords = frozenset(
                kw.arg for kw in node.keywords if kw.arg is not None)
            site = CallSite(
                caller=self.fn, node=node, callee=callee,
                constructs=constructs,
                under_lock=self.lock_depth > 0,
                keywords=keywords,
                has_star_kwargs=any(kw.arg is None
                                    for kw in node.keywords))
            self.index.call_graph.add(site)
            if (self.owner is not None and callee is not None
                    and callee.owner_qualname == self.owner.qualname
                    and isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"):
                self.index.intra_class_calls.setdefault(
                    self.owner.qualname, []).append(
                    (self.fn.name, callee.name,
                     self.lock_depth > 0))
        self.generic_visit(node)

    def _visit_nested_def(self, node: ast.AST) -> None:
        # Nested defs fold into the enclosing function's node set —
        # but a nested body does not inherit the lexical lock context
        # (it usually runs later, e.g. as a callback).
        saved = self.lock_depth
        self.lock_depth = 0
        self.generic_visit(node)
        self.lock_depth = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested_def(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._visit_nested_def(node)


def _scan_bodies(index: ProjectIndex) -> None:
    for fn in index.functions.values():
        owner = None
        if fn.class_name is not None:
            owner = index.classes.get(
                f"{fn.module.name}.{fn.class_name}")
        scanner = _BodyScanner(index, fn, owner)
        for stmt in fn.node.body:
            scanner.visit(stmt)


# ---------------------------------------------------------------------------
# Lock-discipline inference
# ---------------------------------------------------------------------------

#: Methods whose accesses never count: construction is single-threaded.
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__",
                                   "__new__"})


def infer_lock_discipline(index: ProjectIndex, cls: ClassInfo,
                          min_locked: int = 2) -> LockDiscipline:
    """Infer which attributes of *cls* its ``self._lock`` guards.

    An attribute is **guarded** when the majority of its accesses
    (outside construction) happen under the lock — lexically inside a
    ``with self._lock:`` block, or inside a *held method*: a private
    method every intra-class call site of which is itself under the
    lock (computed to fixpoint, so helpers calling helpers resolve).
    ``min_locked`` accesses under the lock are required before the
    majority claim counts, so single-touch config attributes do not
    produce noise.  Accesses of guarded attributes outside the lock
    are the returned ``violations``.
    """
    raw = [a for a in index.attr_accesses.get(cls.qualname, ())
           if a.method.name not in _CONSTRUCTION_METHODS]
    calls = index.intra_class_calls.get(cls.qualname, [])

    held: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, method in cls.methods.items():
            if name in held or not name.startswith("_"):
                continue
            if name in _CONSTRUCTION_METHODS:
                continue
            sites = [(caller, locked) for caller, callee, locked
                     in calls if callee == name]
            if not sites:
                continue
            if all(locked or caller in held
                   for caller, locked in sites):
                held.add(name)
                changed = True

    def effectively_locked(access: AttrAccess) -> bool:
        return access.under_lock or access.method.name in held

    counts: Dict[str, Tuple[int, int]] = {}
    for access in raw:
        locked, total = counts.get(access.attr, (0, 0))
        counts[access.attr] = (locked + int(effectively_locked(access)),
                               total + 1)
    guarded = {attr: (locked, total)
               for attr, (locked, total) in counts.items()
               if locked >= min_locked and locked * 2 > total}
    violations = [a for a in raw
                  if a.attr in guarded and not effectively_locked(a)]
    return LockDiscipline(cls=cls, lock_attrs=cls.lock_attrs,
                          guarded=guarded,
                          held_methods=frozenset(held),
                          accesses=raw, violations=violations)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def build_project(paths: Sequence[Union[str, Path]]) -> ProjectIndex:
    """Parse every module under *paths* and build the project index.

    Files that fail to parse are skipped here; the per-file engine
    already reports them as RPR999, and a partial project is more
    useful than none.
    """
    symbols = SymbolTable()
    modules: List[ModuleInfo] = []
    for root in paths:
        for file_path in iter_project_files(root):
            try:
                source = file_path.read_text(encoding="utf-8")
            except OSError:
                continue
            module = _collect_module(symbols, file_path, source)
            if module is not None:
                modules.append(module)
    for module in modules:
        _collect_module_vars(symbols, module)
    _infer_attr_types(symbols)
    index = ProjectIndex(symbols=symbols, call_graph=CallGraph())
    _scan_bodies(index)
    return index
