"""The RPR rule catalog: domain conventions of the solver stack.

Each rule encodes a convention whose silent violation produces
plausible-but-wrong equilibria rather than crashes — see
``docs/STATIC_ANALYSIS.md`` for the full rationale catalog.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Tuple, Type

from .engine import Finding, LintContext, Rule

__all__ = ["ALL_RULES", "rule_catalog"]


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class GlobalNumpyRNG(Rule):
    """RPR001 — ``np.random.*`` module-level RNG instead of a passed
    ``numpy.random.Generator``."""

    id = "RPR001"
    name = "global-numpy-rng"
    severity = "error"
    description = ("Call through the global numpy RNG (np.random.*) "
                   "instead of a seeded, explicitly passed Generator.")
    rationale = ("Global RNG state couples experiments: results change "
                 "with import order and parallel scheduling, silently "
                 "breaking reproducibility of sampled populations and "
                 "fault plans.")
    #: Constructors/types reachable through np.random that are fine.
    default_options: Dict[str, Any] = {
        "allowed": ("default_rng", "Generator", "SeedSequence",
                    "BitGenerator", "PCG64", "PCG64DXSM", "Philox",
                    "SFC64", "MT19937"),
    }

    def on_Attribute(self, node: ast.Attribute,
                     ctx: LintContext) -> Iterator[Optional[Finding]]:
        chain = _attr_chain(node)
        if not chain or len(chain) < 3:
            return
        if chain[0] in ("np", "numpy") and chain[1] == "random":
            leaf = chain[2]
            if leaf not in self.options["allowed"]:
                yield ctx.finding(
                    self, node,
                    f"np.random.{leaf} uses the global RNG; pass a "
                    f"seeded np.random.Generator instead")


class FloatEquality(Rule):
    """RPR002 — ``==``/``!=`` against a float literal."""

    id = "RPR002"
    name = "float-equality"
    severity = "error"
    description = ("Exact equality comparison against a float literal; "
                   "use a tolerance (math.isclose / np.isclose) or "
                   "suppress for deliberate exact-sentinel checks.")
    rationale = ("Solver outputs are the result of iterative floating "
                 "arithmetic; exact comparison flips on 1-ulp changes "
                 "(kernel choice, BLAS build) and turns report/analysis "
                 "branches into coin flips.")
    #: Test assertions compare exactly-representable constructed
    #: values by design; the rule targets library branching.
    default_options: Dict[str, Any] = {"include_tests": False}

    def on_Compare(self, node: ast.Compare,
                   ctx: LintContext) -> Iterator[Optional[Finding]]:
        if ctx.is_test_file and not self.options["include_tests"]:
            return
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        for operand in operands:
            if (isinstance(operand, ast.Constant)
                    and isinstance(operand.value, float)):
                yield ctx.finding(
                    self, node,
                    f"float equality `{ctx.unparse(node)}`: compare "
                    f"with a tolerance, or mark the exact sentinel "
                    f"check with `# repro: noqa[RPR002]`")
                return


class UnguardedAggregateDivision(Rule):
    """RPR003 — division by a game aggregate that can be zero."""

    id = "RPR003"
    name = "unguarded-aggregate-division"
    severity = "error"
    description = ("Division whose denominator is a game aggregate "
                   "(`S`, `E + C`, a sum(...) / .sum() call) with no "
                   "enclosing zero-guard mentioning the denominator.")
    rationale = ("Total offloaded power S = E + C is exactly zero at "
                 "boundary price points (all-local equilibria); an "
                 "unguarded S division yields inf/nan that propagates "
                 "into win probabilities instead of crashing.")
    default_options: Dict[str, Any] = {
        # Bare names treated as aggregates when used as a denominator.
        "aggregate_names": ("S", "E", "C", "total", "denom"),
        # Pairs that form an aggregate when added (either order).
        "aggregate_sums": (("E", "C"),),
    }

    def _is_sum_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sum":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "sum":
            return True  # arr.sum(), np.sum(...)
        return False

    def _is_aggregate(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.options["aggregate_names"]
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left, right = node.left, node.right
            if isinstance(left, ast.Name) and isinstance(right, ast.Name):
                pair = {left.id, right.id}
                return any(set(p) == pair
                           for p in self.options["aggregate_sums"])
        return self._is_sum_call(node)

    def on_BinOp(self, node: ast.BinOp,
                 ctx: LintContext) -> Iterator[Optional[Finding]]:
        if not isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            return
        denom = node.right
        if not self._is_aggregate(denom):
            return
        denom_src = ctx.unparse(denom)
        # Lexically guarded: an enclosing if/ternary/assert test
        # mentions the denominator (e.g. `if S > 0: ... x / S`), or
        # the name was assigned from a floor (`denom = max(x, 1.0)`).
        needle = denom_src
        if isinstance(denom, ast.Name):
            needle = denom.id
            if ctx.is_floored(needle):
                return
        if ctx.guarded_by(needle):
            return
        yield ctx.finding(
            self, node,
            f"division by aggregate `{denom_src}` with no enclosing "
            f"zero-guard; guard with `if {denom_src} > 0` or use a "
            f"max(eps, .) floor")


class SolverSignatureDrift(Rule):
    """RPR004 — scenario entry points must keep the ``kernel`` +
    warm-start seams."""

    id = "RPR004"
    name = "solver-signature-drift"
    severity = "error"
    description = ("A known solver entry point is missing the `kernel` "
                   "parameter or a warm-start parameter "
                   "(`initial`/`warm_start`), or no longer forwards "
                   "`kernel=` to a callee.")
    rationale = ("The serving engine, guards, and benchmarks thread "
                 "kernel/warm-start through every entry point; a "
                 "dropped kwarg silently falls back to cold scalar "
                 "solves and invalidates cache keys.")
    default_options: Dict[str, Any] = {
        # Entry points checked wherever they are defined.
        "entry_points": ("solve_connected_equilibrium",
                         "solve_standalone_equilibrium",
                         "solve_standalone_extragradient",
                         "solve_stackelberg"),
        "warm_params": ("initial", "warm_start"),
        # Entry points whose body consumes `kernel` directly instead
        # of forwarding it as a keyword (the NEP solver dispatches on
        # it); for these the forward check is skipped.
        "no_forward_check": ("solve_connected_equilibrium",),
    }

    def _param_names(self, node: ast.FunctionDef) -> List[str]:
        a = node.args
        names = [p.arg for p in a.posonlyargs + a.args + a.kwonlyargs]
        if a.vararg:
            names.append(a.vararg.arg)
        if a.kwarg:
            names.append(a.kwarg.arg)
        return names

    def _forwards_kernel(self, node: ast.FunctionDef) -> bool:
        for call in ast.walk(node):
            if isinstance(call, ast.Call):
                for kw in call.keywords:
                    if kw.arg == "kernel":
                        return True
        return False

    def on_FunctionDef(self, node: ast.FunctionDef,
                       ctx: LintContext) -> Iterator[Optional[Finding]]:
        if node.name not in self.options["entry_points"]:
            return
        params = self._param_names(node)
        missing = []
        if "kernel" not in params:
            missing.append("kernel")
        if not any(w in params for w in self.options["warm_params"]):
            missing.append("initial|warm_start")
        if missing:
            yield ctx.finding(
                self, node,
                f"solver entry point `{node.name}` is missing "
                f"required parameter(s): {', '.join(missing)}")
            return
        if (node.name not in self.options["no_forward_check"]
                and not self._forwards_kernel(node)):
            yield ctx.finding(
                self, node,
                f"solver entry point `{node.name}` accepts `kernel` "
                f"but never forwards it (`kernel=` missing from every "
                f"call in its body)")


class MutableDefaultArgument(Rule):
    """RPR005 — mutable default argument values."""

    id = "RPR005"
    name = "mutable-default-argument"
    severity = "error"
    description = ("Function parameter defaults to a mutable object "
                   "([], {}, set(), list(), dict()); shared across "
                   "calls.")
    rationale = ("A mutated default leaks state between solver calls — "
                 "exactly the cross-scenario coupling the serving "
                 "engine's determinism tests exist to rule out.")

    _mutable_calls = ("list", "dict", "set")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._mutable_calls
                and not node.args and not node.keywords):
            return True
        return False

    def _check(self, node: ast.FunctionDef,
               ctx: LintContext) -> Iterator[Optional[Finding]]:
        a = node.args
        pos_params = a.posonlyargs + a.args
        for param, default in zip(pos_params[len(pos_params)
                                             - len(a.defaults):],
                                  a.defaults):
            if self._is_mutable(default):
                yield ctx.finding(
                    self, default,
                    f"mutable default for parameter `{param.arg}` of "
                    f"`{node.name}`; use None and create inside")
        for param, kw_default in zip(a.kwonlyargs, a.kw_defaults):
            if kw_default is not None and self._is_mutable(kw_default):
                yield ctx.finding(
                    self, kw_default,
                    f"mutable default for parameter `{param.arg}` of "
                    f"`{node.name}`; use None and create inside")

    on_FunctionDef = _check
    on_AsyncFunctionDef = _check


class SolverNondeterminism(Rule):
    """RPR006 — wall-clock / unseeded randomness in solver modules."""

    id = "RPR006"
    name = "solver-nondeterminism"
    severity = "error"
    description = ("time.time / random.* / argless datetime.now inside "
                   "a solver module (core/game/kernels/serving, bench "
                   "and telemetry excluded).  Monotonic timers "
                   "(perf_counter/monotonic) are allowed — they only "
                   "feed latency metrics, never results.")
    rationale = ("A timestamp or stdlib-random draw inside a solver "
                 "makes equilibria irreproducible and breaks the "
                 "bit-identity goldens that pin the scalar kernel.")
    default_options: Dict[str, Any] = {
        "banned_time": ("time", "time_ns"),
        "banned_datetime": ("now", "utcnow", "today"),
    }

    def on_Call(self, node: ast.Call,
                ctx: LintContext) -> Iterator[Optional[Finding]]:
        if not ctx.is_solver_module or ctx.in_package("telemetry"):
            return
        chain = _attr_chain(node.func)
        if not chain:
            return
        root, leaf = chain[0], chain[-1]
        if root == "time" and leaf in self.options["banned_time"]:
            yield ctx.finding(
                self, node,
                f"wall-clock `{'.'.join(chain)}()` in a solver module; "
                f"use time.perf_counter for telemetry timing or pass "
                f"timestamps in")
        elif root == "random" and len(chain) == 2:
            yield ctx.finding(
                self, node,
                f"stdlib `random.{leaf}()` in a solver module; pass a "
                f"seeded np.random.Generator instead")
        elif (root == "datetime" and not node.args and not node.keywords
                and leaf in self.options["banned_datetime"]):
            yield ctx.finding(
                self, node,
                f"argless `{'.'.join(chain)}()` in a solver module "
                f"reads the wall clock; pass timestamps in")


class OverbroadExcept(Rule):
    """RPR007 — bare / overbroad ``except`` outside ``resilience``."""

    id = "RPR007"
    name = "overbroad-except"
    severity = "error"
    description = ("bare `except:` or `except (Base)Exception` outside "
                   "the resilience package; catch the specific "
                   "ReproError subclass, or suppress with a "
                   "justification at deliberate capture boundaries.")
    rationale = ("Broad catches around solver calls swallow "
                 "ConvergenceError and return stale/partial equilibria "
                 "as if they converged; fault handling belongs to the "
                 "resilience layer, which owns retry/degradation "
                 "policy.")
    default_options: Dict[str, Any] = {
        "exempt_packages": ("resilience",),
        "broad_names": ("Exception", "BaseException"),
    }

    def _broad(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return True  # bare except
        if isinstance(node, ast.Name):
            return node.id in self.options["broad_names"]
        if isinstance(node, ast.Tuple):
            return any(self._broad(el) for el in node.elts)
        return False

    def on_ExceptHandler(self, node: ast.ExceptHandler,
                         ctx: LintContext) -> Iterator[Optional[Finding]]:
        if any(ctx.in_package(p)
               for p in self.options["exempt_packages"]):
            return
        if self._broad(node.type):
            what = ("bare except"
                    if node.type is None
                    else f"except {ctx.unparse(node.type)}")
            yield ctx.finding(
                self, node,
                f"{what} outside resilience/; catch specific "
                f"exceptions, or justify the capture boundary with "
                f"`# repro: noqa[RPR007]`")


class UnguardedTelemetryInLoop(Rule):
    """RPR008 — telemetry facade touched inside a loop without the
    ``.enabled`` seam check."""

    id = "RPR008"
    name = "unguarded-telemetry-in-loop"
    severity = "error"
    description = ("A telemetry facade call (TELEMETRY./_TEL./tel.) "
                   "inside a for/while loop that is not under an "
                   "`if <facade>.enabled` guard; bind instruments "
                   "outside the loop or guard the seam.")
    rationale = ("The zero-overhead contract: disabled telemetry must "
                 "cost one attribute read per solve, not per "
                 "iteration; unguarded registry lookups in the sweep "
                 "loop showed up as >5% overhead in the seam-cost "
                 "tests.")
    default_options: Dict[str, Any] = {
        "facade_names": ("TELEMETRY", "_TEL", "telemetry", "tel"),
    }

    def on_Call(self, node: ast.Call,
                ctx: LintContext) -> Iterator[Optional[Finding]]:
        if not ctx.loop_stack:
            return
        chain = _attr_chain(node.func)
        if not chain or len(chain) < 2:
            return
        if chain[0] not in self.options["facade_names"]:
            return
        if any(".enabled" in test or "enabled" == test.split(".")[-1]
               for test in ctx.if_test_stack):
            return
        yield ctx.finding(
            self, node,
            f"`{'.'.join(chain)}(...)` inside a loop without an "
            f"`if {chain[0]}.enabled` guard; hoist the instrument or "
            f"guard the seam")


class BlockingCallInAsync(Rule):
    """RPR009 — event-loop-blocking call inside an ``async def`` of
    the online service package."""

    id = "RPR009"
    name = "blocking-call-in-async"
    severity = "error"
    description = ("time.sleep or synchronous file I/O (open, "
                   "Path.read_text/write_text/..., os.replace/fsync) "
                   "inside an `async def` under repro/service/; use "
                   "asyncio.sleep or run_in_executor.")
    rationale = ("The service multiplexes every connection on one "
                 "event loop; a single blocking call inside a "
                 "coroutine stalls all concurrent requests at once — "
                 "coalescing and admission deadlines included — and "
                 "shows up as an unexplained latency-SLO breach.")
    default_options: Dict[str, Any] = {
        #: Only this package runs on an event loop.
        "packages": ("service",),
        #: Sync-I/O method names flagged on any attribute chain
        #: (Path API and file objects).
        "io_methods": ("read_text", "write_text", "read_bytes",
                       "write_bytes"),
        #: os-level file operations that hit the disk synchronously.
        "os_calls": ("replace", "fsync", "rename", "remove", "unlink"),
    }

    def _in_async_def(self, ctx: LintContext) -> bool:
        stack = ctx.function_stack
        return bool(stack) and isinstance(stack[-1],
                                          ast.AsyncFunctionDef)

    def on_Call(self, node: ast.Call,
                ctx: LintContext) -> Iterator[Optional[Finding]]:
        if not any(ctx.in_package(p) for p in self.options["packages"]):
            return
        if not self._in_async_def(ctx):
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            yield ctx.finding(
                self, node,
                "synchronous open() inside an async def blocks the "
                "event loop; run file I/O through run_in_executor")
            return
        chain = _attr_chain(func)
        if not chain or len(chain) < 2:
            return
        root, leaf = chain[0], chain[-1]
        dotted = ".".join(chain)
        if root == "time" and leaf == "sleep":
            yield ctx.finding(
                self, node,
                f"`{dotted}()` inside an async def blocks the event "
                f"loop; use `await asyncio.sleep(...)`")
        elif root == "os" and leaf in self.options["os_calls"]:
            yield ctx.finding(
                self, node,
                f"`{dotted}()` inside an async def performs "
                f"synchronous file I/O; run it through "
                f"run_in_executor")
        elif leaf in self.options["io_methods"]:
            yield ctx.finding(
                self, node,
                f"`{dotted}()` inside an async def performs "
                f"synchronous file I/O; run it through "
                f"run_in_executor")


ALL_RULES: Tuple[Type[Rule], ...] = (
    GlobalNumpyRNG,
    FloatEquality,
    UnguardedAggregateDivision,
    SolverSignatureDrift,
    MutableDefaultArgument,
    SolverNondeterminism,
    OverbroadExcept,
    UnguardedTelemetryInLoop,
    BlockingCallInAsync,
)


def rule_catalog() -> List[Dict[str, str]]:
    """Machine-readable rule listing (id, name, severity, docs)."""
    return [
        {"id": r.id, "name": r.name, "severity": r.severity,
         "description": r.description, "rationale": r.rationale}
        for r in ALL_RULES
    ]
