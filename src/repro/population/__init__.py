"""Miner-population models (Section V): fixed counts for permissioned
chains, discretized Gaussian counts for permissionless chains, and seeded
per-block churn processes for the RL framework.

:mod:`repro.population.compress` adds deterministic quantile
compression of heterogeneous budget vectors into weighted types — the
population half of the type-space scaling layer
(:mod:`repro.kernels.typespace`)."""

from .compress import CompressedPopulation, compress_budgets
from .distribution import FixedPopulation, GaussianPopulation, PopulationModel
from .sampler import BlockPopulation, PopulationProcess

__all__ = [
    "CompressedPopulation",
    "compress_budgets",
    "FixedPopulation",
    "GaussianPopulation",
    "PopulationModel",
    "BlockPopulation",
    "PopulationProcess",
]
