"""Miner-population models (Section V): fixed counts for permissioned
chains, discretized Gaussian counts for permissionless chains, and seeded
per-block churn processes for the RL framework."""

from .distribution import FixedPopulation, GaussianPopulation, PopulationModel
from .sampler import BlockPopulation, PopulationProcess

__all__ = [
    "FixedPopulation",
    "GaussianPopulation",
    "PopulationModel",
    "BlockPopulation",
    "PopulationProcess",
]
