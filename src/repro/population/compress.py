"""Quantile compression of heterogeneous budgets into weighted types.

The miner subgame is aggregative: a miner's equilibrium strategy
depends on its own budget and on the population only through the totals
``S = Σ s_i`` and ``E = Σ e_i``.  Two miners with the *same* budget
therefore play the same strategy (the equilibrium is unique, Theorem 2,
and symmetric under identical primitives), so a population of ``n``
miners with only ``k`` distinct budgets is solved exactly by ``k``
weighted types.  For genuinely heterogeneous budgets,
:func:`compress_budgets` buckets the population on budget quantiles —
near-equal head-counts per bucket — and records everything the
type-space solver (:mod:`repro.kernels.typespace`) needs to certify the
approximation: the bucket extremes ``lo``/``hi`` bound how far any
miner's true budget sits from its representative, which translates into
a computable equilibrium error bound (see ``docs/SCALING.md``).

Compression is deterministic (pure ``argsort`` + rank arithmetic, no
RNG) so cache keys built from ``n_types`` are stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["CompressedPopulation", "compress_budgets"]

#: Numpy array alias used throughout (strict-typing friendly).
_Array = np.ndarray


@dataclass(frozen=True)
class CompressedPopulation:
    """A budget population bucketed into ``k`` weighted types.

    Attributes:
        budgets: Representative (bucket-mean) budget per type,
            shape ``(k,)``, ascending.
        lo: Smallest true budget in each bucket, shape ``(k,)``.
        hi: Largest true budget in each bucket, shape ``(k,)``.
        weights: Miner head-count per type, shape ``(k,)`` (floats;
            the aggregative sums only need linearity).
        index: Type index of every original miner, shape ``(n,)``.
    """

    budgets: _Array
    lo: _Array
    hi: _Array
    weights: _Array
    index: _Array

    def __post_init__(self) -> None:
        k = self.budgets.shape[0]
        for name in ("lo", "hi", "weights"):
            if getattr(self, name).shape != (k,):
                raise ConfigurationError(
                    f"{name} must have shape ({k},)")
        if np.any(self.lo > self.budgets) or np.any(self.budgets > self.hi):
            raise ConfigurationError(
                "bucket representatives must lie inside [lo, hi]")

    @property
    def n(self) -> int:
        """Original miner count."""
        return int(self.index.shape[0])

    @property
    def k(self) -> int:
        """Number of types."""
        return int(self.budgets.shape[0])

    @property
    def max_width(self) -> float:
        """Largest bucket width ``max(hi - lo)`` — the budget-rounding
        radius entering the certified error bound."""
        return float(np.max(self.hi - self.lo))

    @property
    def is_identity(self) -> bool:
        """Whether every miner is its own type in original order
        (``k == n``); the type solve is then the per-miner solve."""
        return self.k == self.n and bool(
            np.all(self.index == np.arange(self.n)))

    @property
    def is_exact(self) -> bool:
        """Whether the bucketed game equals the true game exactly
        (identity compression, or every bucket has zero width)."""
        # Exact-zero is the sentinel: a width of literal 0.0 means
        # every bucket's members share one budget bit-for-bit.
        return (self.is_identity
                or self.max_width == 0.0)  # repro: noqa[RPR002]

    def expand(self, per_type: _Array) -> _Array:
        """Broadcast a per-type array ``(k,)`` back to miners ``(n,)``."""
        values = np.asarray(per_type, dtype=float)
        if values.shape != (self.k,):
            raise ConfigurationError(
                f"expected shape ({self.k},), got {values.shape}")
        return values[self.index]


def compress_budgets(budgets: Union[_Array, "list[float]"],
                     n_types: int) -> CompressedPopulation:
    """Quantile-bucket a budget vector into ``n_types`` weighted types.

    Miners are ranked by budget and split into ``n_types`` contiguous
    rank buckets of near-equal head-count; each bucket becomes one type
    whose representative budget is the bucket mean.  ``n_types >= n``
    returns the identity compression (every miner its own type, in the
    original order, zero bucket widths).

    Args:
        budgets: Per-miner budgets, shape ``(n,)``, strictly positive.
        n_types: Target type count ``k >= 1``.

    Returns:
        :class:`CompressedPopulation`; ``O(n log n)`` and
        deterministic.
    """
    arr = np.asarray(budgets, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 1:
        raise ConfigurationError(
            "budgets must be a non-empty 1-D array")
    if np.any(arr <= 0.0) or not np.all(np.isfinite(arr)):
        raise ConfigurationError(
            "all budgets must be positive and finite")
    if n_types < 1:
        raise ConfigurationError(
            f"n_types must be >= 1, got {n_types}")
    n = int(arr.shape[0])
    if n_types >= n:
        return CompressedPopulation(
            budgets=arr.copy(), lo=arr.copy(), hi=arr.copy(),
            weights=np.ones(n), index=np.arange(n))

    k = int(n_types)
    order = np.argsort(arr, kind="stable")
    # Rank r lands in bucket floor(r * k / n): contiguous, every bucket
    # non-empty (k <= n), head-counts differing by at most one.
    bucket_of_rank = (np.arange(n) * k) // n
    index = np.empty(n, dtype=np.intp)
    index[order] = bucket_of_rank
    sorted_budgets = arr[order]
    # Per-bucket boundaries in rank space: bucket b covers ranks
    # [ceil(b n / k), ceil((b+1) n / k)).
    starts = -(-(np.arange(k) * n) // k)
    ends = -(-((np.arange(k) + 1) * n) // k)
    reps = np.empty(k)
    lo = np.empty(k)
    hi = np.empty(k)
    weights = np.empty(k)
    for b in range(k):
        members = sorted_budgets[starts[b]:ends[b]]
        reps[b] = float(np.mean(members))
        lo[b] = float(members[0])
        hi[b] = float(members[-1])
        weights[b] = float(ends[b] - starts[b])
    # Guard against float noise pushing the mean outside the bucket.
    reps = np.clip(reps, lo, hi)
    return CompressedPopulation(budgets=reps, lo=lo, hi=hi,
                                weights=weights, index=index)
