"""Miner-population models for the dynamic scenario (Section V).

Permissionless blockchains let miners join and leave freely, so the paper
models the miner count as ``N ~ Gaussian(μ, σ²)`` discretized as
``P(k) = Φ(k) - Φ(k-1)`` and truncated to ``k >= 1`` (a mining network needs
at least one miner; the games additionally require ``k >= 2`` to be
meaningful, which the equilibrium solvers enforce on the *mean*).
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["PopulationModel", "FixedPopulation", "GaussianPopulation"]


def _normal_cdf(x: float) -> float:
    """Standard normal CDF via the error function (no scipy needed here)."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


class PopulationModel(abc.ABC):
    """Distribution of the miner count ``N`` over positive integers."""

    @abc.abstractmethod
    def support(self) -> np.ndarray:
        """Integer values of ``N`` with non-negligible probability."""

    @abc.abstractmethod
    def pmf(self) -> np.ndarray:
        """Probabilities aligned with :meth:`support` (sums to 1)."""

    @property
    def mean(self) -> float:
        """Expected miner count."""
        return float(np.dot(self.support(), self.pmf()))

    @property
    def variance(self) -> float:
        """Variance of the miner count."""
        ks = self.support().astype(float)
        p = self.pmf()
        mu = float(np.dot(ks, p))
        return float(np.dot((ks - mu) ** 2, p))

    def sample(self, rng: np.random.Generator,
               size: Optional[int] = None) -> np.ndarray:
        """Sample miner counts using the discretized pmf."""
        ks = self.support()
        p = self.pmf()
        return np.asarray(rng.choice(ks, size=size, p=p))


class FixedPopulation(PopulationModel):
    """Degenerate model: exactly ``n`` miners (the Section IV scenario)."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ConfigurationError(f"miner count must be >= 1, got {n}")
        self.n = int(n)

    def support(self) -> np.ndarray:
        return np.array([self.n], dtype=int)

    def pmf(self) -> np.ndarray:
        return np.array([1.0])

    def __repr__(self) -> str:
        return f"FixedPopulation(n={self.n})"


class GaussianPopulation(PopulationModel):
    """Discretized, ``k >= 1``-truncated Gaussian miner count.

    ``P(N = k) ∝ Φ((k + ½ - μ)/σ) - Φ((k - ½ - μ)/σ)`` — the centered
    binning of the paper's Fig. 3 toy example (μ=10, σ²=4). (The paper
    prints ``Φ(k) - Φ(k-1)``, whose bins are shifted by +½ and would bias
    the discretized mean to ``μ + ½``; Fig. 3's histogram is centered on μ,
    so the centered convention is the faithful one.) The support is clipped
    to ``μ ± tail_sigmas · σ`` and the pmf renormalized, so it always sums
    to exactly 1.

    Args:
        mu: Mean miner count.
        sigma: Standard deviation (NOT the variance; the paper's σ²=4
            example corresponds to ``sigma=2``).
        tail_sigmas: Width of the retained support in standard deviations.
    """

    def __init__(self, mu: float, sigma: float,
                 tail_sigmas: float = 6.0) -> None:
        if mu <= 0:
            raise ConfigurationError(f"mu must be positive, got {mu}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if tail_sigmas <= 0:
            raise ConfigurationError("tail_sigmas must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)
        k_lo = max(1, int(math.floor(mu - tail_sigmas * sigma)))
        k_hi = max(k_lo, int(math.ceil(mu + tail_sigmas * sigma)))
        self._support = np.arange(k_lo, k_hi + 1, dtype=int)
        raw = np.array([
            _normal_cdf((k + 0.5 - mu) / sigma)
            - _normal_cdf((k - 0.5 - mu) / sigma)
            for k in self._support
        ])
        total = float(raw.sum())
        if total <= 0:
            raise ConfigurationError(
                "population distribution degenerated to zero mass; widen "
                "tail_sigmas")
        self._pmf = raw / total

    def support(self) -> np.ndarray:
        return self._support

    def pmf(self) -> np.ndarray:
        return self._pmf

    def truncation_mass(self) -> float:
        """Probability mass lost to the ``k >= 1`` truncation (pre-renorm)."""
        return float(_normal_cdf((self._support[0] - 0.5 - self.mu)
                                 / self.sigma))

    def __repr__(self) -> str:
        return (f"GaussianPopulation(mu={self.mu}, sigma={self.sigma}, "
                f"support=[{self._support[0]}, {self._support[-1]}])")
