"""Seeded sampling of miner-population trajectories.

The RL framework of Section VI-C redraws the active miner set every block
within a pricing epoch. :class:`PopulationProcess` produces those
trajectories deterministically from a seed, modeling churn as miners
joining/leaving to match each block's sampled count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..exceptions import ConfigurationError
from .distribution import PopulationModel

__all__ = ["BlockPopulation", "PopulationProcess"]


@dataclass(frozen=True)
class BlockPopulation:
    """Active miner set for one block.

    Attributes:
        count: Number of active miners this block.
        active: Indices (into the registered miner pool) that are active.
    """

    count: int
    active: np.ndarray


class PopulationProcess:
    """Generates per-block active miner sets under a population model.

    A pool of ``pool_size`` registered miners exists; each block, the
    process samples ``N_t`` from the model and activates a uniformly random
    subset of that size (clipped to the pool). Persistent identities let
    learning agents accumulate experience across the blocks in which they
    participate.
    """

    def __init__(self, model: PopulationModel, pool_size: int,
                 seed: int = 0) -> None:
        if pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        max_support = int(np.max(model.support()))
        if pool_size < max_support:
            raise ConfigurationError(
                f"pool_size={pool_size} is smaller than the population "
                f"support maximum {max_support}; some draws could not be "
                "realized")
        self.model = model
        self.pool_size = int(pool_size)
        self._rng = np.random.default_rng(seed)

    def next_block(self) -> BlockPopulation:
        """Sample the active miner set for the next block."""
        count = int(self.model.sample(self._rng))
        count = max(1, min(count, self.pool_size))
        active = self._rng.choice(self.pool_size, size=count, replace=False)
        active.sort()
        return BlockPopulation(count=count, active=active)

    def epoch(self, blocks: int) -> List[BlockPopulation]:
        """Sample an epoch of ``blocks`` consecutive block populations."""
        if blocks < 1:
            raise ConfigurationError("an epoch needs at least one block")
        return [self.next_block() for _ in range(blocks)]

    def empirical_counts(self, blocks: int) -> np.ndarray:
        """Counts only, for distribution-fit tests (Fig. 3)."""
        return np.array([self.next_block().count for _ in range(blocks)])
