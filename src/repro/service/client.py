"""Async clients for the equilibrium service, one per transport.

Both clients expose the same call surface and return the same
JSON-shaped payloads (:func:`~repro.service.server.response_payload`),
so the load generator and the tests swap transports with one flag:

* :class:`InProcessClient` — calls
  :meth:`~repro.service.service.EquilibriumService.handle` directly on
  the current event loop. Zero serialization; the default for tests
  and the 10^5–10^6-request load runs.
* :class:`HttpClient` — stdlib asyncio-streams HTTP/1.1 client with a
  small keep-alive connection pool, for driving a real
  :class:`~repro.service.server.ServiceServer` (the CI smoke job).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple

from ..serving.codec import encode_spec
from ..serving.keys import ScenarioSpec
from .server import response_payload
from .service import EquilibriumService

__all__ = ["InProcessClient", "HttpClient"]


class InProcessClient:
    """Direct client: the service core without a socket in between."""

    def __init__(self, service: EquilibriumService) -> None:
        self.service = service

    async def solve(self, spec: ScenarioSpec,
                    include_result: bool = True) -> Dict[str, Any]:
        """Submit one scenario; returns the wire-shaped payload with
        the transport status under ``"http_status"``."""
        response = await self.service.handle(spec)
        payload = response_payload(response,
                                   include_result=include_result)
        payload["http_status"] = response.status
        return payload

    async def invalidate(self) -> int:
        return self.service.invalidate()

    async def metrics_text(self) -> str:
        from ..telemetry import TELEMETRY, render_prometheus
        return render_prometheus(TELEMETRY.metrics)

    async def close(self) -> None:
        """Nothing to release (the service owns its executor)."""


class HttpClient:
    """Keep-alive HTTP client over asyncio streams (no third-party
    HTTP stack), with a bounded connection pool so concurrent requests
    each get their own connection.

    Args:
        host: Server address.
        port: Server port.
        pool_size: Idle connections retained for reuse.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 pool_size: int = 32) -> None:
        self.host = host
        self.port = port
        self.pool_size = pool_size
        self._idle: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    async def _acquire(self) -> Tuple[asyncio.StreamReader,
                                      asyncio.StreamWriter]:
        if self._idle:
            return self._idle.pop()
        return await asyncio.open_connection(self.host, self.port)

    def _release(self, conn: Tuple[asyncio.StreamReader,
                                   asyncio.StreamWriter]) -> None:
        if len(self._idle) < self.pool_size:
            self._idle.append(conn)
        else:
            conn[1].close()

    async def request(self, method: str, path: str,
                      payload: Optional[Dict[str, Any]] = None
                      ) -> Tuple[int, Dict[str, Any]]:
        """One HTTP exchange; returns ``(status, decoded body)``."""
        body = b"" if payload is None else \
            json.dumps(payload).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: keep-alive\r\n\r\n")
        reader, writer = await self._acquire()
        try:
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
            status, response = await self._read_response(reader)
        except BaseException:  # repro: noqa[RPR007] - close, then re-raise
            writer.close()
            raise
        self._release((reader, writer))
        return status, response

    async def _read_response(self, reader: asyncio.StreamReader
                             ) -> Tuple[int, Dict[str, Any]]:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await reader.readexactly(length) if length else b""
        payload = json.loads(raw.decode("utf-8")) if raw else {}
        return status, payload

    # ------------------------------------------------------------------

    async def solve(self, spec: ScenarioSpec,
                    include_result: bool = True) -> Dict[str, Any]:
        """Submit one scenario over HTTP; payload shape matches
        :meth:`InProcessClient.solve`."""
        body = encode_spec(spec)
        if not include_result:
            body["include_result"] = False
        status, payload = await self.request("POST", "/solve", body)
        payload["http_status"] = status
        return payload

    async def invalidate(self) -> int:
        _, payload = await self.request("POST", "/admin/invalidate")
        return int(payload["version"])

    async def healthz(self) -> Dict[str, Any]:
        _, payload = await self.request("GET", "/healthz")
        return payload

    async def stats(self) -> Dict[str, Any]:
        _, payload = await self.request("GET", "/stats")
        return payload

    async def metrics_text(self) -> str:
        _, payload = await self.request("GET", "/metrics")
        return str(payload.get("text", ""))

    async def close(self) -> None:
        """Close every pooled connection."""
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()
