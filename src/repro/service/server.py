"""Minimal HTTP/1.1 front end for the equilibrium service.

Stdlib-only (``asyncio.start_server`` + hand-rolled request framing —
no third-party web framework), because the repo's container policy is
"no new dependencies" and the protocol surface is deliberately tiny:

====== ==================== =======================================
method path                 semantics
====== ==================== =======================================
GET    /healthz             liveness + cache version
GET    /stats               :meth:`EquilibriumService.stats` JSON
GET    /metrics             Prometheus exposition of the telemetry
                            registry (the load harness scrapes its
                            latency quantiles from here)
POST   /solve               body: :func:`~repro.serving.codec.encode_spec`
                            payload (optionally ``{"include_result":
                            false}`` to omit the equilibrium body);
                            429 + reason when shed
POST   /admin/invalidate    bump the cache version (online parameter
                            update)
POST   /admin/admission     body ``{"max_inflight": N}``: resize the
                            solve-concurrency bound
====== ==================== =======================================

Connections are keep-alive by default (``Connection: close`` honored),
one request at a time per connection; concurrency comes from many
connections multiplexed on the event loop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from ..serving.codec import decode_spec, encode_result
from ..telemetry import TELEMETRY as _TEL
from ..telemetry import render_prometheus
from .service import EquilibriumService, ServiceResponse

__all__ = ["ServiceServer", "response_payload"]

#: Refuse request bodies past this (a spec for 10^6 miners is ~20 MB).
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Refuse header sections past this.
MAX_HEADER_BYTES = 64 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error"}


def response_payload(response: ServiceResponse,
                     include_result: bool = True) -> Dict[str, Any]:
    """JSON body of one ``/solve`` answer (shared with the in-process
    client so both transports expose identical shapes)."""
    if response.status == 429:
        return {"status": "shed", "reason": response.shed_reason,
                "key": response.key, "elapsed": response.elapsed}
    result = response.result
    payload: Dict[str, Any] = {
        "status": "ok" if response.status == 200 else "error",
        "key": response.key,
        "coalesced": response.coalesced,
        "elapsed": response.elapsed,
    }
    if result is not None:
        payload["source"] = result.source
        payload["solver"] = result.solver
        payload["degraded"] = result.degraded
        if result.error is not None:
            payload["error"] = result.error
        elif include_result:
            payload["result"] = encode_result(result.value)
    return payload


class ServiceServer:
    """Asyncio stream server exposing one :class:`EquilibriumService`.

    Args:
        service: The service core requests are routed to.
        host: Bind address (loopback by default).
        port: Bind port; 0 picks a free one (read :attr:`port` after
            :meth:`start`).
    """

    def __init__(self, service: EquilibriumService,
                 host: str = "127.0.0.1", port: int = 8765) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)
        sockets = self._server.sockets or []
        self.port = (sockets[0].getsockname()[1] if sockets
                     else self._requested_port)
        if _TEL.enabled:
            _TEL.emit("service.listening", host=self.host,
                      port=self.port)

    async def stop(self) -> None:
        """Stop accepting, close the listener and every live
        connection (idle keep-alive connections would otherwise pin
        their handler tasks until loop teardown)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)  # let handler tasks observe the EOF

    async def serve_forever(self) -> None:
        """Block until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections.add(writer)
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body = parsed
                status, payload = await self._route(method, path, body)
                keep_alive = headers.get(
                    "connection", "keep-alive").lower() != "close"
                await self._write_response(writer, status, payload,
                                           keep_alive)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            # Client went away mid-request, or the loop is tearing the
            # handler task down — either way there is nothing left to
            # answer on this connection.
            pass
        except Exception as ex:  # repro: noqa[RPR007] — transport
            # boundary: a malformed connection must never take down
            # the accept loop; the error is surfaced to telemetry.
            if _TEL.enabled:
                _TEL.emit("service.connection_error", error=str(ex))
        finally:
            self._connections.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Tuple[str, str,
                                                Dict[str, str], bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between requests
        except asyncio.LimitOverrunError as ex:
            raise ValueError("header section too large") from ex
        if len(head) > MAX_HEADER_BYTES:
            raise ValueError("header section too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise ValueError(f"malformed request line: {lines[0]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            raise ValueError(f"invalid content length {length}")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    async def _write_response(self, writer: asyncio.StreamWriter,
                              status: int, payload: Dict[str, Any],
                              keep_alive: bool) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, Dict[str, Any]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "GET only"}
            cache = self.service.engine.cache
            return 200, {"status": "ok",
                         "version": int(getattr(cache, "version", 0)),
                         "entries": len(cache)}
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "GET only"}
            return 200, self.service.stats()
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "GET only"}
            # Prometheus exposition is text; wrapped in JSON so the
            # transport stays single-format (parse_prometheus on the
            # client side reads payload["text"]).
            return 200, {"text": render_prometheus(_TEL.metrics)}
        if path == "/solve":
            if method != "POST":
                return 405, {"error": "POST only"}
            return await self._route_solve(body)
        if path == "/admin/invalidate":
            if method != "POST":
                return 405, {"error": "POST only"}
            return 200, {"version": self.service.invalidate()}
        if path == "/admin/admission":
            if method != "POST":
                return 405, {"error": "POST only"}
            try:
                payload = json.loads(body.decode("utf-8"))
                self.service.set_max_inflight(
                    int(payload["max_inflight"]))
            except (ValueError, KeyError, TypeError) as ex:
                return 400, {"error": f"bad admission payload: {ex}"}
            return 200, self.service.admission.to_dict()
        return 404, {"error": f"no route for {path}"}

    async def _route_solve(self, body: bytes
                           ) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode("utf-8"))
            include_result = bool(payload.get("include_result", True))
            spec = decode_spec(payload)
        except Exception as ex:  # repro: noqa[RPR007] — request-parse
            # boundary: any malformed body is a 400, never a crash.
            return 400, {"error": f"bad spec payload: "
                                  f"{type(ex).__name__}: {ex}"}
        response = await self.service.handle(spec)
        return response.status, response_payload(
            response, include_result=include_result)
