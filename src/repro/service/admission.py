"""Admission control for the online service: rate + concurrency gates.

Two independent gates, both with explicit shed semantics (a rejected
request gets an immediate 429-style response; nothing blocks forever):

* :class:`TokenBucket` — request-rate limiting. Tokens refill at
  ``rate`` per second up to ``burst``; a request that finds the bucket
  empty is shed with reason ``"rate"``. The clock is injectable, so
  tests drive refills deterministically.
* :class:`AdmissionController` — solve-concurrency limiting. At most
  ``max_inflight`` solves run at once; up to ``max_queue`` further
  requests wait their turn; past that, requests are shed with reason
  ``"queue-full"``. Cache hits and coalesced joins never consume a
  solve slot — backpressure applies to the expensive path only.

Queue depth, inflight count, and shed totals are exported through
:mod:`repro.telemetry` so the load harness and the control plane see
the same numbers the service acts on.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Dict, Optional

from ..exceptions import ConfigurationError
from ..telemetry import TELEMETRY as _TEL

__all__ = ["TokenBucket", "AdmissionController",
           "SHED_RATE", "SHED_QUEUE_FULL"]

#: Shed reasons (stable strings: wire responses and telemetry labels).
SHED_RATE = "rate"
SHED_QUEUE_FULL = "queue-full"


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    Args:
        rate: Sustained tokens (requests) per second.
        burst: Bucket capacity — the largest instantaneous burst
            admitted from a full bucket. Defaults to ``rate``.
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if rate <= 0:
            raise ConfigurationError(
                f"rate must be positive, got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else rate)
        if self.burst < 1:
            raise ConfigurationError(
                f"burst must admit at least one request, got "
                f"{self.burst}")
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._last = self._clock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        now = self._clock()
        elapsed = max(now - self._last, 0.0)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens currently available (as of the last acquire)."""
        return self._tokens


class AdmissionController:
    """Bounded solve concurrency with an explicit wait queue.

    All coordination happens on one event loop (the service's); the
    only cross-thread entry point is :meth:`resize`, which updates the
    bound synchronously and marshals the waiter wake-up onto the loop.

    Args:
        max_inflight: Concurrent solves admitted (>= 1).
        max_queue: Requests allowed to wait for a slot; 0 sheds the
            moment every slot is busy.
        bucket: Optional rate gate applied before the capacity gate.
    """

    def __init__(self, max_inflight: int = 8, max_queue: int = 64,
                 bucket: Optional[TokenBucket] = None) -> None:
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be at least 1, got {max_inflight}")
        if max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be non-negative, got {max_queue}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.bucket = bucket
        self.inflight = 0
        self.queued = 0
        self.admitted = 0
        self.shed: Dict[str, int] = {SHED_RATE: 0, SHED_QUEUE_FULL: 0}
        self._cond: Optional[asyncio.Condition] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def _condition(self) -> asyncio.Condition:
        # Created lazily on the serving loop (constructing the service
        # must not require a running event loop).
        if self._cond is None:
            self._cond = asyncio.Condition()
            self._loop = asyncio.get_running_loop()
        return self._cond

    def _shed(self, reason: str) -> str:
        self.shed[reason] = self.shed.get(reason, 0) + 1
        if _TEL.enabled:
            _TEL.metrics.counter(
                "service_shed_total", "Requests shed by admission "
                "control, by reason", labels={"reason": reason}).inc()
        return reason

    def check_rate(self) -> Optional[str]:
        """Apply the rate gate alone; shed reason or None.

        Called once per request (including cache hits) — rate limiting
        protects the whole front door, not just the solver pool.
        """
        if self.bucket is not None and not self.bucket.try_acquire():
            return self._shed(SHED_RATE)
        return None

    async def acquire(self) -> Optional[str]:
        """Take a solve slot, waiting in the bounded queue if needed.

        Returns ``None`` on admission (pair with :meth:`release`), or
        the shed reason when the queue is full.
        """
        cond = self._condition()
        async with cond:
            if (self.inflight >= self.max_inflight
                    and self.queued >= self.max_queue):
                return self._shed(SHED_QUEUE_FULL)
            self.queued += 1
            self._export_depth()
            try:
                while self.inflight >= self.max_inflight:
                    await cond.wait()
            finally:
                self.queued -= 1
            self.inflight += 1
            self.admitted += 1
            self._export_depth()
        return None

    async def release(self) -> None:
        """Return a solve slot and wake one queued waiter."""
        cond = self._condition()
        async with cond:
            self.inflight = max(self.inflight - 1, 0)
            cond.notify(1)
            self._export_depth()

    def resize(self, max_inflight: int) -> None:
        """Change the concurrency bound (the control plane's seam).

        Safe from any thread: the bound itself changes immediately
        (new arrivals see it); waiters are woken via the service loop
        when one is attached and running.
        """
        if max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be at least 1, got {max_inflight}")
        self.max_inflight = max_inflight
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._notify_waiters)

    def _notify_waiters(self) -> None:
        if self._cond is None:
            return

        async def _wake() -> None:
            cond = self._condition()
            async with cond:
                cond.notify_all()

        asyncio.ensure_future(_wake())

    def _export_depth(self) -> None:
        if _TEL.enabled:
            _TEL.metrics.gauge(
                "service_queue_depth",
                "Requests waiting for a solve slot").set(self.queued)
            _TEL.metrics.gauge(
                "service_inflight", "Solves currently running").set(
                self.inflight)

    def to_dict(self) -> Dict[str, float]:
        """JSON-shaped snapshot for the stats endpoint."""
        return {"max_inflight": float(self.max_inflight),
                "max_queue": float(self.max_queue),
                "inflight": float(self.inflight),
                "queued": float(self.queued),
                "admitted": float(self.admitted),
                "shed_rate": float(self.shed.get(SHED_RATE, 0)),
                "shed_queue_full":
                    float(self.shed.get(SHED_QUEUE_FULL, 0))}
