"""The online equilibrium service: coalescing front end over the engine.

:class:`EquilibriumService` is the asyncio core the HTTP server and
the in-process client both call. One request takes this path:

1. **rate gate** — the optional token bucket sheds over-rate traffic
   with an explicit 429-style response (reason ``"rate"``);
2. **coalescing** — the request's quantized scenario key is probed
   against the in-flight future map; a concurrent duplicate awaits the
   winner's future and shares the *same* result object (one solve per
   unique key, bit-identical answers for every waiter);
3. **cache fast path** — keys already servable from the sharded cache
   are answered inline on the event loop (a memory lookup, no
   executor round-trip, no solve slot consumed);
4. **admitted solve** — misses take a slot from the
   :class:`~repro.service.admission.AdmissionController` (bounded
   queue, ``"queue-full"`` sheds past it) and run
   ``ServingEngine.serve`` on the solver thread pool, registering a
   future other tasks coalesce onto.

The coalescing map is only touched between awaits on the single event
loop, so no lock is needed: a key is either absent, or mapped to the
future of exactly one running solve.

Every stage is observable through :mod:`repro.telemetry` —
``service_requests_total{outcome}``, ``service_coalesced_total``,
``service_request_seconds`` (the histogram the load harness reads its
p50/p95/p99 from), plus the admission gauges — alongside the engine's
own ``serving_*`` metrics.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..exceptions import ConfigurationError
from ..serving.engine import ScenarioResult, ServingEngine
from ..serving.keys import ScenarioSpec
from ..telemetry import TELEMETRY as _TEL
from .admission import AdmissionController, TokenBucket
from .shards import ShardedScenarioCache

__all__ = ["ServiceResponse", "EquilibriumService"]


@dataclass
class ServiceResponse:
    """What one request produced, HTTP-shaped but transport-neutral.

    Attributes:
        status: 200 (served), 429 (shed), or 500 (solve failed).
        result: The engine's :class:`ScenarioResult` (None when shed).
        key: Canonical scenario key ("" when shed before keying).
        coalesced: True when this request shared another request's
            in-flight solve instead of starting its own.
        shed_reason: ``"rate"`` or ``"queue-full"`` on a 429.
        elapsed: Wall-clock seconds from arrival to response,
            including any time queued for a solve slot.
    """

    status: int
    result: Optional[ScenarioResult] = None
    key: str = ""
    coalesced: bool = False
    shed_reason: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == 200


class EquilibriumService:
    """Async facade serving equilibrium scenarios online.

    Args:
        engine: An existing :class:`ServingEngine` to front; mutually
            exclusive with the cache-shaping arguments below.
        n_shards: Shard count of the internally built
            :class:`ShardedScenarioCache`.
        maxsize: Total cache capacity.
        ttl: Cache entry TTL in seconds (None = no expiry).
        cache_dir: Root directory of the per-shard disk layers.
        max_inflight: Concurrent solves admitted.
        max_queue: Requests allowed to wait for a solve slot.
        rate: Sustained requests/second admitted (None = unlimited).
        burst: Token-bucket burst capacity (defaults to ``rate``).
        solver_threads: Width of the solver thread pool. The default
            of 1 keeps warm-start chaining deterministic (solves admit
            in submission order); raise it to trade determinism of the
            warm-start path for solve parallelism.
        clock: Monotonic time source shared by the cache TTL and the
            token bucket (injectable for deterministic tests).
    """

    def __init__(self, engine: Optional[ServingEngine] = None, *,
                 n_shards: int = 8, maxsize: int = 4096,
                 ttl: Optional[float] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 max_inflight: int = 8, max_queue: int = 256,
                 rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 solver_threads: int = 1,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if engine is not None and cache_dir is not None:
            raise ConfigurationError(
                "pass either an existing engine or a cache_dir, not "
                "both")
        if solver_threads < 1:
            raise ConfigurationError(
                f"solver_threads must be at least 1, got "
                f"{solver_threads}")
        self._clock = clock if clock is not None else time.monotonic
        if engine is None:
            cache = ShardedScenarioCache(
                n_shards=n_shards, maxsize=maxsize, cache_dir=cache_dir,
                ttl=ttl, clock=self._clock)
            engine = ServingEngine(cache=cache)
        self.engine = engine
        bucket = (None if rate is None
                  else TokenBucket(rate, burst, clock=self._clock))
        self.admission = AdmissionController(
            max_inflight=max_inflight, max_queue=max_queue,
            bucket=bucket)
        self._executor = ThreadPoolExecutor(
            max_workers=solver_threads,
            thread_name_prefix="repro-service-solver")
        self._inflight: Dict[str, "asyncio.Future[ScenarioResult]"] = {}
        self.requests = 0
        self.coalesced = 0
        self.solves = 0
        self.errors = 0

    # ------------------------------------------------------------------

    def _effective_spec(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Apply the engine's kernel override up front, so the
        coalescing key matches the key the engine will cache under."""
        override = self.engine.kernel_override
        if override is not None and spec.kernel != override:
            return replace(spec, kernel=override)
        return spec

    async def handle(self, spec: ScenarioSpec) -> ServiceResponse:
        """Serve one scenario request end to end."""
        start = time.perf_counter()
        self.requests += 1
        reason = self.admission.check_rate()
        if reason is not None:
            return self._respond(ServiceResponse(
                status=429, shed_reason=reason), start)

        spec = self._effective_spec(spec)
        key = self.engine.key_for(spec)

        pending = self._inflight.get(key)
        if pending is not None:
            self.coalesced += 1
            if _TEL.enabled:
                _TEL.metrics.counter(
                    "service_coalesced_total",
                    "Requests that joined an in-flight solve for the "
                    "same scenario key").inc()
            try:
                result = await asyncio.shield(pending)
            except Exception as ex:  # repro: noqa[RPR007] — the
                # winner's failure must answer every waiter, not crash
                # the transport task.
                return self._respond(ServiceResponse(
                    status=500, key=key,
                    result=ScenarioResult(
                        spec=spec, key=key,
                        error=f"{type(ex).__name__}: {ex}")), start)
            return self._respond(ServiceResponse(
                status=200 if result.ok else 500, result=result,
                key=key, coalesced=True), start)

        if key in self.engine.cache:
            # Servable from memory: answer inline on the event loop (a
            # dict lookup — cheaper than an executor round-trip) and
            # without consuming a solve slot.  The transitive disk-I/O
            # path inside serve() is unreachable here: `key in cache`
            # just proved the in-memory entry exists, so lookup() never
            # falls through to _disk_load().
            result = self.engine.serve(spec)  # repro: noqa[RPR009]
            return self._respond(ServiceResponse(
                status=200 if result.ok else 500, result=result,
                key=key), start)

        reason = await self.admission.acquire()
        if reason is not None:
            return self._respond(ServiceResponse(
                status=429, key=key, shed_reason=reason), start)
        # Re-probe after the queue wait: a duplicate that was admitted
        # first may have solved (and cached) this key meanwhile.
        pending = self._inflight.get(key)
        if pending is not None or key in self.engine.cache:
            await self.admission.release()
            return await self.handle_admitted_duplicate(
                spec, key, pending, start)

        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ScenarioResult]" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await loop.run_in_executor(
                self._executor, self.engine.serve, spec)
            self.solves += 1
            future.set_result(result)
        except BaseException as ex:  # repro: noqa[RPR007] — waiters
            # coalesced onto this future must be answered (or
            # cancelled) no matter how the solve died.
            if isinstance(ex, asyncio.CancelledError):
                future.cancel()
            else:
                future.set_exception(ex)
                future.exception()  # mark retrieved: waiters are optional
            raise
        finally:
            self._inflight.pop(key, None)
            await self.admission.release()
        return self._respond(ServiceResponse(
            status=200 if result.ok else 500, result=result, key=key),
            start)

    async def handle_admitted_duplicate(
            self, spec: ScenarioSpec, key: str,
            pending: Optional["asyncio.Future[ScenarioResult]"],
            start: float) -> ServiceResponse:
        """A request that waited in the admission queue and found its
        key already in flight (or cached) on wake-up: join or re-serve
        rather than double-solving."""
        if pending is not None:
            self.coalesced += 1
            if _TEL.enabled:
                _TEL.metrics.counter(
                    "service_coalesced_total",
                    "Requests that joined an in-flight solve for the "
                    "same scenario key").inc()
            try:
                result = await asyncio.shield(pending)
            except Exception as ex:  # repro: noqa[RPR007] — see the
                # coalescing path above: answer, don't crash.
                return self._respond(ServiceResponse(
                    status=500, key=key,
                    result=ScenarioResult(
                        spec=spec, key=key,
                        error=f"{type(ex).__name__}: {ex}")), start)
        else:
            # Same inline fast path as handle(): this branch is only
            # reached when the re-probe saw the key in the cache, so
            # serve() resolves from memory without touching the disk.
            result = self.engine.serve(spec)  # repro: noqa[RPR009]
        return self._respond(ServiceResponse(
            status=200 if result.ok else 500, result=result, key=key,
            coalesced=pending is not None), start)

    def _respond(self, response: ServiceResponse,
                 start: float) -> ServiceResponse:
        response.elapsed = time.perf_counter() - start
        if response.status == 500:
            self.errors += 1
        if _TEL.enabled:
            outcome = {200: "ok", 429: "shed"}.get(
                response.status, "error")
            _TEL.metrics.counter(
                "service_requests_total", "Service requests by outcome",
                labels={"outcome": outcome}).inc()
            _TEL.metrics.histogram(
                "service_request_seconds",
                "End-to-end request latency, including queueing"
                ).observe(response.elapsed)
        return response

    # ------------------------------------------------------------------
    # Operational seams (control plane, admin endpoints)
    # ------------------------------------------------------------------

    def invalidate(self) -> int:
        """Bump the cache version: every cached equilibrium (memory
        and disk) lazily becomes a miss. The online parameter-update
        path — no restart, no flush pause. Returns the new version."""
        cache = self.engine.cache
        version = cache.invalidate()
        if _TEL.enabled:
            _TEL.emit("service.invalidate", version=version)
        return int(version)

    def set_max_inflight(self, max_inflight: int) -> None:
        """Resize the solve-concurrency bound (thread-safe; the
        control plane's admission actuator seam)."""
        self.admission.resize(max_inflight)

    @property
    def max_inflight(self) -> int:
        return self.admission.max_inflight

    def stats(self) -> Dict[str, Any]:
        """JSON-shaped operational snapshot for the stats endpoint."""
        cache = self.engine.cache
        cache_info: Dict[str, Any]
        if isinstance(cache, ShardedScenarioCache):
            cache_info = cache.to_dict()
        else:
            cache_info = {"maxsize": cache.maxsize,
                          "entries": len(cache),
                          "version": getattr(cache, "version", 0),
                          "stats": cache.stats.to_dict()}
        return {"requests": self.requests,
                "coalesced": self.coalesced,
                "solves": self.solves,
                "errors": self.errors,
                "inflight_keys": len(self._inflight),
                "admission": self.admission.to_dict(),
                "cache": cache_info}

    def close(self) -> None:
        """Shut down the solver thread pool (idempotent)."""
        self._executor.shutdown(wait=True, cancel_futures=True)
