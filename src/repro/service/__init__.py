"""Online equilibrium serving: an asyncio service over the engine.

Where :mod:`repro.serving` answers *batches* (one caller, many
scenarios), this subpackage answers *traffic* (many concurrent
callers, overlapping scenarios) — the paper's edge-cloud operator run
as a long-lived service:

* :mod:`repro.service.service` — :class:`EquilibriumService`, the
  asyncio core: request coalescing (concurrent duplicates share one
  solve via a future map), admission control with explicit shedding,
  and a solver thread pool behind the event loop;
* :mod:`repro.service.admission` — :class:`TokenBucket` rate limiting
  plus the bounded-queue :class:`AdmissionController`;
* :mod:`repro.service.shards` — :class:`ShardedScenarioCache`: N
  :class:`~repro.serving.cache.ScenarioCache` shards with TTL and
  versioned invalidation for online parameter updates;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  stdlib asyncio-streams HTTP front end and matching clients (HTTP
  and in-process);
* :mod:`repro.service.loadgen` — the seeded 10^5–10^6-request load
  harness with SLO verdicts from the telemetry histograms.

Quickstart::

    import asyncio
    from repro import homogeneous, Prices
    from repro.serving import ScenarioSpec
    from repro.service import EquilibriumService, InProcessClient

    async def main():
        service = EquilibriumService(max_inflight=4, ttl=300.0)
        client = InProcessClient(service)
        spec = ScenarioSpec(
            homogeneous(5, 200.0, reward=1500.0, fork_rate=0.2, h=0.8),
            Prices(2.0, 1.0))
        payload = await client.solve(spec)
        print(payload["status"], payload["key"])
        service.close()

    asyncio.run(main())
"""

from .admission import (SHED_QUEUE_FULL, SHED_RATE, AdmissionController,
                        TokenBucket)
from .client import HttpClient, InProcessClient
from .loadgen import (LoadPlan, LoadReport, quantiles_from_prometheus,
                      request_indices, run_load, scenario_pool)
from .server import ServiceServer, response_payload
from .service import EquilibriumService, ServiceResponse
from .shards import ShardedScenarioCache, shard_index

__all__ = [
    "AdmissionController",
    "EquilibriumService",
    "HttpClient",
    "InProcessClient",
    "LoadPlan",
    "LoadReport",
    "SHED_QUEUE_FULL",
    "SHED_RATE",
    "ServiceResponse",
    "ServiceServer",
    "ShardedScenarioCache",
    "TokenBucket",
    "quantiles_from_prometheus",
    "request_indices",
    "response_payload",
    "run_load",
    "scenario_pool",
    "shard_index",
]
