"""Seeded load-generation harness for the online service.

Replays 10^5–10^6 scenario requests against an
:class:`~repro.service.client.InProcessClient` or
:class:`~repro.service.client.HttpClient` and reports latency
quantiles **from the telemetry histograms** (the service's own
``service_request_seconds``), not from client-side stopwatches — the
numbers in the report are the numbers the control plane acts on.

The request stream is deterministic in its seed:

* a pool of ``unique`` distinct miner-stage scenarios (seeded budget
  draws around the paper's canonical setup);
* a key mix — ``"zipf"`` (rank-frequency ``1/r^a``, the classic
  hot-key cache workload) or ``"uniform"``;
* a burst pattern: requests are launched ``burst`` at a time and
  awaited together, so every wave exercises coalescing and admission
  concurrently rather than serially.

SLO targets (p50/p95/p99 upper bounds in seconds) are part of the
plan; the report records each target, the measured quantile, and the
overall verdict.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..core import Prices, homogeneous
from ..exceptions import ConfigurationError
from ..serving.keys import ScenarioSpec
from ..telemetry import TELEMETRY as _TEL
from ..telemetry import parse_prometheus, quantile_from_counts
from .client import HttpClient, InProcessClient

__all__ = ["LoadPlan", "LoadReport", "scenario_pool",
           "request_indices", "run_load", "quantiles_from_prometheus"]

#: The histogram the latency SLO is measured on.
LATENCY_METRIC = "service_request_seconds"

Client = Union[InProcessClient, HttpClient]


@dataclass(frozen=True)
class LoadPlan:
    """One reproducible load-run specification.

    Attributes:
        requests: Total requests to replay.
        unique: Distinct scenarios in the pool (the working-set size).
        mix: ``"zipf"`` or ``"uniform"`` key-popularity mix.
        zipf_a: Zipf exponent (larger = hotter hot keys).
        burst: Requests launched concurrently per wave.
        seed: Seed for the scenario pool and the request stream.
        n_miners: Miner count of every pooled scenario.
        include_result: Ship full equilibrium bodies back (off by
            default: the harness measures serving, not serialization).
        slo_p50/slo_p95/slo_p99: Latency SLO upper bounds in seconds
            (None = not asserted).
    """

    requests: int = 100_000
    unique: int = 64
    mix: str = "zipf"
    zipf_a: float = 1.2
    burst: int = 64
    seed: int = 7
    n_miners: int = 5
    include_result: bool = False
    slo_p50: Optional[float] = None
    slo_p95: Optional[float] = None
    slo_p99: Optional[float] = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigurationError(
                f"requests must be positive, got {self.requests}")
        if self.unique < 1:
            raise ConfigurationError(
                f"unique must be positive, got {self.unique}")
        if self.burst < 1:
            raise ConfigurationError(
                f"burst must be positive, got {self.burst}")
        if self.mix not in ("zipf", "uniform"):
            raise ConfigurationError(
                f"mix must be 'zipf' or 'uniform', got {self.mix!r}")


@dataclass
class LoadReport:
    """What one load run measured (JSON-shaped via :meth:`to_dict`)."""

    plan: LoadPlan
    requests: int = 0
    ok: int = 0
    errors: int = 0
    shed: Dict[str, int] = field(default_factory=dict)
    coalesced: int = 0
    sources: Dict[str, int] = field(default_factory=dict)
    unique_keys: int = 0
    unique_ok_keys: int = 0
    solves: int = 0
    elapsed_seconds: float = 0.0
    p50: float = float("nan")
    p95: float = float("nan")
    p99: float = float("nan")

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def rps(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def slo_checks(self) -> List[Dict[str, Any]]:
        """One record per configured SLO target: bound, measured, ok."""
        checks: List[Dict[str, Any]] = []
        for name, bound, measured in (
                ("p50", self.plan.slo_p50, self.p50),
                ("p95", self.plan.slo_p95, self.p95),
                ("p99", self.plan.slo_p99, self.p99)):
            if bound is None:
                continue
            ok = bool(np.isfinite(measured) and measured <= bound)
            checks.append({"quantile": name, "bound": bound,
                           "measured": measured, "ok": ok})
        return checks

    @property
    def slo_ok(self) -> bool:
        return all(c["ok"] for c in self.slo_checks())

    @property
    def failed(self) -> bool:
        """Harness verdict: any error, or any SLO target missed."""
        return self.errors > 0 or not self.slo_ok

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan": {"requests": self.plan.requests,
                     "unique": self.plan.unique, "mix": self.plan.mix,
                     "zipf_a": self.plan.zipf_a,
                     "burst": self.plan.burst, "seed": self.plan.seed,
                     "n_miners": self.plan.n_miners},
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "shed": dict(self.shed),
            "shed_total": self.shed_total,
            "coalesced": self.coalesced,
            "sources": dict(self.sources),
            "unique_keys": self.unique_keys,
            "unique_ok_keys": self.unique_ok_keys,
            "solves": self.solves,
            "elapsed_seconds": self.elapsed_seconds,
            "rps": self.rps,
            "latency": {"p50": self.p50, "p95": self.p95,
                        "p99": self.p99},
            "slo": self.slo_checks(),
            "slo_ok": self.slo_ok,
            "failed": self.failed,
        }


def scenario_pool(plan: LoadPlan) -> List[ScenarioSpec]:
    """The plan's ``unique`` distinct miner-stage scenarios.

    Budgets are drawn from a seeded RNG around the paper's canonical
    connected-mode setup, so every pooled scenario is a cheap, real
    solve and any two plans with the same seed share the pool exactly.
    """
    rng = np.random.default_rng(plan.seed)
    budgets = 150.0 + 400.0 * rng.random(plan.unique)
    prices = Prices(p_e=2.0, p_c=1.0)
    return [
        ScenarioSpec(
            params=homogeneous(plan.n_miners, float(b), reward=1500.0,
                               fork_rate=0.2, h=0.8),
            prices=prices, label=f"loadgen-{i}")
        for i, b in enumerate(budgets)]


def request_indices(plan: LoadPlan) -> np.ndarray:
    """The seeded request stream: pool indices, one per request."""
    rng = np.random.default_rng(plan.seed + 1)
    if plan.mix == "uniform":
        return rng.integers(0, plan.unique, size=plan.requests)
    ranks = np.arange(1, plan.unique + 1, dtype=float)
    weights = ranks ** (-plan.zipf_a)
    weights /= weights.sum()
    return rng.choice(plan.unique, size=plan.requests, p=weights)


def quantiles_from_prometheus(text: str, metric: str = LATENCY_METRIC
                              ) -> Tuple[float, float, float]:
    """p50/p95/p99 of one histogram family in scraped exposition text.

    Rebuilds per-bucket counts from the cumulative ``_bucket`` samples
    and runs the same interpolated estimator the registry uses, so the
    HTTP path reports identical quantiles to the in-process path.
    """
    cumulative: List[Tuple[float, int]] = []
    total = 0
    for sample in parse_prometheus(text):
        if sample["name"] == f"{metric}_bucket":
            bound_text = sample["labels"].get("le", "")
            if bound_text == "+Inf":
                total = int(sample["value"])
            else:
                cumulative.append((float(bound_text),
                                   int(sample["value"])))
    if not cumulative:
        return float("nan"), float("nan"), float("nan")
    cumulative.sort(key=lambda pair: pair[0])
    bounds = tuple(bound for bound, _ in cumulative)
    per_bucket: List[int] = []
    previous = 0
    for _, cum in cumulative:
        per_bucket.append(max(cum - previous, 0))
        previous = cum
    per_bucket.append(max(total - previous, 0))
    return (quantile_from_counts(bounds, per_bucket, total, 0.50),
            quantile_from_counts(bounds, per_bucket, total, 0.95),
            quantile_from_counts(bounds, per_bucket, total, 0.99))


async def run_load(client: Client, plan: LoadPlan) -> LoadReport:
    """Replay the plan against a client; returns the measured report.

    Latency quantiles come from the service's telemetry histogram —
    read live for the in-process transport, scraped from ``/metrics``
    for HTTP — so both transports report the server-side view.
    """
    pool = scenario_pool(plan)
    stream = request_indices(plan)
    report = LoadReport(plan=plan)
    seen_keys: Set[str] = set()
    seen_ok_keys: Set[str] = set()
    start = time.perf_counter()

    async def one(index: int) -> Dict[str, Any]:
        return await client.solve(pool[index],
                                  include_result=plan.include_result)

    for wave_start in range(0, plan.requests, plan.burst):
        wave = stream[wave_start:wave_start + plan.burst]
        payloads = await asyncio.gather(*(one(int(i)) for i in wave))
        for payload in payloads:
            report.requests += 1
            status = payload.get("status")
            if status == "ok":
                report.ok += 1
            elif status == "shed":
                reason = str(payload.get("reason"))
                report.shed[reason] = report.shed.get(reason, 0) + 1
            else:
                report.errors += 1
            coalesced = bool(payload.get("coalesced"))
            if coalesced:
                report.coalesced += 1
            source = payload.get("source")
            if source is not None:
                report.sources[source] = \
                    report.sources.get(source, 0) + 1
                # Coalesced payloads carry the winner's result object
                # (source "solved"), but only the winner ran a solve.
                if source == "solved" and not coalesced:
                    report.solves += 1
            key = payload.get("key")
            if key:
                seen_keys.add(key)
                if status == "ok":
                    seen_ok_keys.add(key)

    report.elapsed_seconds = time.perf_counter() - start
    report.unique_keys = len(seen_keys)
    report.unique_ok_keys = len(seen_ok_keys)
    if isinstance(client, InProcessClient):
        hist = _TEL.metrics.histogram(
            LATENCY_METRIC,
            "End-to-end request latency, including queueing")
        report.p50, report.p95, report.p99 = (hist.p50, hist.p95,
                                              hist.p99)
    else:
        text = await client.metrics_text()
        report.p50, report.p95, report.p99 = \
            quantiles_from_prometheus(text)
    return report
