"""Sharded scenario cache: N hash-partitioned LRU shards, one facade.

:class:`ShardedScenarioCache` presents the exact
:class:`~repro.serving.cache.ScenarioCache` surface the serving engine
and the control plane already program against, but spreads entries
over ``n_shards`` independent :class:`ScenarioCache` shards selected
by a stable CRC-32 of the scenario key. Under the online service this
buys two things:

* **lock spreading** — each shard has its own lock, so concurrent
  solver threads admitting results and the event loop probing
  membership contend on ``1/n_shards`` of the keyspace instead of one
  global lock;
* **uniform TTL / versioned invalidation** — every shard shares the
  facade's ``ttl`` and version counter, so one
  :meth:`~ShardedScenarioCache.invalidate` call retires the entire
  keyspace (memory and disk) without a cold restart and without an
  O(entries) pause.

Shard selection uses ``zlib.crc32`` rather than :func:`hash` so the
partition is stable across processes and ``PYTHONHASHSEED`` values —
a persisted shard directory written by one server is readable by the
next.
"""

from __future__ import annotations

import time
import zlib
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, List, Optional,
                    Tuple, Union)

from ..exceptions import ConfigurationError
from ..serving.cache import CacheStats, ScenarioCache

__all__ = ["ShardedScenarioCache", "shard_index"]


def shard_index(key: str, n_shards: int) -> int:
    """Stable shard assignment of a scenario key (CRC-32 mod shards)."""
    return zlib.crc32(key.encode("utf-8")) % n_shards


class ShardedScenarioCache:
    """Hash-partitioned scenario cache, drop-in for ``ScenarioCache``.

    Args:
        n_shards: Number of independent LRU shards (>= 1).
        maxsize: Total in-memory capacity; distributed evenly over the
            shards (each shard gets at least one entry, so the
            effective capacity is ``max(n_shards, maxsize)``).
        cache_dir: Root of the JSON persistence layer; each shard
            persists under ``cache_dir/shard-<i>``. ``None`` keeps the
            cache memory-only.
        ttl: Seconds an entry stays servable; ``None`` disables expiry.
        clock: Monotonic time source shared by every shard (injectable
            for deterministic TTL tests).
    """

    def __init__(self, n_shards: int = 8, maxsize: int = 4096,
                 cache_dir: Optional[Union[str, Path]] = None,
                 ttl: Optional[float] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be at least 1, got {n_shards}")
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be at least 1, got {maxsize}")
        self.n_shards = n_shards
        self._maxsize = maxsize
        self.cache_dir = None if cache_dir is None else Path(cache_dir)
        self._clock = clock if clock is not None else time.monotonic
        per_shard = self._per_shard_bound(maxsize)
        self._shards: List[ScenarioCache] = [
            ScenarioCache(
                maxsize=per_shard,
                cache_dir=(None if self.cache_dir is None
                           else self.cache_dir / f"shard-{i}"),
                ttl=ttl, clock=self._clock)
            for i in range(n_shards)]

    def _per_shard_bound(self, total: int) -> int:
        return max(1, -(-total // self.n_shards))  # ceil division

    def shard_for(self, key: str) -> ScenarioCache:
        """The shard that owns ``key``."""
        return self._shards[shard_index(key, self.n_shards)]

    # ------------------------------------------------------------------
    # ScenarioCache surface (what the engine and control plane use)
    # ------------------------------------------------------------------

    @property
    def maxsize(self) -> int:
        """Configured total capacity (the control plane's resize seam
        reads and assigns this like a plain attribute)."""
        return self._maxsize

    @maxsize.setter
    def maxsize(self, value: int) -> None:
        # Attribute assignment mirrors ScenarioCache semantics: the
        # bound changes without immediate eviction (restore paths pair
        # it with restore_entries); resize() is the evicting form.
        self._maxsize = value
        per_shard = self._per_shard_bound(max(value, 1))
        for shard in self._shards:
            shard.maxsize = per_shard

    @property
    def ttl(self) -> Optional[float]:
        """Shared per-entry TTL in seconds (None = no expiry)."""
        return self._shards[0].ttl

    @ttl.setter
    def ttl(self, value: Optional[float]) -> None:
        for shard in self._shards:
            shard.ttl = value

    @property
    def version(self) -> int:
        """Current cache version (bumped by :meth:`invalidate`)."""
        return self._shards[0].version

    @property
    def stats(self) -> CacheStats:
        """Aggregated counters over every shard (fresh snapshot)."""
        total = CacheStats()
        for shard in self._shards:
            s = shard.stats
            total.hits += s.hits
            total.disk_hits += s.disk_hits
            total.misses += s.misses
            total.evictions += s.evictions
            total.puts += s.puts
            total.expired += s.expired
        return total

    def lookup(self, key: str) -> Tuple[Optional[Any], str]:
        """Per-shard lookup; returns ``(value, layer)`` like the flat
        cache."""
        return self.shard_for(key).lookup(key)

    def get(self, key: str) -> Optional[Any]:
        """Look up a result, refreshing its LRU position. None on miss."""
        return self.lookup(key)[0]

    def meta(self, key: str) -> Optional[Dict[str, Any]]:
        """Metadata stored alongside an in-memory entry (None if absent)."""
        return self.shard_for(key).meta(key)

    def put(self, key: str, value: Any,
            meta: Optional[Dict[str, Any]] = None) -> None:
        """Store a result in the owning shard (and its disk layer)."""
        self.shard_for(key).put(key, value, meta=meta)

    def resize(self, maxsize: int) -> int:
        """Change the total capacity; returns entries evicted now."""
        if maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be at least 1, got {maxsize}")
        self._maxsize = maxsize
        per_shard = self._per_shard_bound(maxsize)
        return sum(shard.resize(per_shard) for shard in self._shards)

    def invalidate(self) -> int:
        """Bump every shard's version in lockstep; returns the new
        version. Entries admitted before the bump (memory and disk)
        lazily become misses — the online parameter-update path."""
        version = 0
        for shard in self._shards:
            version = shard.invalidate()
        return version

    def snapshot_entries(self) -> List[Any]:
        """Per-shard entry snapshots (the control plane's rollback
        seam; pair with :meth:`restore_entries`)."""
        return [shard.snapshot_entries() for shard in self._shards]

    def restore_entries(self, entries: List[Any]) -> None:
        """Replace every shard's entries with a prior snapshot."""
        if len(entries) != self.n_shards:
            raise ConfigurationError(
                f"snapshot has {len(entries)} shards, cache has "
                f"{self.n_shards}")
        for shard, snap in zip(self._shards, entries):
            shard.restore_entries(snap)

    def __contains__(self, key: str) -> bool:
        return key in self.shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Snapshot of ``(key, value)`` pairs across all shards."""
        pairs: List[Tuple[str, Any]] = []
        for shard in self._shards:
            pairs.extend(shard.items())
        return iter(pairs)

    def clear(self, disk: bool = False) -> None:
        """Drop all in-memory entries; optionally the disk layers too."""
        for shard in self._shards:
            shard.clear(disk=disk)

    # ------------------------------------------------------------------

    def shard_sizes(self) -> List[int]:
        """Entry count per shard (balance diagnostics for /stats)."""
        return [len(shard) for shard in self._shards]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped summary for the service's stats endpoint."""
        return {"n_shards": self.n_shards, "maxsize": self.maxsize,
                "ttl": self.ttl, "version": self.version,
                "entries": len(self), "shard_sizes": self.shard_sizes(),
                "stats": self.stats.to_dict()}
