"""Offloading request/response protocol objects.

Miners submit :class:`ResourceRequest` vectors ``r_i = [e_i, c_i]``; the
providers answer with :class:`Allocation` records describing what actually
ran where — which is what distinguishes the two edge operation modes
(transfer vs. reject) at the substrate level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["ResourceRequest", "Allocation", "ResponseStatus"]


class ResponseStatus(enum.Enum):
    """How the ESP handled the edge part of a request."""

    SATISFIED = "satisfied"       # ran on the ESP as requested
    TRANSFERRED = "transferred"   # connected mode: moved to the CSP
    REJECTED = "rejected"         # standalone mode: dropped
    EMPTY = "empty"               # no edge units were requested
    FAILED = "failed"             # dropped after exhausting retries


@dataclass(frozen=True)
class ResourceRequest:
    """A miner's request vector ``r_i = [e_i, c_i]``.

    Attributes:
        miner_id: Requesting miner.
        edge_units: Units requested from the ESP (``e_i``).
        cloud_units: Units requested from the CSP (``c_i``).
    """

    miner_id: int
    edge_units: float
    cloud_units: float

    def __post_init__(self) -> None:
        if self.miner_id < 0:
            raise ConfigurationError("miner_id must be non-negative")
        if self.edge_units < 0 or self.cloud_units < 0:
            raise ConfigurationError("requested units must be non-negative")

    @property
    def total_units(self) -> float:
        return self.edge_units + self.cloud_units

    def cost(self, p_e: float, p_c: float) -> float:
        """Nominal cost of the request at the quoted prices."""
        return p_e * self.edge_units + p_c * self.cloud_units


@dataclass(frozen=True)
class Allocation:
    """What the SPs actually provisioned for one request.

    Attributes:
        request: The originating request.
        status: How the edge part was handled.
        edge_units: Units that actually run at the ESP.
        cloud_units: Units that actually run at the CSP (includes
            transferred edge units in connected mode).
        edge_charge: Amount billed by the ESP.
        cloud_charge: Amount billed by the CSP.
    """

    request: ResourceRequest
    status: ResponseStatus
    edge_units: float
    cloud_units: float
    edge_charge: float
    cloud_charge: float

    def __post_init__(self) -> None:
        if self.edge_units < 0 or self.cloud_units < 0:
            raise ConfigurationError("allocated units must be non-negative")
        if self.edge_charge < 0 or self.cloud_charge < 0:
            raise ConfigurationError("charges must be non-negative")

    @property
    def total_charge(self) -> float:
        return self.edge_charge + self.cloud_charge

    @property
    def total_units(self) -> float:
        return self.edge_units + self.cloud_units
