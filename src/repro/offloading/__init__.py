"""Edge/cloud offloading substrate: providers, dispatch under the two edge
operation modes, billing ledgers, and the priced market the RL framework
trains against."""

from .accounting import (EpochStatement, Invoice, InvoiceLine,
                         build_invoices, build_statement)
from .dispatcher import Dispatcher
from .market import MarketRound, OffloadingMarket
from .provider import CloudProvider, EdgeProvider, ProviderAccount
from .request import Allocation, ResourceRequest, ResponseStatus

__all__ = [
    "EpochStatement",
    "Invoice",
    "InvoiceLine",
    "build_invoices",
    "build_statement",
    "Dispatcher",
    "MarketRound",
    "OffloadingMarket",
    "CloudProvider",
    "EdgeProvider",
    "ProviderAccount",
    "Allocation",
    "ResourceRequest",
    "ResponseStatus",
]
