"""Billing statements: per-epoch invoices for miners and SP ledgers.

The market settles continuously through the provider accounts; this
module adds the bookkeeping a deployed system would expose — per-miner
invoices itemized by venue and disposition (served / transferred /
rejected), epoch statements for the SPs, and a renderer for human
inspection. Everything is derived from the
:class:`~repro.offloading.request.Allocation` records, so the invariants
(invoice totals == provider revenue) are checkable and checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..exceptions import ConfigurationError
from .request import Allocation, ResponseStatus

__all__ = ["InvoiceLine", "Invoice", "EpochStatement", "build_invoices",
           "build_statement"]


@dataclass(frozen=True)
class InvoiceLine:
    """One itemized charge on a miner's invoice.

    Attributes:
        venue: ``"edge"`` or ``"cloud"``.
        disposition: How the units were handled (served/transferred/...).
        units: Computing units billed.
        unit_price: Price per unit applied.
        amount: ``units * unit_price``.
    """

    venue: str
    disposition: str
    units: float
    unit_price: float
    amount: float


@dataclass
class Invoice:
    """A miner's invoice for one provisioning epoch.

    Attributes:
        miner_id: The billed miner.
        lines: Itemized charges.
    """

    miner_id: int
    lines: List[InvoiceLine] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(line.amount for line in self.lines)

    def render(self) -> str:
        """Human-readable invoice."""
        out = [f"Invoice — miner {self.miner_id}"]
        for line in self.lines:
            out.append(
                f"  {line.venue:5s} {line.disposition:12s} "
                f"{line.units:10.3f} u @ {line.unit_price:.4f} = "
                f"{line.amount:10.4f}")
        out.append(f"  {'total':32s}{self.total:17.4f}")
        return "\n".join(out)


@dataclass(frozen=True)
class EpochStatement:
    """SP-side settlement summary of one epoch.

    Attributes:
        esp_units: Units the ESP actually served.
        esp_revenue: ESP revenue.
        csp_units: Units the CSP served (incl. transferred overflow).
        csp_revenue: CSP revenue.
        transferred_units: Edge units rerouted to the CSP (connected).
        rejected_units: Edge units dropped (standalone).
    """

    esp_units: float
    esp_revenue: float
    csp_units: float
    csp_revenue: float
    transferred_units: float
    rejected_units: float

    @property
    def total_revenue(self) -> float:
        return self.esp_revenue + self.csp_revenue


def build_invoices(allocations: Sequence[Allocation],
                   p_e: float, p_c: float) -> Dict[int, Invoice]:
    """Itemized invoices per miner from an epoch's allocations.

    The invoice totals always equal the allocations' recorded charges
    (asserted here — a billing mismatch is a bug, not data).
    """
    if p_e <= 0 or p_c <= 0:
        raise ConfigurationError("prices must be positive")
    invoices: Dict[int, Invoice] = {}
    for alloc in allocations:
        inv = invoices.setdefault(alloc.request.miner_id,
                                  Invoice(alloc.request.miner_id))
        if alloc.edge_units > 0:
            inv.lines.append(InvoiceLine(
                venue="edge", disposition="served",
                units=alloc.edge_units, unit_price=p_e,
                amount=alloc.edge_units * p_e))
        requested_cloud = alloc.request.cloud_units
        if requested_cloud > 0:
            inv.lines.append(InvoiceLine(
                venue="cloud", disposition="served",
                units=requested_cloud, unit_price=p_c,
                amount=requested_cloud * p_c))
        moved = alloc.cloud_units - requested_cloud
        if moved > 1e-12:
            inv.lines.append(InvoiceLine(
                venue="cloud", disposition="transferred",
                units=moved, unit_price=p_c, amount=moved * p_c))
        if alloc.status is ResponseStatus.REJECTED \
                and alloc.request.edge_units > 0:
            inv.lines.append(InvoiceLine(
                venue="edge", disposition="rejected",
                units=alloc.request.edge_units, unit_price=p_e,
                amount=0.0))
        recorded = alloc.total_charge
        if abs(inv_total_for(alloc, p_e, p_c) - recorded) > 1e-6 * max(
                recorded, 1.0):
            raise ConfigurationError(
                f"billing mismatch for miner {alloc.request.miner_id}: "
                f"itemized {inv_total_for(alloc, p_e, p_c):.6f} vs "
                f"recorded {recorded:.6f}")
    return invoices


def inv_total_for(alloc: Allocation, p_e: float, p_c: float) -> float:
    """Itemized total implied by one allocation."""
    return alloc.edge_units * p_e + alloc.cloud_units * p_c


def build_statement(allocations: Sequence[Allocation], p_e: float,
                    p_c: float) -> EpochStatement:
    """SP-side epoch settlement derived from the allocations."""
    esp_units = sum(a.edge_units for a in allocations)
    csp_units = sum(a.cloud_units for a in allocations)
    transferred = sum(a.cloud_units - a.request.cloud_units
                      for a in allocations
                      if a.status is ResponseStatus.TRANSFERRED)
    rejected = sum(a.request.edge_units for a in allocations
                   if a.status is ResponseStatus.REJECTED)
    return EpochStatement(
        esp_units=esp_units, esp_revenue=esp_units * p_e,
        csp_units=csp_units, csp_revenue=csp_units * p_c,
        transferred_units=transferred, rejected_units=rejected)
