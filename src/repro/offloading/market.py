"""The offloading market: ties providers, dispatch, and mining together.

:class:`OffloadingMarket` runs full *market rounds*: miners submit request
vectors, the dispatcher realizes allocations under the configured edge
mode, and a mining round is played on the realized unit pools. This is the
substrate the RL framework (Section VI-C) trains against, and the bridge
between the analytical game and the blockchain simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..blockchain.simulator import RoundSimulator
from ..exceptions import ConfigurationError
from .dispatcher import Dispatcher
from .provider import CloudProvider, EdgeProvider
from .request import Allocation, ResourceRequest

__all__ = ["MarketRound", "OffloadingMarket"]


@dataclass
class MarketRound:
    """Outcome of one market round (one block).

    Attributes:
        allocations: Realized allocation per miner.
        winner: Miner id that won the block reward.
        payoffs: Per-miner realized payoff ``R·1{win} - spending``.
        esp_revenue: ESP revenue this round.
        csp_revenue: CSP revenue this round.
    """

    allocations: List[Allocation]
    winner: int
    payoffs: np.ndarray
    esp_revenue: float
    csp_revenue: float


class OffloadingMarket:
    """A priced edge/cloud market over repeated mining rounds.

    Args:
        edge: The ESP (mode encoded by its ``capacity``).
        cloud: The CSP.
        reward: Block reward ``R``.
        fork_rate: Fork rate ``β`` applied to cloud-solved blocks.
        seed: RNG seed for the mining round draws.
    """

    def __init__(self, edge: EdgeProvider, cloud: CloudProvider,
                 reward: float, fork_rate: float, seed: int = 0) -> None:
        if reward <= 0:
            raise ConfigurationError("reward must be positive")
        if not 0.0 <= fork_rate < 1.0:
            raise ConfigurationError("fork rate must be in [0, 1)")
        self.edge = edge
        self.cloud = cloud
        self.dispatcher = Dispatcher(edge, cloud)
        self.reward = reward
        self.fork_rate = fork_rate
        self._seed = seed
        self._round_counter = 0

    def play_round(self,
                   requests: Sequence[ResourceRequest]) -> MarketRound:
        """Dispatch requests, mine one block, and settle payoffs.

        The mining race runs on the *realized* pools: transferred units
        mine from the cloud (suffering its delay), rejected units do not
        mine at all.
        """
        if len(requests) == 0:
            raise ConfigurationError("a round needs at least one request")
        allocations = self.dispatcher.dispatch_all(requests)
        e = np.array([a.edge_units for a in allocations])
        c = np.array([a.cloud_units for a in allocations])
        if float(np.sum(e + c)) <= 0:
            raise ConfigurationError(
                "no computing units were provisioned this round")
        self._round_counter += 1
        sim = RoundSimulator(e, c, self.fork_rate,
                             seed=self._seed + self._round_counter)
        tally = sim.run(1)
        winner = int(np.argmax(tally.wins))
        payoffs = -np.array([a.total_charge for a in allocations])
        payoffs[winner] += self.reward
        esp_revenue = float(sum(a.edge_charge for a in allocations))
        csp_revenue = float(sum(a.cloud_charge for a in allocations))
        return MarketRound(allocations=allocations, winner=winner,
                           payoffs=payoffs, esp_revenue=esp_revenue,
                           csp_revenue=csp_revenue)
