"""Request dispatch implementing the two edge operation modes of Fig. 1.

The dispatcher receives each miner's request vector and produces an
:class:`~repro.offloading.request.Allocation`:

* **connected** — edge units run at the ESP with probability ``h``, else
  they are *automatically transferred* to the CSP (arrow (3) of Fig. 1);
  billing follows the executing provider.
* **standalone** — edge units are admitted first-come-first-served against
  ``E_max``; on overload the edge part is rejected (the miner keeps only
  its cloud part and pays nothing for the rejected units).
"""

from __future__ import annotations

from typing import Iterable, List

from .provider import CloudProvider, EdgeProvider
from .request import Allocation, ResourceRequest, ResponseStatus

__all__ = ["Dispatcher"]


class Dispatcher:
    """Routes miner requests to the ESP/CSP according to the edge mode."""

    def __init__(self, edge: EdgeProvider,
                 cloud: CloudProvider) -> None:
        self.edge = edge
        self.cloud = cloud

    def dispatch(self, request: ResourceRequest) -> Allocation:
        """Dispatch one request and return the realized allocation."""
        if request.edge_units <= 0.0:
            cloud_charge = self.cloud.provision(request.cloud_units)
            return Allocation(request=request, status=ResponseStatus.EMPTY,
                              edge_units=0.0,
                              cloud_units=request.cloud_units,
                              edge_charge=0.0, cloud_charge=cloud_charge)
        if self.edge.standalone:
            return self._dispatch_standalone(request)
        return self._dispatch_connected(request)

    def _dispatch_connected(self, request: ResourceRequest) -> Allocation:
        if self.edge.sample_satisfaction():
            edge_charge = self.edge.admit(request.edge_units)
            cloud_charge = self.cloud.provision(request.cloud_units)
            return Allocation(request=request,
                              status=ResponseStatus.SATISFIED,
                              edge_units=request.edge_units,
                              cloud_units=request.cloud_units,
                              edge_charge=edge_charge,
                              cloud_charge=cloud_charge)
        # Automatic transfer: the edge request runs at the CSP and is
        # billed at the CSP price (the ESP forfeits the sale).
        moved = request.edge_units
        cloud_charge = self.cloud.provision(request.cloud_units + moved)
        return Allocation(request=request,
                          status=ResponseStatus.TRANSFERRED,
                          edge_units=0.0,
                          cloud_units=request.cloud_units + moved,
                          edge_charge=0.0, cloud_charge=cloud_charge)

    def _dispatch_standalone(self, request: ResourceRequest) -> Allocation:
        # try_admit bills through the provider's ledger; read the charge
        # back off the revenue delta so both modes share one billing path
        # and the allocation can never drift from the ESP's accounting.
        billed_before = self.edge.account.revenue
        if self.edge.try_admit(request.edge_units):
            edge_charge = self.edge.account.revenue - billed_before
            cloud_charge = self.cloud.provision(request.cloud_units)
            return Allocation(request=request,
                              status=ResponseStatus.SATISFIED,
                              edge_units=request.edge_units,
                              cloud_units=request.cloud_units,
                              edge_charge=edge_charge,
                              cloud_charge=cloud_charge)
        # Rejection: the edge part is dropped entirely (Eq. 8 semantics);
        # the miner keeps only its cloud request.
        cloud_charge = self.cloud.provision(request.cloud_units)
        return Allocation(request=request, status=ResponseStatus.REJECTED,
                          edge_units=0.0, cloud_units=request.cloud_units,
                          edge_charge=0.0, cloud_charge=cloud_charge)

    def dispatch_all(self,
                     requests: Iterable[ResourceRequest]) -> List[Allocation]:
        """Dispatch a batch (one provisioning epoch for the ESP)."""
        if self.edge.standalone:
            self.edge.reset_epoch()
        return [self.dispatch(r) for r in requests]
