"""Service providers: the ESP (two operation modes) and the CSP.

These objects implement the substrate behaviour of Fig. 1: miners offload
PoW computation by purchasing units; an overloaded connected-mode ESP
transfers the overflow to the CSP (arrow (3) in the figure), a standalone
ESP rejects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import CapacityError, ConfigurationError

__all__ = ["ProviderAccount", "CloudProvider", "EdgeProvider"]


@dataclass
class ProviderAccount:
    """Revenue/cost ledger of one provider.

    Attributes:
        units_sold: Total units provisioned so far.
        revenue: Total billed.
        unit_cost: Operating cost per unit.
    """

    unit_cost: float
    units_sold: float = 0.0
    revenue: float = 0.0

    @property
    def operating_cost(self) -> float:
        return self.unit_cost * self.units_sold

    @property
    def profit(self) -> float:
        """``V = revenue - cost`` (Problem 2's objective, realized)."""
        return self.revenue - self.operating_cost

    def record_sale(self, units: float, price: float) -> float:
        """Bill ``units`` at ``price``; returns the charge."""
        if units < 0:
            raise ConfigurationError("cannot sell negative units")
        charge = units * price
        self.units_sold += units
        self.revenue += charge
        return charge


class CloudProvider:
    """The CSP: unlimited capacity, communication delay ``D_avg``.

    Args:
        price: Unit price ``P_c``.
        unit_cost: Unit operating cost ``C_c``.
        d_avg: Average communication delay (informational).
    """

    def __init__(self, price: float, unit_cost: float = 0.0,
                 d_avg: float = 0.0) -> None:
        if price <= 0:
            raise ConfigurationError("CSP price must be positive")
        if unit_cost < 0:
            raise ConfigurationError("CSP unit cost must be non-negative")
        if d_avg < 0:
            raise ConfigurationError("d_avg must be non-negative")
        self.price = price
        self.d_avg = d_avg
        self.account = ProviderAccount(unit_cost=unit_cost)

    def provision(self, units: float) -> float:
        """Provision ``units`` (the CSP never refuses); returns the charge."""
        return self.account.record_sale(units, self.price)


class EdgeProvider:
    """The ESP, in connected or standalone mode.

    Connected mode (``capacity=None``): each edge request is satisfied with
    probability ``h`` and otherwise flagged for transfer; the decision is
    sampled from the provider's RNG, making the empirical transfer rate
    converge to ``1-h``.

    Standalone mode (``capacity=E_max``): requests are admitted
    first-come-first-served until the capacity is exhausted; the remainder
    raise :class:`~repro.exceptions.CapacityError` on strict admission or
    are rejected via :meth:`try_admit`.

    Args:
        price: Unit price ``P_e``.
        unit_cost: Unit operating cost ``C_e``.
        h: Connected-mode satisfaction probability.
        capacity: ``E_max`` for standalone mode; ``None`` = connected.
        seed: RNG seed for the connected-mode satisfaction draws.
    """

    def __init__(self, price: float, unit_cost: float = 0.0, h: float = 1.0,
                 capacity: Optional[float] = None, seed: int = 0) -> None:
        if price <= 0:
            raise ConfigurationError("ESP price must be positive")
        if unit_cost < 0:
            raise ConfigurationError("ESP unit cost must be non-negative")
        if not 0.0 < h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        if capacity is not None and capacity <= 0:
            raise ConfigurationError("capacity must be positive when set")
        self.price = price
        self.h = h
        self.capacity = capacity
        self.account = ProviderAccount(unit_cost=unit_cost)
        self._rng = np.random.default_rng(seed)
        self._load = 0.0

    @property
    def standalone(self) -> bool:
        return self.capacity is not None

    @property
    def load(self) -> float:
        """Units currently admitted in this provisioning epoch."""
        return self._load

    @property
    def remaining_capacity(self) -> float:
        if self.capacity is None:
            return float("inf")
        return max(self.capacity - self._load, 0.0)

    def reset_epoch(self) -> None:
        """Clear the admitted load (new provisioning round)."""
        self._load = 0.0

    def sample_satisfaction(self) -> bool:
        """Connected mode: whether this request is served locally."""
        if self.standalone:
            raise ConfigurationError(
                "sample_satisfaction is a connected-mode operation")
        return bool(self._rng.random() < self.h)

    def try_admit(self, units: float) -> bool:
        """Standalone mode: admit ``units`` if capacity allows.

        Returns True (and bills) on admission, False on rejection. The
        all-or-nothing semantics match the paper: a partially servable
        request is rejected outright.
        """
        if not self.standalone:
            raise ConfigurationError("try_admit is a standalone operation")
        if units < 0:
            raise ConfigurationError("units must be non-negative")
        if units == 0.0:  # repro: noqa[RPR002] — validated non-negative
            return True
        if units > self.remaining_capacity + 1e-12:
            return False
        self._load += units
        self.account.record_sale(units, self.price)
        return True

    def admit(self, units: float) -> float:
        """Strict admission; raises :class:`CapacityError` on overload.

        In connected mode this bills unconditionally (capacity is modeled
        by the satisfaction probability, not a hard limit).
        """
        if self.standalone:
            if not self.try_admit(units):
                raise CapacityError(
                    f"ESP overload: requested {units}, remaining "
                    f"{self.remaining_capacity}")
            return units * self.price
        return self.account.record_sale(units, self.price)
