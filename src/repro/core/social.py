"""Social-welfare analysis: efficiency of the Stackelberg outcome.

The paper maximizes each party's selfish objective; a natural extension
(its "future work" direction) is to ask how efficient the resulting
equilibria are. Define social welfare as the sum of all parties' payoffs:

    SW(e, c) = Σ_i U_i + V_e + V_c
             = R Σ_i W_i - Σ_i (P_e e_i + P_c c_i)        (miners)
               + (P_e - C_e) E + (P_c - C_c) C             (SPs)
             = R Σ_i W_i - C_e E - C_c C                   (prices cancel)

In standalone mode Theorem 1 gives ``Σ_i W_i = 1``; in connected mode the
marginal transfer semantics of Eq. (9) yield
``Σ_i W_i = 1 - β(1-h)`` — the slice ``β(1-h)`` of the reward is lost to
orphaned transferred blocks, an *additional* social cost of the connected
mode on top of resource spending. Payments are transfers, so social
welfare otherwise depends only on the *resource cost* of mining: the
planner would mine the block with an arbitrarily small amount of the
cheapest resource, and every positive-spend equilibrium is socially
wasteful — the classic PoW rent-dissipation result. This module
quantifies it:

* :func:`social_welfare` — SW of any profile;
* :func:`rent_dissipation` — the reward share lost to compute/orphaning;
* :func:`mining_cost_breakdown` — edge vs cloud resource costs;
* :func:`welfare_report` — the full decomposition of an equilibrium.

Experiment EXT1 (:func:`repro.analysis.extensions.ext1_rent_dissipation`)
sweeps this decomposition across rewards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .nep import MinerEquilibrium
from .params import GameParameters

__all__ = ["WelfareReport", "social_welfare", "rent_dissipation",
           "mining_cost_breakdown", "welfare_report", "captured_reward"]


@dataclass(frozen=True)
class WelfareReport:
    """Welfare decomposition of one equilibrium.

    Attributes:
        reward: The block reward ``R`` (gross social surplus per round).
        captured_reward: ``R Σ_i W_i`` — the expected reward actually won
            by the miner set (``< R`` in connected mode, where transferred
            blocks can be orphaned with probability ``β(1-h)``).
        edge_resource_cost: ``C_e · E`` — real resources burned at the ESP.
        cloud_resource_cost: ``C_c · C`` — real resources burned at the CSP.
        social_welfare: ``R Σ_i W_i - C_e E - C_c C``.
        miner_surplus: ``Σ_i U_i``.
        esp_profit: ``V_e``.
        csp_profit: ``V_c``.
        dissipation: Fraction of ``R`` burned on compute *or* lost to
            transfer orphaning (``1 - SW / R``).
    """

    reward: float
    captured_reward: float
    edge_resource_cost: float
    cloud_resource_cost: float
    social_welfare: float
    miner_surplus: float
    esp_profit: float
    csp_profit: float
    dissipation: float

    @property
    def transfers_balance(self) -> float:
        """Accounting identity residual: SW − (miners + SPs). Zero up to
        solver tolerance at any profile."""
        return self.social_welfare - (self.miner_surplus + self.esp_profit
                                      + self.csp_profit)


def mining_cost_breakdown(e: np.ndarray, c: np.ndarray,
                          params: GameParameters) -> tuple:
    """Real resource costs ``(C_e E, C_c C)`` of a profile."""
    E = float(np.sum(e))
    C = float(np.sum(c))
    return params.edge_cost * E, params.cloud_cost * C


def captured_reward(e: np.ndarray, c: np.ndarray,
                    params: GameParameters) -> float:
    """Expected reward won by the miner set: ``R Σ_i W_i``."""
    from . import winning

    w = winning.w_connected(np.asarray(e, float), np.asarray(c, float),
                            params.fork_rate, params.effective_h)
    return params.reward * float(np.sum(w))


def social_welfare(e: np.ndarray, c: np.ndarray,
                   params: GameParameters) -> float:
    """``SW = R Σ_i W_i - C_e E - C_c C`` (prices are transfers and
    cancel).

    An empty profile wins nothing and has ``SW = 0``.
    """
    E = float(np.sum(e))
    C = float(np.sum(c))
    if E + C <= 0.0:
        return 0.0
    edge_cost, cloud_cost = mining_cost_breakdown(e, c, params)
    return captured_reward(e, c, params) - edge_cost - cloud_cost


def rent_dissipation(e: np.ndarray, c: np.ndarray,
                     params: GameParameters) -> float:
    """Share of the reward lost to compute spending or transfer
    orphaning: ``1 - SW / R``.

    0 is the planner's limit (mine with ε units at the edge); 1 means the
    entire reward is dissipated. Can exceed 1 if resource costs exceed
    ``R``.
    """
    return 1.0 - social_welfare(e, c, params) / params.reward


def welfare_report(eq: MinerEquilibrium) -> WelfareReport:
    """Full welfare decomposition of a miner equilibrium."""
    params = eq.params
    edge_cost, cloud_cost = mining_cost_breakdown(eq.e, eq.c, params)
    sw = social_welfare(eq.e, eq.c, params)
    v_e, v_c = eq.sp_profits
    return WelfareReport(
        reward=params.reward,
        captured_reward=captured_reward(eq.e, eq.c, params),
        edge_resource_cost=edge_cost,
        cloud_resource_cost=cloud_cost,
        social_welfare=sw,
        miner_surplus=float(np.sum(eq.utilities)),
        esp_profit=v_e,
        csp_profit=v_c,
        dissipation=rent_dissipation(eq.e, eq.c, params),
    )
