"""Model parameters for the mobile blockchain mining game.

Collects every symbol of Table I of the paper into validated dataclasses:

* :class:`Prices` — the leaders' decision variables ``(P_e, P_c)``.
* :class:`GameParameters` — everything else: reward ``R``, fork rate ``β``,
  edge operation mode, satisfaction probability ``h`` (connected), capacity
  ``E_max`` (standalone), SP unit costs ``C_e``/``C_c`` and miner budgets.

Validation is eager: a misconfigured game raises
:class:`~repro.exceptions.ConfigurationError` at construction time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["EdgeMode", "Prices", "GameParameters", "mixed_strategy_price_bound"]


class EdgeMode(enum.Enum):
    """Edge operation modes of Section II-A.

    CONNECTED: an overloaded ESP automatically transfers requests to the CSP
        (captured by the expected satisfaction probability ``h``).
    STANDALONE: an overloaded ESP rejects requests; miners share the hard
        constraint ``sum_i e_i <= E_max``.
    """

    CONNECTED = "connected"
    STANDALONE = "standalone"


@dataclass(frozen=True)
class Prices:
    """Unit prices announced by the leaders.

    Attributes:
        p_e: ESP unit price ``P_e`` ($ per computing unit).
        p_c: CSP unit price ``P_c`` ($ per computing unit).
    """

    p_e: float
    p_c: float

    def __post_init__(self) -> None:
        if self.p_e <= 0 or self.p_c <= 0:
            raise ConfigurationError(
                f"prices must be positive, got P_e={self.p_e}, "
                f"P_c={self.p_c}")

    @property
    def as_array(self) -> np.ndarray:
        """Prices as the vector ``[P_e, P_c]`` (matching ``r_i = [e_i, c_i]``)."""
        return np.array([self.p_e, self.p_c], dtype=float)

    def premium(self) -> float:
        """The edge price premium ``P_e - P_c`` (can be negative)."""
        return self.p_e - self.p_c


def mixed_strategy_price_bound(beta: float, h: float, p_e: float) -> float:
    """Upper bound on ``P_c`` for a mixed (edge+cloud) equilibrium.

    Theorem 3 requires ``P_c < (1-β) P_e / (1-β+βh)``; at or above this bound
    miners stop buying cloud units entirely (the cloud's delay discount no
    longer compensates its price).
    """
    return (1.0 - beta) * p_e / (1.0 - beta + beta * h)


@dataclass(frozen=True)
class GameParameters:
    """Static parameters of one game instance (everything but prices).

    Attributes:
        reward: Blockchain mining reward ``R`` ($ per block).
        fork_rate: Fork rate ``β`` in ``[0, 1)`` caused by the CSP's
            communication delay ``D_avg`` (Section III-A).
        budgets: Per-miner budgets ``B_i`` ($); length defines ``n``.
        mode: Edge operation mode.
        h: Probability that an ESP request is satisfied locally in connected
            mode (the transfer rate is ``1 - h``). Must equal 1.0 in
            standalone mode, where capacity is modeled by ``e_max`` instead.
        e_max: ESP computing capacity ``E_max`` (standalone mode only).
        edge_cost: ESP unit operating cost ``C_e``.
        cloud_cost: CSP unit operating cost ``C_c``.
        d_avg: Average CSP communication delay (seconds). Informational; the
            game itself consumes ``fork_rate``, which
            :mod:`repro.blockchain.forks` can derive from ``d_avg``.
    """

    reward: float
    fork_rate: float
    budgets: Sequence[float]
    mode: EdgeMode = EdgeMode.CONNECTED
    h: float = 1.0
    e_max: Optional[float] = None
    edge_cost: float = 0.0
    cloud_cost: float = 0.0
    d_avg: Optional[float] = None
    _budgets_array: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        budgets = np.asarray(self.budgets, dtype=float)
        if budgets.ndim != 1:
            raise ConfigurationError("budgets must be a 1-D sequence")
        if budgets.shape[0] < 2:
            raise ConfigurationError(
                "the mining game needs at least 2 miners (a lone miner wins "
                f"regardless of spend); got {budgets.shape[0]}")
        if np.any(budgets <= 0):
            raise ConfigurationError("all miner budgets must be positive")
        if self.reward <= 0:
            raise ConfigurationError(
                f"mining reward must be positive, got {self.reward}")
        if not 0.0 <= self.fork_rate < 1.0:
            raise ConfigurationError(
                f"fork rate must be in [0, 1), got {self.fork_rate}")
        if not 0.0 < self.h <= 1.0:
            raise ConfigurationError(f"h must be in (0, 1], got {self.h}")
        if self.mode is EdgeMode.STANDALONE:
            if self.e_max is None or self.e_max <= 0:
                raise ConfigurationError(
                    "standalone mode requires a positive e_max capacity")
            if self.h != 1.0:  # repro: noqa[RPR002] — config sentinel
                raise ConfigurationError(
                    "standalone mode models capacity via e_max; h must stay "
                    "at its default 1.0")
        if self.edge_cost < 0 or self.cloud_cost < 0:
            raise ConfigurationError("SP unit costs must be non-negative")
        if self.d_avg is not None and self.d_avg < 0:
            raise ConfigurationError("d_avg must be non-negative")
        # Normalise to a tuple so equality and hashing stay well-defined
        # when callers construct with a numpy array (dataclass __eq__
        # on an ndarray field raises or misbehaves elementwise).
        if not isinstance(self.budgets, tuple):
            object.__setattr__(self, "budgets",
                               tuple(float(b) for b in budgets))
        object.__setattr__(self, "_budgets_array", budgets)

    @property
    def n(self) -> int:
        """Number of miners."""
        return int(self._budgets_array.shape[0])

    @property
    def budget_array(self) -> np.ndarray:
        """Budgets as a read-only numpy array of shape ``(n,)``."""
        arr = self._budgets_array.view()
        arr.flags.writeable = False
        return arr

    @property
    def is_homogeneous(self) -> bool:
        """Whether all miners share an identical budget (Section IV-B)."""
        b = self._budgets_array
        return bool(np.all(b == b[0]))

    @property
    def effective_h(self) -> float:
        """Satisfaction probability entering ``W_i``: ``h`` in connected
        mode, 1.0 in standalone mode (capacity enforced separately)."""
        return self.h if self.mode is EdgeMode.CONNECTED else 1.0

    def with_mode(self, mode: EdgeMode, *, h: Optional[float] = None,
                  e_max: Optional[float] = None) -> "GameParameters":
        """Copy of these parameters under a different edge operation mode."""
        if mode is EdgeMode.CONNECTED:
            return replace(self, mode=mode, h=1.0 if h is None else h,
                           e_max=None)
        return replace(self, mode=mode, h=1.0,
                       e_max=self.e_max if e_max is None else e_max)

    def with_budgets(self, budgets: Sequence[float]) -> "GameParameters":
        """Copy of these parameters with different miner budgets."""
        return replace(self, budgets=tuple(float(b) for b in budgets))

    def mixed_price_bound(self, p_e: float) -> float:
        """Theorem-3 upper bound on ``P_c`` given ``p_e`` for this game."""
        return mixed_strategy_price_bound(self.fork_rate, self.effective_h,
                                          p_e)

    def validate_prices(self, prices: Prices) -> None:
        """Raise if ``prices`` cannot support a mixed-strategy equilibrium.

        Solvers do not require this (corner equilibria are handled), but the
        closed-form results of Section IV-B do.
        """
        bound = self.mixed_price_bound(prices.p_e)
        if prices.p_c >= bound:
            raise ConfigurationError(
                f"P_c={prices.p_c} violates the mixed-strategy condition "
                f"P_c < {bound:.6g} (Theorem 3)")


def homogeneous(n: int, budget: float, **kwargs: Any) -> GameParameters:
    """Convenience constructor for ``n`` identical miners.

    Example:
        >>> params = homogeneous(5, 200.0, reward=1000.0, fork_rate=0.2,
        ...                      h=0.8)
        >>> params.is_homogeneous
        True
    """
    return GameParameters(budgets=(float(budget),) * n, **kwargs)


def from_calibration(calibration: Any, n: int, budget: float,
                     reward: float, **kwargs: Any) -> GameParameters:
    """Game parameters derived from a physical network calibration.

    Takes a :class:`repro.network.DelayCalibration` (duck-typed: anything
    with ``fork_rate`` and ``d_avg`` attributes) and builds the
    homogeneous game whose ``β`` and ``D_avg`` come from the measured
    topology instead of being assumed.

    Example:
        >>> from repro.network import (GossipModel, calibrate_game_delays,
        ...                            edge_cloud_topology)
        >>> cal = calibrate_game_delays(edge_cloud_topology(10, seed=0),
        ...                             GossipModel(block_size=1e6))
        >>> params = from_calibration(cal, 5, 200.0, reward=1000.0)
        >>> params.fork_rate == cal.fork_rate
        True
    """
    return homogeneous(n, budget, reward=reward,
                       fork_rate=float(calibration.fork_rate),
                       d_avg=float(calibration.d_avg), **kwargs)


__all__.append("homogeneous")
__all__.append("from_calibration")
