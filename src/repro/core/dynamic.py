"""Dynamic miner-number scenario (Section V, Problems 1d/2d).

The miner count is a random variable ``N ~ Gaussian(μ, σ²)``; each miner
maximizes its *expected* utility over the discretized distribution:

    U_i(μ, σ²) = Σ_k P(k) [ w_sat(k) · R · W_i^h(k)
                            + (1 - w_sat(k)) · R · W_i^{1-h}(k) ]
                 - (P_e e_i + P_c c_i)

where, conditional on ``N = k``, the other ``k-1`` miners play the symmetric
strategy ``(e°, c°)`` and

    W_i^h(k)      = (1-β)(e_i+c_i)/S_k + β e_i / E_k        (full service)
    W_i^{1-h}(k)  = (1-β)(e_i+c_i)/S_k                       (degraded)

The paper's Eq. (26) fixes the mixture weight at 0.5; we parameterize it:

* ``weights="paper"``     — constant 0.5 (verbatim Eq. 26);
* ``weights="h"``         — constant ``h`` (consistent with Section IV-A);
* ``weights="capacity"``  — hard rejection, matching standalone-mode
  semantics: ``w_sat(k) = 1{k e° <= E_max}`` at the symmetric candidate
  (the ESP rejects when the realized population would overload it). The
  indicator is softened by a narrow linear ramp of relative width
  ``capacity_ramp`` (default 10% of ``E_max``): a pure indicator makes the
  symmetric best response discontinuous, and for many parameters *no*
  symmetric fixed point exists — the ramp restores existence while keeping
  the rejection cliff;
* ``weights="service"``   — proportional service:
  ``w_sat(k) = min(1, E_max / (k e°))``; when realized demand exceeds
  capacity the ESP serves a uniform feasible fraction. Continuous in
  ``e°``, hence the best-behaved numerically.

Ablation ABL2 compares all four.

The symmetric equilibrium is a fixed point of the expected-utility best
response, computed by damped iteration; each best response is an exact
2-variable concave program solved semi-analytically like the fixed-``N``
case but with distribution-weighted marginals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import brentq

from ..exceptions import ConfigurationError, ConvergenceError
from ..game.diagnostics import ConvergenceReport, ResidualRecorder
from ..population import PopulationModel
from .params import Prices

__all__ = ["DynamicGame", "DynamicEquilibrium", "solve_dynamic_equilibrium"]


@dataclass
class DynamicEquilibrium:
    """Symmetric equilibrium of the population-uncertainty game.

    Attributes:
        e: Per-miner ESP request at the fixed point.
        c: Per-miner CSP request.
        expected_edge_total: ``E[N] * e`` — expected aggregate edge demand.
        expected_overload: Probability that realized edge demand exceeds
            ``E_max`` (0 when no capacity is configured).
        utility: A miner's expected utility at the fixed point.
        report: Convergence diagnostics of the fixed-point iteration.
    """

    e: float
    c: float
    expected_edge_total: float
    expected_overload: float
    utility: float
    report: ConvergenceReport

    @property
    def converged(self) -> bool:
        return self.report.converged


class DynamicGame:
    """Expected-utility miner game under population uncertainty.

    Args:
        population: Distribution of the miner count ``N``.
        reward: Mining reward ``R``.
        fork_rate: Fork rate ``β``.
        budget: Common miner budget ``B`` (the dynamic scenario is
            symmetric/homogeneous, following the paper's Section VI-C
            setup of 5 homogeneous miners).
        e_max: ESP capacity (standalone mode). ``None`` disables the
            capacity-derived weight model.
        h: Edge satisfaction probability used by ``weights="h"``.
        weights: Mixture-weight model (see module docstring).
    """

    def __init__(self, population: PopulationModel, reward: float,
                 fork_rate: float, budget: float,
                 e_max: Optional[float] = None, h: float = 1.0,
                 weights: str = "capacity",
                 capacity_ramp: float = 0.1) -> None:
        if reward <= 0:
            raise ConfigurationError("reward must be positive")
        if not 0.0 <= fork_rate < 1.0:
            raise ConfigurationError("fork rate must be in [0, 1)")
        if budget <= 0:
            raise ConfigurationError("budget must be positive")
        if not 0.0 < h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        if weights not in ("paper", "h", "capacity", "service"):
            raise ConfigurationError(f"unknown weight model {weights!r}")
        if weights in ("capacity", "service") and e_max is None:
            raise ConfigurationError(
                "weights='capacity' requires an e_max capacity")
        if population.mean < 2:
            raise ConfigurationError(
                "the expected miner count must be at least 2")
        if capacity_ramp <= 0:
            raise ConfigurationError("capacity_ramp must be positive")
        self.population = population
        self.reward = reward
        self.fork_rate = fork_rate
        self.budget = budget
        self.e_max = e_max
        self.h = h
        self.weights = weights
        self.capacity_ramp = capacity_ramp
        self._ks = population.support().astype(float)
        self._pk = population.pmf()

    # ------------------------------------------------------------------ #
    # Expected utility and its exact own-strategy gradient.
    # ------------------------------------------------------------------ #

    def _sat_weights(self, e_sym: float) -> np.ndarray:
        """Per-``k`` satisfaction weights ``w_sat(k)``."""
        if self.weights == "paper":
            return np.full_like(self._ks, 0.5)
        if self.weights == "h":
            return np.full_like(self._ks, self.h)
        demand = self._ks * e_sym
        if self.weights == "capacity":
            # Hard rejection with a narrow linear ramp: fully served up to
            # E_max, fully rejected beyond E_max (1 + ramp).
            hi = self.e_max * (1.0 + self.capacity_ramp)
            span = hi - self.e_max
            return np.clip((hi - demand) / span, 0.0, 1.0)
        # service: proportional — satisfied with probability capacity/demand
        # when the realized symmetric population overloads the ESP.
        ratio = np.where(demand > 0,
                         self.e_max / np.maximum(demand, 1e-300), 1.0)
        return np.minimum(ratio, 1.0)

    def expected_utility(self, e_i: float, c_i: float, e_sym: float,
                         c_sym: float, prices: Prices) -> float:
        """``U_i(μ, σ²)`` of Problem 1d for own play ``(e_i, c_i)`` against
        the symmetric profile ``(e_sym, c_sym)``."""
        beta = self.fork_rate
        others = self._ks - 1.0
        e_bar = others * e_sym
        s_bar = others * (e_sym + c_sym)
        S = s_bar + e_i + c_i
        E = e_bar + e_i
        w = self._sat_weights(e_sym)
        base = np.where(S > 0, (1.0 - beta) * (e_i + c_i) / np.maximum(S, 1e-300), 0.0)
        bonus = np.where(E > 0, beta * e_i / np.maximum(E, 1e-300), 0.0)
        w_k = base + w * bonus
        expected_w = float(np.dot(self._pk, w_k))
        return self.reward * expected_w - prices.p_e * e_i - prices.p_c * c_i

    def _marginals(self, e_i: float, c_i: float, e_sym: float, c_sym: float,
                   ) -> Tuple[float, float]:
        """Distribution-weighted marginal incomes ``(g_e, g_c)``.

        ``g_c = R (1-β) Σ_k P(k) s̄_k / S_k²`` and
        ``g_e = g_c + R β Σ_k P(k) w_sat(k) ē_k / E_k²``.
        """
        beta = self.fork_rate
        others = self._ks - 1.0
        e_bar = others * e_sym
        s_bar = others * (e_sym + c_sym)
        S = s_bar + e_i + c_i
        E = e_bar + e_i
        w = self._sat_weights(e_sym)
        g_c_terms = np.where(S > 0, s_bar / np.maximum(S * S, 1e-300), 0.0)
        g_e_terms = np.where(E > 0, e_bar / np.maximum(E * E, 1e-300), 0.0)
        g_c = self.reward * (1.0 - beta) * float(np.dot(self._pk, g_c_terms))
        g_e_extra = self.reward * beta * float(
            np.dot(self._pk * w, g_e_terms))
        return g_c + g_e_extra, g_c

    # ------------------------------------------------------------------ #
    # Exact best response (KKT with scalar root-finding).
    # ------------------------------------------------------------------ #

    def best_response(self, e_sym: float, c_sym: float,
                      prices: Prices) -> Tuple[float, float]:
        """Exact best response to a symmetric opponent profile.

        Solves the same KKT system as the fixed-``N`` case; the marginal
        incomes are expectation-weighted, so the aggregate closed forms are
        replaced by monotone scalar root-finds.
        """
        p_e, p_c = prices.p_e, prices.p_c

        def candidate(lam: float) -> Tuple[float, float]:
            a_e = p_e * (1.0 + lam)
            a_c = p_c * (1.0 + lam)
            # Stage 1: joint interior attempt. The FOCs are
            #   g_e(e, c) = a_e ,  g_c(e, c) = a_c .
            # g_c depends on (e + c) only; g_e - g_c depends on e only.
            delta = a_e - a_c

            def edge_gap(e: float) -> float:
                g_e, g_c = self._marginals(e, 0.0, e_sym, c_sym)
                return (g_e - g_c) - delta

            if delta <= 0.0 or edge_gap(0.0) <= 0.0:
                e_val = 0.0
            else:
                hi = 1.0
                while edge_gap(hi) > 0.0:
                    hi *= 2.0
                    if hi > 1e15:
                        raise ConvergenceError(
                            "dynamic best response diverged in e")
                e_val = float(brentq(edge_gap, 0.0, hi, xtol=1e-13))

            def total_gap(t: float) -> float:
                # t = e_i + c_i ; g_c depends only on t.
                _, g_c = self._marginals(t, 0.0, e_sym, c_sym)
                return g_c - a_c

            if total_gap(e_val) <= 0.0:
                # Even at c = 0 the cloud marginal is unprofitable.
                t_val = e_val
            else:
                hi = max(2.0 * e_val, 1.0)
                while total_gap(hi) > 0.0:
                    hi *= 2.0
                    if hi > 1e15:
                        raise ConvergenceError(
                            "dynamic best response diverged in c")
                t_val = float(brentq(total_gap, e_val, hi, xtol=1e-13))
            c_val = max(t_val - e_val, 0.0)

            # The max(., 0.0) clamp above yields an exact 0.0 corner.
            if c_val == 0.0:  # repro: noqa[RPR002]
                # Corner: re-optimize e alone against the full marginal.
                def e_only_gap(e: float) -> float:
                    g_e, _ = self._marginals(e, 0.0, e_sym, c_sym)
                    return g_e - a_e

                if e_only_gap(0.0) <= 0.0:
                    e_val = 0.0
                else:
                    hi = 1.0
                    while e_only_gap(hi) > 0.0:
                        hi *= 2.0
                        if hi > 1e15:
                            raise ConvergenceError(
                                "dynamic best response diverged (corner)")
                    e_val = float(brentq(e_only_gap, 0.0, hi, xtol=1e-13))
            return e_val, c_val

        def spend(lam: float) -> float:
            e, c = candidate(lam)
            return p_e * e + p_c * c

        e0, c0 = candidate(0.0)
        if p_e * e0 + p_c * c0 <= self.budget + 1e-12:
            return e0, c0
        lo, hi = 0.0, 1.0
        while spend(hi) > self.budget:
            lo = hi
            hi *= 2.0
            if hi > 1e12:
                raise ConvergenceError("budget multiplier bracket diverged")
        lam = float(brentq(lambda x: spend(x) - self.budget, lo, hi,
                           xtol=1e-13))
        return candidate(lam)


def solve_dynamic_equilibrium(game: DynamicGame, prices: Prices,
                              tol: float = 1e-8, max_iter: int = 10000,
                              damping: float = 0.3,
                              initial: Optional[Tuple[float, float]] = None,
                              raise_on_failure: bool = False,
                              ) -> DynamicEquilibrium:
    """Symmetric fixed point of the expected-utility best response.

    Args:
        game: The population-uncertainty game.
        prices: Announced SP prices.
        tol: Relative tolerance on the strategy update.
        max_iter: Maximum damped-iteration steps.
        damping: Fixed-point damping (0.5 is robust for the capacity-weight
            model whose weights switch discretely with ``e``).
        initial: Optional starting symmetric strategy.
        raise_on_failure: Raise instead of returning a flagged result.
    """
    if not 0.0 < damping <= 1.0:
        raise ConfigurationError("damping must be in (0, 1]")
    if initial is None:
        e = game.budget / (4.0 * prices.p_e)
        c = game.budget / (4.0 * prices.p_c)
    else:
        e, c = float(initial[0]), float(initial[1])

    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    alpha = damping
    prev_residual = float("inf")
    stall = 0
    improve = 0
    for it in range(max_iter):
        iterations = it + 1
        e_br, c_br = game.best_response(e, c, prices)
        e_new = (1.0 - alpha) * e + alpha * e_br
        c_new = (1.0 - alpha) * c + alpha * c_br
        scale = max(1.0, abs(e_new), abs(c_new))
        residual = max(abs(e_new - e), abs(c_new - c)) / scale
        e, c = e_new, c_new
        if recorder.record(residual):
            converged = True
            break
        # Adaptive damping: an oscillating/stalling residual means the
        # best-response map is locally expansive — shrink the step; after
        # sustained improvement, cautiously grow it back.
        if residual >= 0.9 * prev_residual:
            stall += 1
            improve = 0
            if stall >= 3:
                alpha = max(alpha * 0.5, 0.02)
                stall = 0
        else:
            stall = 0
            improve += 1
            if improve >= 25:
                alpha = min(alpha * 1.5, damping)
                improve = 0
        prev_residual = residual
    report = recorder.report(converged, iterations,
                             message=f"final damping {alpha:.3g}")
    if not converged and raise_on_failure:
        raise ConvergenceError(f"dynamic fixed point failed: {report}",
                               report)

    ks = game.population.support().astype(float)
    pk = game.population.pmf()
    expected_edge = float(np.dot(pk, ks)) * e
    if game.e_max is not None:
        overload = float(np.dot(pk, (ks * e > game.e_max).astype(float)))
    else:
        overload = 0.0
    utility = game.expected_utility(e, c, e, c, prices)
    return DynamicEquilibrium(e=e, c=c, expected_edge_total=expected_edge,
                              expected_overload=overload, utility=utility,
                              report=report)
