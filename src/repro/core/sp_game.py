"""SP (leader) subgame: pricing against the induced miner demand.

Problems 2a/2c of the paper. Each SP maximizes its profit taking the *miner
subgame equilibrium* as the demand curve:

    V_e(P_e, P_c) = (P_e - C_e) * E*(P_e, P_c)
    V_c(P_e, P_c) = (P_c - C_c) * C*(P_e, P_c)

where ``(E*, C*)`` come from the mode-appropriate follower solver (NEP in
connected mode, GNEP variational equilibrium in standalone mode). Demand
evaluation is memoized and warm-started because every scalar price
optimization queries it many times.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from ..exceptions import ConfigurationError, InfeasibleGameError
from ..game.diagnostics import ConvergenceReport
from .gnep import solve_standalone_equilibrium
from .homogeneous_demand import homogeneous_demand
from .nep import MinerEquilibrium, resolve_kernel, \
    solve_connected_equilibrium
from .params import EdgeMode, GameParameters, Prices

__all__ = ["DemandOracle", "esp_best_response", "csp_best_response"]


class DemandOracle:
    """Memoized, warm-started miner-equilibrium demand ``(E*, C*)(P)``.

    The oracle dispatches on the game's edge operation mode and caches
    equilibria keyed by rounded prices. For homogeneous games it answers
    from the exact closed forms of
    :mod:`repro.core.homogeneous_demand` (``fast="auto"``, the default),
    falling back to the iterative solvers in corner regimes the closed
    forms do not cover; ``fast=False`` forces the iterative path (used by
    the tests that cross-validate the two).  ``kernel`` selects the
    follower-solver kernel on the iterative paths (see
    :func:`~repro.core.nep.solve_connected_equilibrium`); the closed
    forms ignore it.  ``n_types`` compresses heterogeneous populations
    into weighted budget types on the iterative paths
    (:mod:`repro.kernels.typespace`); the closed forms (homogeneous
    games) ignore it — they are already one-type exact.

    Price *grids* can be evaluated in one shot through
    :meth:`equilibria`, which routes compatible uncached points into
    the cross-scenario batched kernel
    (:mod:`repro.kernels.multiscenario`) — bit-identical to per-point
    evaluation, several times faster on cold grids.
    """

    #: Rounding (decimal places) for the memo key.
    _KEY_DECIMALS = 12

    def __init__(self, params: GameParameters, tol: float = 1e-9,
                 max_iter: int = 3000, fast: str = "auto",
                 warm_profile: Optional[Tuple[np.ndarray,
                                              np.ndarray]] = None,
                 kernel: str = "scalar",
                 n_types: Optional[int] = None) -> None:
        if fast not in ("auto", False, True):
            raise ConfigurationError("fast must be 'auto', True or False")
        self.params = params
        self.tol = tol
        self.max_iter = max_iter
        self.kernel = kernel
        self.n_types = n_types
        self.fast = (params.is_homogeneous if fast == "auto" else bool(fast))
        if self.fast and not params.is_homogeneous:
            raise ConfigurationError(
                "fast closed-form demand requires homogeneous miners")
        if warm_profile is not None:
            e0 = np.asarray(warm_profile[0], dtype=float)
            c0 = np.asarray(warm_profile[1], dtype=float)
            if e0.shape != (params.n,) or c0.shape != (params.n,):
                raise ConfigurationError(
                    "warm_profile shape mismatch: expected two arrays of "
                    f"shape ({params.n},)")
            warm_profile = (e0, c0)
        self._warm_profile = warm_profile
        self._cache: Dict[Tuple[float, float], MinerEquilibrium] = {}
        self._last: Optional[MinerEquilibrium] = None
        self.evaluations = 0
        self.fallbacks = 0

    def _closed_form(self, prices: Prices) -> MinerEquilibrium:
        demand = homogeneous_demand(self.params, prices)
        n = self.params.n
        report = ConvergenceReport(converged=True, iterations=0,
                                   residual=0.0, tolerance=self.tol,
                                   message=f"closed form ({demand.regime})")
        return MinerEquilibrium(e=np.full(n, demand.e),
                                c=np.full(n, demand.c),
                                params=self.params, prices=prices,
                                report=report, nu=demand.nu)

    def equilibrium(self, prices: Prices) -> MinerEquilibrium:
        """Miner-subgame equilibrium at ``prices`` (cached)."""
        key = (round(prices.p_e, self._KEY_DECIMALS),
               round(prices.p_c, self._KEY_DECIMALS))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.evaluations += 1
        eq = None
        if self.fast:
            try:
                eq = self._closed_form(prices)
            except ConfigurationError:
                self.fallbacks += 1
        if eq is None:
            # Seed only the very first iterative solve from the external
            # warm profile; afterwards the oracle chains its own last
            # equilibrium exactly as it always has, so a ``None`` seed is
            # bit-identical to the legacy behaviour.
            seed = self._warm_profile if self._last is None else None
            if self.params.mode is EdgeMode.STANDALONE:
                eq = solve_standalone_equilibrium(self.params, prices,
                                                  tol=self.tol,
                                                  initial=seed,
                                                  kernel=self.kernel,
                                                  n_types=self.n_types)
            else:
                warm = seed
                if self._last is not None:
                    warm = (self._last.e, self._last.c)
                eq = solve_connected_equilibrium(self.params, prices,
                                                 tol=self.tol,
                                                 max_iter=self.max_iter,
                                                 initial=warm,
                                                 kernel=self.kernel,
                                                 n_types=self.n_types)
        self._cache[key] = eq
        self._last = eq
        return eq

    def _batchable(self) -> bool:
        """Whether uncached points can go through the batched kernel."""
        return (not self.fast
                and self.params.mode is EdgeMode.CONNECTED
                and self.n_types is None
                and resolve_kernel(self.kernel, self.params.n)
                == "vectorized")

    def equilibria(self, price_grid: Sequence[Prices]
                   ) -> List[MinerEquilibrium]:
        """Batch-evaluate the demand curve on a price grid (cached).

        Uncached grid points whose follower solve is *batchable* —
        connected mode on the iterative path, kernel resolving to the
        aggregate (``"vectorized"``) solver, no type-space compression
        — are answered by one cross-scenario batched kernel call
        (:func:`repro.kernels.multiscenario.solve_connected_multiscenario`),
        **bit-identical** to evaluating each point through
        :meth:`equilibrium` one at a time (the aggregate kernel ignores
        warm starts, so chaining order cannot change results).  Points
        the batch cannot certify, and every non-batchable configuration
        (standalone mode, closed forms, the sweep kernels), fall back
        to per-point :meth:`equilibrium` calls.

        Returns one equilibrium per grid point, in input order; every
        solved point is admitted to the oracle's memo cache.
        """
        out: Dict[int, MinerEquilibrium] = {}
        pending: List[Tuple[int, Prices,
                            Tuple[float, float]]] = []
        for idx, prices in enumerate(price_grid):
            key = (round(prices.p_e, self._KEY_DECIMALS),
                   round(prices.p_c, self._KEY_DECIMALS))
            hit = self._cache.get(key)
            if hit is not None:
                out[idx] = hit
            else:
                pending.append((idx, prices, key))
        if self._batchable() and len(pending) > 1:
            from ..kernels.multiscenario import \
                solve_connected_multiscenario
            try:
                solved = solve_connected_multiscenario(
                    [(self.params, prices)
                     for _, prices, _ in pending], tol=self.tol)
            except Exception:  # repro: noqa[RPR007] — batch-level
                # capture boundary: a failed batch falls back to the
                # per-point path, which raises errors properly.
                solved = [None] * len(pending)
            still: List[Tuple[int, Prices,
                              Tuple[float, float]]] = []
            for (idx, prices, key), eq in zip(pending, solved):
                if eq is None:
                    still.append((idx, prices, key))
                    continue
                self.evaluations += 1
                self._cache[key] = eq
                self._last = eq
                out[idx] = eq
            pending = still
        for idx, prices, _ in pending:
            out[idx] = self.equilibrium(prices)
        return [out[i] for i in range(len(price_grid))]

    def edge_demand(self, prices: Prices) -> float:
        """``E*(P)``."""
        return self.equilibrium(prices).total_edge

    def cloud_demand(self, prices: Prices) -> float:
        """``C*(P)``."""
        return self.equilibrium(prices).total_cloud

    def esp_profit(self, prices: Prices) -> float:
        """``V_e(P)`` on the induced demand."""
        return (prices.p_e - self.params.edge_cost) * self.edge_demand(prices)

    def csp_profit(self, prices: Prices) -> float:
        """``V_c(P)`` on the induced demand."""
        return (prices.p_c - self.params.cloud_cost) * \
            self.cloud_demand(prices)


def _bounded_argmax(fn: Callable[[float], float], lo: float, hi: float,
                    xatol: float) -> float:
    res = minimize_scalar(lambda x: -fn(x), bounds=(lo, hi),
                          method="bounded", options={"xatol": xatol})
    return float(res.x)


def esp_best_response(oracle: DemandOracle, p_c: float,
                      max_expansions: int = 12,
                      xatol: float = 1e-8) -> float:
    """ESP profit-maximizing price given the CSP price ``p_c``.

    Searches ``(max(C_e, p_c) + ε, hi)`` with an expanding upper bracket.
    When ``p_c <= C_e`` the model's ESP profit increases toward a finite
    asymptote and the supremum is not attained (edge demand is hyperbolic
    in the premium — a genuine feature of the paper's demand system, see
    DESIGN.md); in that regime the search returns the capped optimum so
    the leader iteration can continue — the CSP's reply then raises
    ``P_c`` above ``C_e`` and subsequent ESP responses are interior.
    """
    params = oracle.params
    lo = max(params.edge_cost, p_c) * (1.0 + 1e-7) + 1e-9
    hi = max(4.0 * lo, 8.0 * p_c, 1.0)

    def profit(p_e: float) -> float:
        return oracle.esp_profit(Prices(p_e=p_e, p_c=p_c))

    best = lo
    for _ in range(max_expansions):
        best = _bounded_argmax(profit, lo, hi, xatol)
        if best < 0.99 * hi:
            return best
        hi *= 2.0
    return best


def csp_best_response(oracle: DemandOracle, p_e: float,
                      xatol: float = 1e-8) -> float:
    """CSP profit-maximizing price given the ESP price ``p_e``.

    The CSP never prices above ``p_e`` (edge would dominate and cloud
    demand vanish), so the search interval is ``(C_c + ε, p_e)``.
    """
    params = oracle.params
    lo = params.cloud_cost * (1.0 + 1e-7) + 1e-9
    hi = p_e * (1.0 - 1e-9)
    if hi <= lo:
        raise InfeasibleGameError(
            f"no feasible CSP price below P_e={p_e} and above "
            f"C_c={params.cloud_cost}")

    def profit(p_c: float) -> float:
        return oracle.csp_profit(Prices(p_e=p_e, p_c=p_c))

    return _bounded_argmax(profit, lo, hi, xatol)
