"""Independent equilibrium verification.

The solvers in this package are validated against an *independent*
optimizer: for each miner we re-solve its decision problem with SciPy's
SLSQP on the raw utility function (no KKT shortcuts) and measure the best
unilateral improvement. This is the programmatic form of the equilibrium
definition (Definition 1) and backs both the test suite and the
``verify``-style assertions in examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from . import utility
from .nep import MinerEquilibrium
from .params import EdgeMode, GameParameters, Prices

__all__ = ["DeviationReport", "best_deviation_gain",
           "verify_miner_equilibrium", "nikaido_isoda_residual"]


@dataclass
class DeviationReport:
    """Result of a no-profitable-deviation scan.

    Attributes:
        max_gain: Largest relative utility improvement found by any
            unilateral deviation (<= tolerance at an equilibrium).
        worst_miner: Index of the miner with the largest gain.
        gains: Per-miner best relative gains.
        is_equilibrium: Whether ``max_gain`` is below the tolerance used.
    """

    max_gain: float
    worst_miner: int
    gains: np.ndarray
    is_equilibrium: bool


def _deviation_problem(i: int, e: np.ndarray, c: np.ndarray,
                       params: GameParameters, prices: Prices,
                       capacity_slack: Optional[float]) -> Tuple[float,
                                                                 np.ndarray]:
    """Best utility miner ``i`` can reach by unilateral deviation.

    Returns ``(best_utility, best_strategy)``. Standalone mode restricts the
    edge request to the capacity left by the other miners (the GNEP
    strategy-set coupling).
    """
    budgets = params.budget_array

    def neg_u(x: np.ndarray) -> float:
        e_mod = e.copy()
        c_mod = c.copy()
        e_mod[i] = x[0]
        c_mod[i] = x[1]
        return -float(utility.miner_utilities(e_mod, c_mod, params,
                                              prices)[i])

    constraints = [{
        "type": "ineq",
        "fun": lambda x: budgets[i] - prices.p_e * x[0] - prices.p_c * x[1],
    }]
    if capacity_slack is not None:
        constraints.append({
            "type": "ineq",
            "fun": lambda x: capacity_slack - x[0],
        })
    bounds = [(0.0, None), (0.0, None)]
    # Multi-start: current point plus a few feasible alternatives to avoid
    # local stalls of SLSQP on the boundary.
    starts: List[np.ndarray] = [np.array([e[i], c[i]])]
    b = float(budgets[i])
    starts.append(np.array([b / (2 * prices.p_e), b / (4 * prices.p_c)]))
    starts.append(np.array([1e-6, b / (2 * prices.p_c)]))
    if capacity_slack is not None:
        cap = min(capacity_slack, b / prices.p_e)
        starts.append(np.array([0.9 * cap, b / (4 * prices.p_c)]))
    best_val = -np.inf
    best_x = np.array([e[i], c[i]])
    for x0 in starts:
        res = minimize(neg_u, x0, method="SLSQP", bounds=bounds,
                       constraints=constraints,
                       options={"maxiter": 300, "ftol": 1e-14})
        if res.success and -res.fun > best_val:
            best_val = -res.fun
            best_x = np.asarray(res.x)
    return best_val, best_x


def best_deviation_gain(eq: MinerEquilibrium,
                        rel_tol: float = 1e-5) -> DeviationReport:
    """Scan every miner for profitable unilateral deviations.

    Args:
        eq: Candidate miner equilibrium.
        rel_tol: Relative tolerance on the utility gain below which the
            profile counts as an equilibrium.
    """
    params = eq.params
    prices = eq.prices
    base = eq.utilities
    gains = np.zeros(params.n)
    capacity_slack = None
    for i in range(params.n):
        if params.mode is EdgeMode.STANDALONE:
            others_edge = eq.total_edge - float(eq.e[i])
            capacity_slack = max(float(params.e_max) - others_edge, 0.0)
        best_val, _ = _deviation_problem(i, eq.e, eq.c, params, prices,
                                         capacity_slack)
        denom = max(abs(float(base[i])), 1.0)
        gains[i] = (best_val - float(base[i])) / denom
    worst = int(np.argmax(gains))
    max_gain = float(gains[worst])
    return DeviationReport(max_gain=max_gain, worst_miner=worst,
                           gains=gains, is_equilibrium=max_gain <= rel_tol)


def verify_miner_equilibrium(eq: MinerEquilibrium,
                             rel_tol: float = 1e-5) -> bool:
    """Convenience wrapper: True iff no profitable unilateral deviation."""
    return best_deviation_gain(eq, rel_tol=rel_tol).is_equilibrium


def nikaido_isoda_residual(eq: MinerEquilibrium, nu: float = None) -> float:
    """Nikaido–Isoda merit value of a profile.

    ``V(x) = Σ_i [ u_i(BR_i(x_{-i}), x_{-i}) - u_i(x_i, x_{-i}) ]`` — the
    total utility every player could gain by unilaterally best-responding.
    Non-negative everywhere and zero exactly at Nash equilibria, so it
    serves as a fast distance-to-equilibrium diagnostic (the exact
    semi-analytic best response makes it much cheaper than the SLSQP scan
    of :func:`best_deviation_gain`).

    Args:
        eq: Candidate profile.
        nu: Capacity shadow price for the standalone decomposition; when
            ``None`` it is taken from ``eq.nu`` (0 for connected mode), so
            the residual measures distance to the *variational*
            equilibrium in standalone mode.
    """
    from .miner_best_response import ResponseContext, solve_best_response

    params = eq.params
    prices = eq.prices
    shadow = eq.nu if nu is None else nu
    base = eq.utilities
    budgets = params.budget_array
    h = params.effective_h
    total = 0.0
    E = eq.total_edge
    S = eq.total
    for i in range(params.n):
        e_others = max(E - float(eq.e[i]), 0.0)
        s_others = max(S - float(eq.e[i]) - float(eq.c[i]), e_others)
        br = solve_best_response(
            ResponseContext(e_others=e_others, s_others=s_others),
            reward=params.reward, beta=params.fork_rate, h=h,
            p_e=prices.p_e, p_c=prices.p_c, budget=float(budgets[i]),
            nu=shadow)
        e_mod = eq.e.copy()
        c_mod = eq.c.copy()
        e_mod[i] = br.e
        c_mod[i] = br.c
        best = float(utility.miner_utilities(e_mod, c_mod, params,
                                             prices)[i])
        # The shadow price is a fee in the decomposed objective but not in
        # the face-value utility; compare on the decomposed objective so
        # the residual is exactly zero at the variational equilibrium.
        best -= shadow * br.e
        current = float(base[i]) - shadow * float(eq.e[i])
        total += max(best - current, 0.0)
    return total
