"""Multi-ESP extension: price competition among edge providers.

The paper's "future work" direction: what changes when *several* edge
providers compete for the miners? With zero latency at every ESP the
providers are perfect substitutes, so (homogeneous miners, interior
regime, common satisfaction probability ``h``) the miner side aggregates:
the marginal value of the ``E``-th edge unit follows from Corollary 1's
FOC,

    v(E) = P_c + n k β h / E ,     k = R (n-1) / n²,

i.e. aggregate edge demand at an effective price ``p`` is
``E_d(p) = n k β h / (p - P_c)``. Miners then fill providers
cheapest-first up to their capacities — a textbook Bertrand–Edgeworth
market:

* **ample capacity** → undercutting drives edge prices to cost
  (Bertrand), transferring the edge premium to the miners;
* **scarce capacity** → prices stay above cost (Edgeworth), each
  provider selling out.

:func:`clear_market` computes the allocation for posted prices;
:func:`best_response_price` the numeric pricing reply;
:func:`undercutting_dynamics` iterates replies and reports the resting
point or cycle. Experiment EXT6 sweeps the number of competitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy.optimize import minimize_scalar

from ..exceptions import ConfigurationError

__all__ = ["EdgeSupplier", "MultiEdgeMarket", "MarketClearing",
           "clear_market", "best_response_price", "undercutting_dynamics"]


@dataclass(frozen=True)
class EdgeSupplier:
    """One competing edge provider.

    Attributes:
        price: Posted unit price.
        capacity: Units it can serve (``inf`` allowed).
        unit_cost: Operating cost per unit.
    """

    price: float
    capacity: float
    unit_cost: float = 0.0

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ConfigurationError("price must be positive")
        if self.capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.unit_cost < 0:
            raise ConfigurationError("unit_cost must be non-negative")


@dataclass(frozen=True)
class MultiEdgeMarket:
    """Market primitives shared by all providers.

    Attributes:
        n: Number of (homogeneous) miners.
        reward: Block reward ``R``.
        beta: Fork rate.
        h: Common edge satisfaction probability.
        p_c: The CSP's price (taken as given here; the focus is edge
            competition).
    """

    n: int
    reward: float
    beta: float
    h: float
    p_c: float

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError("need n >= 2 miners")
        if self.reward <= 0:
            raise ConfigurationError("reward must be positive")
        if not 0.0 <= self.beta < 1.0:
            raise ConfigurationError("beta must be in [0, 1)")
        if not 0.0 < self.h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        if self.p_c <= 0:
            raise ConfigurationError("p_c must be positive")

    @property
    def k(self) -> float:
        """Corollary-1 constant ``R (n-1)/n²``."""
        return self.reward * (self.n - 1) / (self.n * self.n)

    @property
    def exclusion_price(self) -> float:
        """Edge price below which the cloud is priced out entirely:
        ``P_c D / a`` with ``D = 1-β+βh``, ``a = 1-β`` (the Theorem-3
        mixed-strategy bound read from the other side)."""
        a = 1.0 - self.beta
        D = a + self.beta * self.h
        return self.p_c * D / a

    def demand(self, price: float) -> float:
        """Aggregate edge demand at effective price ``price``.

        Mixed regime above the exclusion price (``n k β h / (p - P_c)``,
        Corollary 1); pure-edge regime below it (the cloud is dominated
        and the edge FOC alone gives ``n k D / p``). Continuous at the
        kink.
        """
        a = 1.0 - self.beta
        D = a + self.beta * self.h
        if price <= self.exclusion_price:
            return self.n * self.k * D / price
        return self.n * self.k * self.beta * self.h / (price - self.p_c)

    def marginal_value(self, total_edge: float) -> float:
        """Inverse demand: ``v(E) = P_c + n k β h / E`` above the kink,
        ``n k D / E`` below it."""
        if total_edge <= 0:
            return float("inf")
        a = 1.0 - self.beta
        D = a + self.beta * self.h
        mixed = self.p_c + self.n * self.k * self.beta * self.h \
            / total_edge
        if mixed > self.exclusion_price:
            return mixed
        return self.n * self.k * D / total_edge


@dataclass
class MarketClearing:
    """Outcome of clearing the multi-ESP market at posted prices.

    Attributes:
        sales: Units sold per supplier (input order).
        total_edge: Aggregate edge units.
        marginal_price: Price of the marginal (last-filled) provider —
            the miners' effective edge price.
        profits: Per-supplier profits.
    """

    sales: np.ndarray
    total_edge: float
    marginal_price: float
    profits: np.ndarray

    @property
    def active_suppliers(self) -> int:
        return int(np.sum(self.sales > 1e-12))


def clear_market(market: MultiEdgeMarket,
                 suppliers: Sequence[EdgeSupplier]) -> MarketClearing:
    """Fill providers cheapest-first against the aggregate demand curve.

    Ties in price share the residual demand proportionally to capacity
    (the standard Bertrand–Edgeworth rationing rule for identical
    prices).
    """
    if len(suppliers) == 0:
        raise ConfigurationError("need at least one supplier")
    sales = np.zeros(len(suppliers))
    order = sorted(range(len(suppliers)),
                   key=lambda j: suppliers[j].price)
    filled = 0.0
    marginal_price = suppliers[order[0]].price
    i = 0
    while i < len(order):
        # Group of equal-priced suppliers.
        price = suppliers[order[i]].price
        group = [j for j in order[i:] if suppliers[j].price == price]
        i += len(group)
        demand_here = market.demand(price)
        residual = max(demand_here - filled, 0.0)
        if residual <= 0:
            break
        group_capacity = sum(suppliers[j].capacity for j in group)
        take = min(residual, group_capacity)
        if group_capacity > 0:
            for j in group:
                share = suppliers[j].capacity / group_capacity \
                    if np.isfinite(group_capacity) else \
                    (1.0 if np.isinf(suppliers[j].capacity) else 0.0)
                sales[j] = take * share
        filled += take
        marginal_price = price
        if take < residual - 1e-12:
            continue  # group sold out; next price level sees less demand
        break
    profits = np.array([
        (suppliers[j].price - suppliers[j].unit_cost) * sales[j]
        for j in range(len(suppliers))])
    return MarketClearing(sales=sales, total_edge=float(filled),
                          marginal_price=marginal_price, profits=profits)


def best_response_price(market: MultiEdgeMarket,
                        suppliers: Sequence[EdgeSupplier], index: int,
                        price_floor: Optional[float] = None,
                        tick: float = 1e-3,
                        xatol: float = 1e-8) -> float:
    """Supplier ``index``'s profit-maximizing price, rivals fixed.

    Searches above ``max(cost, floor)``; the profit function is piecewise
    smooth with kinks at rival prices, so the search runs per segment and
    keeps the best. ``tick`` is the minimum relative undercut — prices
    live on a discrete grid of relative spacing ``tick``, the standard
    device that makes "charge just below the rival" well-defined (the
    continuous supremum is not attained).
    """
    if not 0 <= index < len(suppliers):
        raise ConfigurationError("supplier index out of range")
    if not 0.0 < tick < 0.5:
        raise ConfigurationError("tick must be in (0, 0.5)")
    me = suppliers[index]
    lo = max(me.unit_cost, price_floor or 0.0, market.p_c * 1e-6) + 1e-9

    def profit(p: float) -> float:
        trial = list(suppliers)
        trial[index] = EdgeSupplier(price=p, capacity=me.capacity,
                                    unit_cost=me.unit_cost)
        clearing = clear_market(market, trial)
        return float(clearing.profits[index])

    rival_prices = sorted({s.price for j, s in enumerate(suppliers)
                           if j != index})
    # Segment boundaries: just-below each rival price and the demand
    # kink (cloud-exclusion price), plus a wide top.
    kinks = sorted(set([p for p in rival_prices if p > lo]
                       + ([market.exclusion_price]
                          if market.exclusion_price > lo else [])))
    breakpoints = [lo] + kinks \
        + [max(4.0 * (rival_prices[-1] if rival_prices else lo),
               4.0 * market.exclusion_price, 2.0 * market.p_c + 1.0)]
    best_p, best_v = lo, -np.inf
    for a, b in zip(breakpoints, breakpoints[1:]):
        # One full tick below the segment's upper boundary: the rival at
        # b must actually be undercut, not matched to within round-off.
        hi = b * (1.0 - tick) if b in rival_prices else b
        if hi <= a:
            continue
        res = minimize_scalar(lambda p: -profit(p), bounds=(a, hi),
                              method="bounded",
                              options={"xatol": xatol})
        if -res.fun > best_v:
            best_v = -res.fun
            best_p = float(res.x)
        v = profit(hi)
        if v >= best_v:
            best_v = v
            best_p = hi
    # Matching a rival exactly (sharing the demand) is also a candidate —
    # relevant at the Bertrand floor where undercutting below cost loses.
    for p in rival_prices:
        if p > me.unit_cost and profit(p) > best_v:
            best_v = profit(p)
            best_p = p
    return best_p


@dataclass
class UndercuttingResult:
    """Outcome of iterated pricing replies.

    Attributes:
        suppliers: Final supplier states.
        converged: Whether prices stopped moving.
        cycled: Whether a price cycle (Edgeworth cycle) was detected.
        rounds: Pricing rounds performed.
    """

    suppliers: List[EdgeSupplier]
    converged: bool
    cycled: bool
    rounds: int


def undercutting_dynamics(market: MultiEdgeMarket,
                          suppliers: Sequence[EdgeSupplier],
                          max_rounds: int = 2000,
                          tick: float = 1e-3,
                          tol: Optional[float] = None,
                          ) -> UndercuttingResult:
    """Iterate sequential price best responses (Edgeworth dynamics).

    With ample capacities this descends by undercutting to
    marginal-cost-ish pricing (Bertrand); with scarce capacities it can
    rest above cost at market clearing or cycle (the classic Edgeworth
    cycle), which is detected and reported. ``tick`` is the relative
    price grid of :func:`best_response_price`; convergence is declared
    when a full round moves no price by more than a fraction of a tick.
    """
    state = list(suppliers)
    seen = {}
    threshold = tol if tol is not None else \
        0.1 * tick * max(s.price for s in suppliers)
    for round_idx in range(max_rounds):
        moved = 0.0
        for j in range(len(state)):
            new_price = best_response_price(market, state, j, tick=tick)
            moved = max(moved, abs(new_price - state[j].price))
            state[j] = EdgeSupplier(price=new_price,
                                    capacity=state[j].capacity,
                                    unit_cost=state[j].unit_cost)
        key = tuple(round(s.price, 9) for s in state)
        if moved < threshold:
            return UndercuttingResult(suppliers=state, converged=True,
                                      cycled=False, rounds=round_idx + 1)
        if key in seen:
            return UndercuttingResult(suppliers=state, converged=False,
                                      cycled=True, rounds=round_idx + 1)
        seen[key] = round_idx
    return UndercuttingResult(suppliers=state, converged=False,
                              cycled=False, rounds=max_rounds)


__all__.append("UndercuttingResult")


@dataclass(frozen=True)
class SymmetricEquilibrium:
    """Candidate symmetric Bertrand–Edgeworth equilibrium.

    Attributes:
        price: Common posted price.
        per_supplier_sales: Units each supplier sells.
        per_supplier_profit: Profit each supplier earns.
        regime: ``"bertrand"`` (price = cost, ample capacity) or
            ``"clearing"`` (price = inverse demand at total capacity).
        verified: Whether a numeric best-response check found no
            profitable unilateral deviation.
    """

    price: float
    per_supplier_sales: float
    per_supplier_profit: float
    regime: str
    verified: bool


def symmetric_equilibrium(market: MultiEdgeMarket, m: int,
                          capacity: float, unit_cost: float,
                          tick: float = 1e-3) -> SymmetricEquilibrium:
    """Analytic symmetric equilibrium for ``m >= 2`` identical suppliers.

    The candidate price is ``max(cost, v(m·K))``: undercutting is
    pointless once either the margin vanishes (Bertrand) or the joint
    capacity already clears the market (Edgeworth's capacity-constrained
    region). The candidate is then verified by a numeric unilateral
    best-response check.
    """
    if m < 2:
        raise ConfigurationError(
            "symmetric_equilibrium needs m >= 2 (use best_response_price "
            "for the monopoly case)")
    if capacity <= 0 or unit_cost < 0:
        raise ConfigurationError("invalid capacity or cost")
    clearing_price = market.marginal_value(m * capacity)
    if clearing_price > unit_cost:
        price = clearing_price
        regime = "clearing"
    else:
        price = max(unit_cost, market.p_c * 1e-6)
        regime = "bertrand"
    suppliers = [EdgeSupplier(price=price, capacity=capacity,
                              unit_cost=unit_cost) for _ in range(m)]
    clearing = clear_market(market, suppliers)
    sales = float(clearing.sales[0])
    profit = float(clearing.profits[0])
    # Numeric no-deviation check for supplier 0.
    br = best_response_price(market, suppliers, 0, tick=tick)
    trial = list(suppliers)
    trial[0] = EdgeSupplier(price=br, capacity=capacity,
                            unit_cost=unit_cost)
    dev_profit = float(clear_market(market, trial).profits[0])
    verified = dev_profit <= profit * (1.0 + 1e-6) + 1e-9
    return SymmetricEquilibrium(price=price, per_supplier_sales=sales,
                                per_supplier_profit=profit, regime=regime,
                                verified=verified)


__all__.append("SymmetricEquilibrium")
__all__.append("symmetric_equilibrium")
