"""Utility and profit functions (Problems 1 and 2 of the paper).

Miner side: ``U_i = R * W_i - (P_e e_i + P_c c_i)`` with the mode-appropriate
winning probability. SP side: ``V_e = (P_e - C_e) E``, ``V_c = (P_c - C_c) C``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from . import winning
from .params import GameParameters, Prices

__all__ = [
    "miner_utilities",
    "miner_utility_single",
    "miner_utility_gradients",
    "sp_profits",
    "spending",
]


def spending(e: np.ndarray, c: np.ndarray, prices: Prices) -> np.ndarray:
    """Per-miner spending ``P_e e_i + P_c c_i``."""
    return prices.p_e * np.asarray(e, dtype=float) + \
        prices.p_c * np.asarray(c, dtype=float)


def miner_utilities(e: np.ndarray, c: np.ndarray, params: GameParameters,
                    prices: Prices) -> np.ndarray:
    """Vector of miner utilities under the mode-appropriate ``W_i``.

    Connected mode uses Eq. (9); standalone mode uses Eq. (23) and assumes
    the caller keeps the profile inside the shared capacity constraint
    (solvers in :mod:`repro.core.gnep` enforce it).
    """
    w = winning.w_connected(e, c, params.fork_rate, params.effective_h)
    return params.reward * w - spending(e, c, prices)


def miner_utility_single(i: int, e: np.ndarray, c: np.ndarray,
                         params: GameParameters, prices: Prices) -> float:
    """Utility of miner ``i`` under profile ``(e, c)``."""
    return float(miner_utilities(e, c, params, prices)[i])


def miner_utility_gradients(e: np.ndarray, c: np.ndarray,
                            params: GameParameters,
                            prices: Prices) -> Tuple[np.ndarray, np.ndarray]:
    """Per-miner gradients ``(∂U_i/∂e_i, ∂U_i/∂c_i)``.

    These are the components of the VI operator ``F = -∂U`` of Theorem 2 /
    Theorem 5 (negated there).
    """
    dw_de, dw_dc = winning.w_connected_gradients(
        e, c, params.fork_rate, params.effective_h)
    du_de = params.reward * dw_de - prices.p_e
    du_dc = params.reward * dw_dc - prices.p_c
    return du_de, du_dc


def sp_profits(e: np.ndarray, c: np.ndarray, params: GameParameters,
               prices: Prices) -> Tuple[float, float]:
    """SP profits ``(V_e, V_c)`` of Problem 2 under profile ``(e, c)``."""
    E = float(np.sum(e))
    C = float(np.sum(c))
    v_e = (prices.p_e - params.edge_cost) * E
    v_c = (prices.p_c - params.cloud_cost) * C
    return v_e, v_c
