"""Connected-mode miner subgame (Problem 1a, NEP_MINER) and its solver.

Theorem 2 establishes a unique Nash equilibrium; the distributed iterative
algorithm sketched below Eq. (15) — every miner repeatedly plays its exact
best response to the others' aggregates — converges to it. This module
implements that iteration with optional damping plus convergence
diagnostics, and packages the result with every quantity downstream code
needs (aggregates, utilities, SP profits).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConvergenceError
from ..game.diagnostics import ConvergenceReport, ResidualRecorder
from ..telemetry import DEFAULT_BUCKETS, TELEMETRY as _TEL
from . import utility
from .miner_best_response import ResponseContext, solve_best_response
from .params import GameParameters, Prices

__all__ = ["MinerEquilibrium", "solve_connected_equilibrium",
           "initial_profile", "best_response_profile", "KERNELS",
           "AUTO_VECTORIZED_MIN_N", "resolve_kernel"]

#: Valid values of the ``kernel`` parameter of
#: :func:`solve_connected_equilibrium`.
KERNELS = ("scalar", "running", "vectorized", "auto")

#: Smallest ``n`` at which ``kernel="auto"`` picks the aggregate
#: (vectorized) kernel.  ``BENCH_solvers.json`` puts the crossover
#: between the running sweep and the aggregate solve at n ≈ 20: the
#: sweep needs ``O(n)`` sweeps of ``O(n)`` work while the aggregate
#: kernel's iteration count is n-independent, so the ratio
#: running/vectorized climbs from ~0.1x at n=8 through ~0.4x at n=16
#: to ~1.6x at n=24 and ~180x at n=1024.
AUTO_VECTORIZED_MIN_N = 20


def resolve_kernel(kernel: str, n: int) -> str:
    """Resolve ``"auto"`` to a concrete kernel for an ``n``-miner game.

    Deterministic in ``n`` alone (no timing probes) so cache keys,
    serving results, and telemetry labels stay reproducible: ``auto``
    becomes ``"running"`` below :data:`AUTO_VECTORIZED_MIN_N` miners
    and ``"vectorized"`` at or above it.  Concrete kernel names pass
    through unchanged.
    """
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    if kernel != "auto":
        return kernel
    return "vectorized" if n >= AUTO_VECTORIZED_MIN_N else "running"


@dataclass
class MinerEquilibrium:
    """A miner-subgame equilibrium profile with derived quantities.

    Attributes:
        e: ESP requests ``e_i`` (shape ``(n,)``).
        c: CSP requests ``c_i`` (shape ``(n,)``).
        params: Game parameters the profile was solved under.
        prices: SP prices the profile responds to.
        report: Convergence diagnostics of the solver run.
        nu: Shared-capacity multiplier (standalone mode; 0 in connected).
        error_bound: Certified per-coordinate approximation bound when
            the profile came from a type-space compressed solve
            (``n_types``); ``None`` for exact solves.
    """

    e: np.ndarray
    c: np.ndarray
    params: GameParameters
    prices: Prices
    report: ConvergenceReport
    nu: float = 0.0
    error_bound: Optional[float] = None

    def __post_init__(self) -> None:
        self.e = np.asarray(self.e, dtype=float)
        self.c = np.asarray(self.c, dtype=float)

    @property
    def total_edge(self) -> float:
        """``E = Σ e_i``."""
        return float(np.sum(self.e))

    @property
    def total_cloud(self) -> float:
        """``C = Σ c_i``."""
        return float(np.sum(self.c))

    @property
    def total(self) -> float:
        """``S = E + C``."""
        return self.total_edge + self.total_cloud

    @property
    def utilities(self) -> np.ndarray:
        """Per-miner utilities ``U_i`` at the equilibrium."""
        return utility.miner_utilities(self.e, self.c, self.params,
                                       self.prices)

    @property
    def spending(self) -> np.ndarray:
        """Per-miner spending at the equilibrium."""
        return utility.spending(self.e, self.c, self.prices)

    @property
    def sp_profits(self) -> Tuple[float, float]:
        """SP profits ``(V_e, V_c)`` induced by this profile."""
        return utility.sp_profits(self.e, self.c, self.params, self.prices)

    @property
    def converged(self) -> bool:
        return self.report.converged

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        v_e, v_c = self.sp_profits
        return (
            f"{self.params.mode.value} equilibrium, n={self.params.n}: "
            f"E={self.total_edge:.4f}, C={self.total_cloud:.4f}, "
            f"S={self.total:.4f}; V_e={v_e:.4f}, V_c={v_c:.4f}; "
            f"{self.report}"
        )


def initial_profile(params: GameParameters,
                    prices: Prices) -> Tuple[np.ndarray, np.ndarray]:
    """A strictly interior feasible starting profile.

    Starts near the interior (Corollary 1) magnitudes rather than a fixed
    budget fraction: very large budgets would otherwise start the
    iteration far above the equilibrium, where the undamped best response
    can collapse the whole profile onto the spurious all-zero fixed point
    of the smoothed model.
    """
    n = params.n
    beta = params.fork_rate
    h = params.effective_h
    k = params.reward * (n - 1) / (n * n)
    budgets = params.budget_array
    if prices.p_e > prices.p_c and beta * h > 0:
        e_scale = k * beta * h / prices.premium()
    else:
        e_scale = k * 0.1 / prices.p_e
    total_scale = k * max(1.0 - beta, 0.05) / prices.p_c
    c_scale = max(total_scale - e_scale, 0.1 * total_scale)
    e_cap = budgets / (4.0 * prices.p_e)
    c_cap = budgets / (4.0 * prices.p_c)
    e = np.minimum(np.full(n, 0.5 * max(e_scale, 1e-9)), e_cap)
    c = np.minimum(np.full(n, 0.5 * max(c_scale, 1e-9)), c_cap)
    return e, c


def best_response_profile(e: np.ndarray, c: np.ndarray,
                          params: GameParameters, prices: Prices,
                          nu: float = 0.0,
                          sweep: str = "gauss-seidel",
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """One full best-response sweep over all miners.

    Args:
        e, c: Current profile (modified copies are returned).
        params: Game parameters.
        prices: Current SP prices.
        nu: Shared-capacity multiplier (GNEP decomposition; 0 in connected).
        sweep: ``"gauss-seidel"`` updates in place (the paper's asynchronous
            scheme); ``"jacobi"`` best-responds to the frozen profile.
    """
    e_new = np.array(e, dtype=float, copy=True)
    c_new = np.array(c, dtype=float, copy=True)
    source_e = e_new if sweep == "gauss-seidel" else np.array(e, dtype=float)
    source_c = c_new if sweep == "gauss-seidel" else np.array(c, dtype=float)
    budgets = params.budget_array
    h = params.effective_h
    for i in range(params.n):
        e_others = float(np.sum(source_e)) - float(source_e[i])
        s_others = e_others + float(np.sum(source_c)) - float(source_c[i])
        ctx = ResponseContext(e_others=max(e_others, 0.0),
                              s_others=max(s_others, 0.0))
        br = solve_best_response(
            ctx, reward=params.reward, beta=params.fork_rate, h=h,
            p_e=prices.p_e, p_c=prices.p_c, budget=float(budgets[i]), nu=nu)
        e_new[i] = br.e
        c_new[i] = br.c
        if sweep == "gauss-seidel":
            source_e[i] = br.e
            source_c[i] = br.c
    return e_new, c_new


def _solve_vectorized(params: GameParameters, prices: Prices, tol: float,
                      _nu: float, label: str = "vectorized"
                      ) -> Optional[Tuple[np.ndarray, np.ndarray,
                                          ConvergenceReport]]:
    """Aggregate-kernel solve plus batched fixed-point verification.

    Returns ``None`` when the verification residual misses ``tol`` (the
    caller falls back to the sweeping solver) — the vectorized path
    never silently degrades accuracy.  ``label`` is the telemetry
    kernel label (``"auto:vectorized"`` when ``kernel="auto"`` resolved
    here).
    """
    from ..kernels.aggregate import solve_connected_aggregate
    from ..kernels.batched_br import jacobi_sweep

    sweep_hist = (_TEL.metrics.histogram(
        "br_sweep_seconds", "Best-response sweep / kernel-solve latency",
        labels={"kernel": label}, buckets=DEFAULT_BUCKETS)
        if _TEL.enabled else None)
    t0 = time.perf_counter() if sweep_hist is not None else 0.0
    sol = solve_connected_aggregate(params, prices, nu=_nu)
    if sweep_hist is not None:
        sweep_hist.observe(time.perf_counter() - t0)
    # One exact batched best-response sweep certifies the profile: at
    # the true equilibrium BR(x*) = x*, so the sweep residual bounds the
    # aggregate kernel's error through the BR map's local Lipschitz
    # constant.
    e_br, c_br = jacobi_sweep(sol.e, sol.c, params, prices, nu=_nu)
    scale = max(1.0, float(np.max(np.abs(e_br))),
                float(np.max(np.abs(c_br))))
    residual = max(float(np.max(np.abs(e_br - sol.e))),
                   float(np.max(np.abs(c_br - sol.c)))) / scale
    if not residual < tol:
        return None
    report = ConvergenceReport(
        converged=True, iterations=sol.evals, residual=residual,
        tolerance=tol, history=[residual],
        message="aggregate kernel (iterations = consistency evals)")
    return np.asarray(e_br, dtype=float), np.asarray(c_br, dtype=float), \
        report


def _solve_typespace(params: GameParameters, prices: Prices, tol: float,
                     _nu: float, n_types: int) -> MinerEquilibrium:
    """Compressed type-space solve (see :mod:`repro.kernels.typespace`)."""
    from ..kernels.typespace import solve_connected_typespace

    sweep_hist = (_TEL.metrics.histogram(
        "br_sweep_seconds", "Best-response sweep / kernel-solve latency",
        labels={"kernel": "typespace"}, buckets=DEFAULT_BUCKETS)
        if _TEL.enabled else None)
    t0 = time.perf_counter() if sweep_hist is not None else 0.0
    ts = solve_connected_typespace(params, prices, n_types, nu=_nu)
    if sweep_hist is not None:
        sweep_hist.observe(time.perf_counter() - t0)
    report = ConvergenceReport(
        converged=True, iterations=ts.evals, residual=ts.error_bound,
        tolerance=tol, history=[ts.error_bound],
        message=(f"type-space compression k={ts.compression.k}: "
                 f"certified per-coordinate bound {ts.error_bound:.3e}"
                 + (" (exact)" if ts.exact else "")))
    return MinerEquilibrium(e=ts.e, c=ts.c, params=params, prices=prices,
                            report=report, nu=_nu,
                            error_bound=None if ts.exact
                            else ts.error_bound)


def solve_connected_equilibrium(params: GameParameters, prices: Prices,
                                tol: float = 1e-9, max_iter: int = 3000,
                                damping: float = 1.0,
                                initial: Optional[Tuple[np.ndarray,
                                                        np.ndarray]] = None,
                                raise_on_failure: bool = False,
                                _nu: float = 0.0,
                                kernel: str = "scalar",
                                n_types: Optional[int] = None,
                                ) -> MinerEquilibrium:
    """Solve NEP_MINER by damped asynchronous best response.

    Args:
        params: Game parameters (connected mode expected; the standalone
            GNEP solver reuses this routine internally via ``_nu``).
        prices: Announced SP prices.
        tol: Relative convergence tolerance on the strategy update.
        max_iter: Maximum sweeps.
        damping: Step in ``x <- (1-α) x + α BR(x)``; 1.0 is undamped.
        initial: Optional warm-start profile ``(e, c)``.
        raise_on_failure: Raise :class:`ConvergenceError` on non-convergence
            instead of returning a flagged result.
        _nu: Internal — shared-capacity multiplier for the GNEP
            decomposition.
        kernel: ``"scalar"`` (default) sweeps with the per-miner
            reference kernel and re-summed aggregates — the golden,
            bit-stable path.  ``"running"`` sweeps with ``O(n)`` running
            aggregates (within 1 ulp of scalar per sweep, not
            bit-identical).  ``"vectorized"`` solves the aggregate
            consistency system directly (:mod:`repro.kernels`),
            verifies the result is a fixed point of the exact batched
            best-response map, and falls back to ``"running"`` sweeps
            if verification fails; ``damping`` and ``initial`` only
            affect that fallback.  ``"auto"`` picks ``"running"`` or
            ``"vectorized"`` by miner count
            (:func:`resolve_kernel` / :data:`AUTO_VECTORIZED_MIN_N`);
            the resolved choice is recorded in telemetry kernel labels
            as ``"auto:running"`` / ``"auto:vectorized"``.
        n_types: Compress the population into at most this many weighted
            budget types and solve in type space with a certified
            approximation bound (:mod:`repro.kernels.typespace`);
            ``None`` (default) or ``n_types >= n`` solves exactly with
            the selected ``kernel``.

    Returns:
        The unique :class:`MinerEquilibrium` (Theorem 2).
    """
    requested = kernel
    kernel = resolve_kernel(kernel, params.n)
    label = f"auto:{kernel}" if requested == "auto" else kernel
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    if n_types is not None and n_types < params.n:
        return _solve_typespace(params, prices, tol, _nu, n_types)
    if kernel == "vectorized":
        solved = _solve_vectorized(params, prices, tol, _nu, label=label)
        if solved is not None:
            e, c, report = solved
            return MinerEquilibrium(e=e, c=c, params=params, prices=prices,
                                    report=report, nu=_nu)
        kernel = "running"
        label = "running"
    if initial is None:
        e, c = initial_profile(params, prices)
    else:
        e = np.array(initial[0], dtype=float, copy=True)
        c = np.array(initial[1], dtype=float, copy=True)
        if e.shape != (params.n,) or c.shape != (params.n,):
            raise ValueError("initial profile shape mismatch")

    if kernel == "running":
        from ..kernels.batched_br import gauss_seidel_sweep_running

        def sweep(e: np.ndarray,
                  c: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return gauss_seidel_sweep_running(e, c, params, prices, nu=_nu)
    else:
        def sweep(e: np.ndarray,
                  c: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            return best_response_profile(e, c, params, prices, nu=_nu)

    sweep_hist = (_TEL.metrics.histogram(
        "br_sweep_seconds", "Best-response sweep / kernel-solve latency",
        labels={"kernel": label}, buckets=DEFAULT_BUCKETS)
        if _TEL.enabled else None)
    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    restarts = 0
    for it in range(max_iter):
        iterations = it + 1
        if sweep_hist is not None:
            t0 = time.perf_counter()
            e_br, c_br = sweep(e, c)
            sweep_hist.observe(time.perf_counter() - t0)
        else:
            e_br, c_br = sweep(e, c)
        gamma = params.fork_rate * params.effective_h
        if gamma > 0.0 and float(np.sum(e_br)) <= 0.0 and restarts < 10:
            # An all-zero edge profile is absorbing for the smoothed model
            # (the edge marginal is proportional to opponents' edge units)
            # but is never a true equilibrium while βh > 0: the first ε of
            # edge power earns the full βh bonus. Restart the edge side
            # closer to the origin instead of accepting the collapse.
            restarts += 1
            e = np.maximum(e, 1e-12) / 10.0 ** restarts
            c = np.asarray(c_br, dtype=float)
            continue
        e_next = (1.0 - damping) * e + damping * e_br
        c_next = (1.0 - damping) * c + damping * c_br
        scale = max(1.0, float(np.max(np.abs(e_next))),
                    float(np.max(np.abs(c_next))))
        residual = max(float(np.max(np.abs(e_next - e))),
                       float(np.max(np.abs(c_next - c)))) / scale
        e, c = e_next, c_next
        if recorder.record(residual):
            converged = True
            break

    report = recorder.report(converged, iterations)
    if not converged and raise_on_failure:
        raise ConvergenceError(f"NEP_MINER iteration failed: {report}",
                               report)
    return MinerEquilibrium(e=e, c=c, params=params, prices=prices,
                            report=report, nu=_nu)
