"""Closed-form equilibria for homogeneous miners (Sections IV-B, IV-C.3).

Implements, with the notation ``a = 1-β``, ``g = βh``, ``D = a + g``:

* **Theorem 3** (budget ``B`` binding):
  ``e* = B g / (D (P_e - P_c))``,
  ``c* = B (a (P_e - P_c) - g P_c) / (P_c D (P_e - P_c))``,
  valid iff ``P_c < a P_e / D`` (mixed-strategy condition).
* **Corollary 1** (sufficient budget, interior KKT):
  ``e* = g R (n-1) / (n² (P_e - P_c))``,
  ``e* + c* = a R (n-1) / (n² P_c)``.
  The per-miner spend of this interior solution is ``R (n-1) D / n²``,
  which is therefore the exact budget threshold separating the two regimes.
* **Theorem 4** (SP equilibrium over the budget-binding demand): the CSP
  best response ``P_c*(P_e)`` solves a scalar concave program (root-found
  here); the ESP anticipates ``P_c*(.)`` and maximizes the re-written
  ``V_e`` of Eq. (22).
* **Table II** (standalone, sufficient budget, capacity binding): fully
  closed forms re-derived in DESIGN.md §2 —
  ``P_c* = sqrt(a R (n-1) C_c / (n² E_max))``,
  ``P_e* = P_c* + β R (n-1) / (n² E_max)``, ``e* = E_max / n`` and the
  mode-invariant total ``S* = a R (n-1) / (n² P_c*)``.

Every formula here is cross-checked against the iterative solvers in the
test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from scipy.optimize import minimize_scalar

from ..exceptions import ConfigurationError, InfeasibleGameError
from .params import Prices, mixed_strategy_price_bound

__all__ = [
    "HomogeneousEquilibrium",
    "SPEquilibrium",
    "binding_budget_threshold",
    "theorem3_binding",
    "corollary1_interior",
    "homogeneous_miner_equilibrium",
    "csp_best_response_binding",
    "csp_best_response_interior",
    "theorem4_sp_equilibrium",
    "table2_standalone",
    "table2_connected",
]


@dataclass(frozen=True)
class HomogeneousEquilibrium:
    """Symmetric miner equilibrium ``(e*, c*)`` per miner.

    Attributes:
        e: Per-miner ESP request.
        c: Per-miner CSP request.
        regime: ``"binding"`` (Theorem 3) or ``"interior"`` (Corollary 1).
        n: Number of miners.
    """

    e: float
    c: float
    regime: str
    n: int

    @property
    def total_edge(self) -> float:
        return self.n * self.e

    @property
    def total_cloud(self) -> float:
        return self.n * self.c

    @property
    def total(self) -> float:
        return self.n * (self.e + self.c)


@dataclass(frozen=True)
class SPEquilibrium:
    """Leader-stage equilibrium: prices, per-miner requests and profits."""

    prices: Prices
    miner: HomogeneousEquilibrium
    v_e: float
    v_c: float


def _validate(n: int, reward: float, beta: float, h: float) -> None:
    if n < 2:
        raise ConfigurationError(f"need n >= 2 miners, got {n}")
    if reward <= 0:
        raise ConfigurationError("reward must be positive")
    if not 0.0 <= beta < 1.0:
        raise ConfigurationError("beta must be in [0, 1)")
    if not 0.0 < h <= 1.0:
        raise ConfigurationError("h must be in (0, 1]")


def binding_budget_threshold(n: int, reward: float, beta: float,
                             h: float) -> float:
    """Per-miner spend of the interior (Corollary 1) equilibrium.

    Budgets strictly below this make the budget constraint bind (Theorem 3
    regime); budgets at or above it leave it slack (Corollary 1 regime).
    The value is ``R (n-1) (1 - β + βh) / n²`` — remarkably independent of
    both prices.
    """
    _validate(n, reward, beta, h)
    return reward * (n - 1) * (1.0 - beta + beta * h) / (n * n)


def _check_mixed(prices: Prices, beta: float, h: float) -> None:
    bound = mixed_strategy_price_bound(beta, h, prices.p_e)
    if prices.p_c >= bound:
        raise InfeasibleGameError(
            f"P_c={prices.p_c} >= {bound:.6g}: the mixed-strategy condition "
            "of Theorem 3 fails (miners would buy no cloud units)")
    if prices.p_e <= prices.p_c:
        raise InfeasibleGameError(
            "closed forms require P_e > P_c (the edge premium)")


def theorem3_binding(n: int, budget: float, beta: float, h: float,
                     prices: Prices, reward: Optional[float] = None,
                     ) -> HomogeneousEquilibrium:
    """Theorem 3: symmetric equilibrium when the budget binds.

    ``reward`` is only used to sanity-check the regime when provided.
    """
    _validate(n, reward if reward is not None else 1.0, beta, h)
    if budget <= 0:
        raise ConfigurationError("budget must be positive")
    _check_mixed(prices, beta, h)
    a = 1.0 - beta
    g = beta * h
    D = a + g
    premium = prices.premium()
    e = budget * g / (D * premium)
    c = budget * (a * premium - g * prices.p_c) / (prices.p_c * D * premium)
    return HomogeneousEquilibrium(e=e, c=c, regime="binding", n=n)


def corollary1_interior(n: int, reward: float, beta: float, h: float,
                        prices: Prices) -> HomogeneousEquilibrium:
    """Corollary 1: symmetric equilibrium with sufficient budgets."""
    _validate(n, reward, beta, h)
    _check_mixed(prices, beta, h)
    a = 1.0 - beta
    g = beta * h
    k = reward * (n - 1) / (n * n)
    e = k * g / prices.premium()
    total = k * a / prices.p_c
    c = total - e
    if c < 0:
        raise InfeasibleGameError(
            "interior solution has c* < 0 despite the price condition; "
            "parameters are inconsistent")
    return HomogeneousEquilibrium(e=e, c=c, regime="interior", n=n)


def homogeneous_miner_equilibrium(n: int, budget: float, reward: float,
                                  beta: float, h: float,
                                  prices: Prices) -> HomogeneousEquilibrium:
    """Unified closed form: picks Theorem 3 vs Corollary 1 by the exact
    budget threshold :func:`binding_budget_threshold`."""
    threshold = binding_budget_threshold(n, reward, beta, h)
    if budget < threshold:
        return theorem3_binding(n, budget, beta, h, prices, reward=reward)
    return corollary1_interior(n, reward, beta, h, prices)


def csp_best_response_binding(p_e: float, n: int, budget: float, beta: float,
                              h: float, cloud_cost: float) -> float:
    """CSP profit-maximizing price against budget-binding demand.

    Maximizes ``V_c = n (P_c - C_c) c*(P_c)`` with Theorem-3 ``c*`` over
    ``P_c in (C_c, a P_e / D)``. Strictly concave on that interval
    (Theorem 4); solved by bounded scalar optimization.
    """
    a = 1.0 - beta
    g = beta * h
    D = a + g
    upper = a * p_e / D
    lower = max(cloud_cost, 0.0)
    if upper <= lower:
        raise InfeasibleGameError(
            f"no feasible CSP price: bound {upper:.6g} <= cost {lower:.6g}")

    def neg_profit(p_c: float) -> float:
        c = budget * (a * (p_e - p_c) - g * p_c) / (p_c * D * (p_e - p_c))
        return -n * (p_c - cloud_cost) * c

    span = upper - lower
    res = minimize_scalar(neg_profit, bounds=(lower + 1e-12 * max(1.0, span),
                                              upper - 1e-12 * max(1.0, span)),
                          method="bounded",
                          options={"xatol": 1e-12 * max(1.0, span)})
    return float(res.x)


def csp_best_response_interior(p_e: float, n: int, reward: float, beta: float,
                               h: float, cloud_cost: float) -> float:
    """CSP profit-maximizing price against sufficient-budget demand.

    Demand per miner is the Corollary-1 ``c*(P_c)``; the profit is concave
    on the feasible interval.
    """
    a = 1.0 - beta
    g = beta * h
    D = a + g
    upper = a * p_e / D
    lower = max(cloud_cost, 0.0)
    if upper <= lower:
        raise InfeasibleGameError(
            f"no feasible CSP price: bound {upper:.6g} <= cost {lower:.6g}")
    k = reward * (n - 1) / (n * n)

    def neg_profit(p_c: float) -> float:
        c = k * (a / p_c - g / (p_e - p_c))
        return -n * (p_c - cloud_cost) * c

    span = upper - lower
    res = minimize_scalar(neg_profit, bounds=(lower + 1e-12 * max(1.0, span),
                                              upper - 1e-12 * max(1.0, span)),
                          method="bounded",
                          options={"xatol": 1e-12 * max(1.0, span)})
    return float(res.x)


def _esp_anticipating_price(csp_response: Callable[[float], float],
                            esp_profit: Callable[[float, float], float],
                            edge_cost: float,
                            p_e_hi: Optional[float] = None) -> float:
    """Maximize the ESP profit anticipating the CSP best response.

    ``csp_response(p_e) -> p_c*`` and ``esp_profit(p_e, p_c) -> V_e``.
    The feasible region is ``p_e > edge_cost``; the search interval expands
    until the profit stops improving at the right end.
    """
    lo = edge_cost + 1e-9 + 1e-9 * max(edge_cost, 1.0)
    hi = p_e_hi if p_e_hi is not None else max(4.0 * (edge_cost + 1.0), 10.0)

    def neg(p_e: float) -> float:
        return -esp_profit(p_e, csp_response(p_e))

    # Expand the bracket while the optimum sits at the right boundary.
    for _ in range(60):
        res = minimize_scalar(neg, bounds=(lo, hi), method="bounded",
                              options={"xatol": 1e-11 * max(1.0, hi)})
        if res.x < hi * 0.99:
            return float(res.x)
        hi *= 2.0
    raise InfeasibleGameError(
        "ESP profit appears unbounded in P_e; check the demand model")


def theorem4_sp_equilibrium(n: int, budget: float, reward: float, beta: float,
                            h: float, edge_cost: float, cloud_cost: float,
                            ) -> SPEquilibrium:
    """Theorem 4: leader-stage equilibrium over budget-binding demand.

    The CSP plays its best response ``P_c*(P_e)``; the ESP, whose profit
    Eq. (22) is concave in ``P_e`` given that response, picks the
    anticipating optimum.
    """
    _validate(n, reward, beta, h)
    a = 1.0 - beta
    g = beta * h
    D = a + g

    def csp_response(p_e: float) -> float:
        return csp_best_response_binding(p_e, n, budget, beta, h, cloud_cost)

    def esp_profit(p_e: float, p_c: float) -> float:
        e = budget * g / (D * (p_e - p_c))
        return n * (p_e - edge_cost) * e

    p_e = _esp_anticipating_price(csp_response, esp_profit, edge_cost)
    p_c = csp_response(p_e)
    prices = Prices(p_e=p_e, p_c=p_c)
    miner = theorem3_binding(n, budget, beta, h, prices, reward=reward)
    v_e = n * (p_e - edge_cost) * miner.e
    v_c = n * (p_c - cloud_cost) * miner.c
    return SPEquilibrium(prices=prices, miner=miner, v_e=v_e, v_c=v_c)


def table2_standalone(n: int, reward: float, beta: float, e_max: float,
                      edge_cost: float, cloud_cost: float) -> SPEquilibrium:
    """Table II, standalone column: sufficient budget, capacity binding.

    Closed forms (DESIGN.md §2): the ESP prices edge demand exactly onto its
    capacity, the CSP solves a clean quadratic FOC.
    """
    _validate(n, reward, beta, 1.0)
    if e_max <= 0:
        raise ConfigurationError("e_max must be positive")
    a = 1.0 - beta
    k = reward * (n - 1) / (n * n)
    if cloud_cost <= 0:
        raise ConfigurationError(
            "Table II standalone forms require a positive CSP cost "
            "(otherwise the CSP prices at cost and earns nothing)")
    # CSP FOC on V_c = (P_c - C_c)(n k a / P_c - E_max):
    #   E_max P_c^2 = n k a C_c  =>  P_c* = sqrt(n k a C_c / E_max).
    p_c = math.sqrt(n * k * a * cloud_cost / e_max)
    total = n * k * a / p_c          # aggregate demand S* (all miners)
    if total < e_max:
        raise InfeasibleGameError(
            f"capacity E_max={e_max} exceeds total demand {total:.6g}; the "
            "capacity constraint would be slack and Table II does not apply")
    # ESP prices edge demand exactly onto capacity:
    #   n k β / (P_e - P_c) = E_max  =>  P_e* = P_c* + n k β / E_max.
    p_e = p_c + n * k * beta / e_max
    prices = Prices(p_e=p_e, p_c=p_c)
    e = e_max / n
    c = total / n - e
    miner = HomogeneousEquilibrium(e=e, c=c, regime="capacity", n=n)
    v_e = (p_e - edge_cost) * e_max
    v_c = (p_c - cloud_cost) * (total - e_max)
    return SPEquilibrium(prices=prices, miner=miner, v_e=v_e, v_c=v_c)


def table2_connected(n: int, reward: float, beta: float, h: float,
                     edge_cost: float, cloud_cost: float) -> SPEquilibrium:
    """Table II, connected column: sufficient budget, transfer-rate ESP.

    The CSP best-responds against Corollary-1 demand; the ESP anticipates.
    """
    _validate(n, reward, beta, h)
    a = 1.0 - beta
    g = beta * h
    k = reward * (n - 1) / (n * n)

    def csp_response(p_e: float) -> float:
        return csp_best_response_interior(p_e, n, reward, beta, h,
                                          cloud_cost)

    def esp_profit(p_e: float, p_c: float) -> float:
        e = k * g / (p_e - p_c)
        return n * (p_e - edge_cost) * e

    p_e = _esp_anticipating_price(csp_response, esp_profit, edge_cost)
    p_c = csp_response(p_e)
    prices = Prices(p_e=p_e, p_c=p_c)
    miner = corollary1_interior(n, reward, beta, h, prices)
    v_e = n * (p_e - edge_cost) * miner.e
    v_c = n * (p_c - cloud_cost) * miner.c
    return SPEquilibrium(prices=prices, miner=miner, v_e=v_e, v_c=v_c)
