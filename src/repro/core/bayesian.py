"""Incomplete information: budgets as private types (extension EXT9).

The paper motivates its RL framework by noting that "the miner's action
is the private information which is unobservable by others"
(Section VII-3). This module treats the root cause — *budgets* as
private types — exactly, as a symmetric Bayesian game:

* each miner's budget is an i.i.d. draw from a finite type distribution
  ``{(B_k, q_k)}``;
* a symmetric strategy maps types to requests, ``σ: k ↦ (e_k, c_k)``;
* a type-``k`` miner's expected utility averages the full-information
  utility over the multinomial type profile of its ``n-1`` opponents
  (enumerated exactly — the count-vector lattice is small for the
  paper's n=5);
* a **symmetric Bayesian Nash equilibrium** is a fixed point of the
  type-wise best response, computed by damped iteration with SLSQP best
  responses.

The value-of-information experiment (EXT9) compares the BNE against the
full-information NE at the realized type profile: with public budgets
each miner conditions on the *actual* opponents; under privacy it hedges
against the distribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from ..exceptions import ConfigurationError, ConvergenceError
from ..game.diagnostics import ConvergenceReport, ResidualRecorder
from .params import Prices

__all__ = ["BudgetType", "BayesianMinerGame", "BayesianEquilibrium",
           "solve_bayesian_equilibrium"]


@dataclass(frozen=True)
class BudgetType:
    """One private budget type.

    Attributes:
        budget: The type's budget ``B_k``.
        probability: Prior probability ``q_k``.
    """

    budget: float
    probability: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ConfigurationError("type budget must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError("type probability must be in (0, 1]")


def _count_vectors(total: int,
                   bins: int) -> Iterator[Tuple[int, ...]]:
    """All ways to split ``total`` indistinguishable opponents into
    ``bins`` types (the multinomial support)."""
    if bins == 1:
        yield (total,)
        return
    for first in range(total + 1):
        for rest in _count_vectors(total - first, bins - 1):
            yield (first,) + rest


class BayesianMinerGame:
    """Symmetric Bayesian miner subgame with private budget types.

    Args:
        n: Number of miners.
        types: Budget types (probabilities must sum to 1).
        reward: Mining reward ``R``.
        fork_rate: Fork rate ``β``.
        h: Edge satisfaction probability (connected mode).
    """

    def __init__(self, n: int, types: Sequence[BudgetType], reward: float,
                 fork_rate: float, h: float = 1.0) -> None:
        if n < 2:
            raise ConfigurationError("need n >= 2 miners")
        if len(types) < 1:
            raise ConfigurationError("need at least one type")
        total_prob = sum(t.probability for t in types)
        if abs(total_prob - 1.0) > 1e-9:
            raise ConfigurationError(
                f"type probabilities must sum to 1, got {total_prob}")
        if reward <= 0:
            raise ConfigurationError("reward must be positive")
        if not 0.0 <= fork_rate < 1.0:
            raise ConfigurationError("fork rate must be in [0, 1)")
        if not 0.0 < h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        self.n = n
        self.types = list(types)
        self.reward = reward
        self.fork_rate = fork_rate
        self.h = h
        self._profiles, self._weights = self._enumerate_profiles()

    @property
    def num_types(self) -> int:
        return len(self.types)

    def _enumerate_profiles(
            self) -> Tuple[List[Tuple[int, ...]], np.ndarray]:
        """Multinomial opponent type-count vectors and their weights."""
        k = self.num_types
        m = self.n - 1
        probs = np.array([t.probability for t in self.types])
        profiles = list(_count_vectors(m, k))
        weights = []
        for counts in profiles:
            coef = math.factorial(m)
            for c in counts:
                coef //= math.factorial(c)
            weights.append(coef * float(np.prod(probs ** np.array(counts))))
        weights = np.array(weights)
        # Guard: the multinomial pmf sums to 1.
        if abs(weights.sum() - 1.0) > 1e-9:
            raise ConfigurationError("multinomial weights do not sum to 1")
        return profiles, weights

    def expected_utility(self, type_index: int, e_i: float, c_i: float,
                         strategy: np.ndarray, prices: Prices) -> float:
        """Type-``type_index`` expected utility playing ``(e_i, c_i)``
        against the symmetric type strategy ``strategy[k] = (e_k, c_k)``.
        """
        beta = self.fork_rate
        income = 0.0
        for counts, weight in zip(self._profiles, self._weights):
            e_bar = sum(c * strategy[k][0] for k, c in enumerate(counts))
            s_bar = e_bar + sum(c * strategy[k][1]
                                for k, c in enumerate(counts))
            S = s_bar + e_i + c_i
            E = e_bar + e_i
            base = (1.0 - beta) * (e_i + c_i) / S if S > 0 else 0.0
            bonus = beta * self.h * e_i / E if E > 0 else 0.0
            income += weight * (base + bonus)
        return self.reward * income - prices.p_e * e_i - prices.p_c * c_i

    def best_response(self, type_index: int, strategy: np.ndarray,
                      prices: Prices,
                      multistart: bool = True) -> Tuple[float, float]:
        """SLSQP best response of one type to the symmetric strategy."""
        budget = self.types[type_index].budget

        def neg(x: np.ndarray) -> float:
            return -self.expected_utility(type_index, float(x[0]),
                                          float(x[1]), strategy, prices)

        cons = [{"type": "ineq",
                 "fun": lambda x: budget - prices.p_e * x[0]
                 - prices.p_c * x[1]}]
        starts = [np.array(strategy[type_index])]
        if multistart:
            starts += [
                np.array([budget / (4 * prices.p_e),
                          budget / (4 * prices.p_c)]),
                np.array([1e-3, budget / (2 * prices.p_c)]),
            ]
        best_val, best_x = -np.inf, starts[0]
        for x0 in starts:
            res = minimize(neg, np.maximum(x0, 1e-6), method="SLSQP",
                           bounds=[(0, None), (0, None)],
                           constraints=cons,
                           options={"maxiter": 200, "ftol": 1e-12})
            if res.success and -res.fun > best_val:
                best_val = -res.fun
                best_x = np.asarray(res.x)
        return float(best_x[0]), float(best_x[1])


@dataclass
class BayesianEquilibrium:
    """Symmetric BNE: one request vector per budget type.

    Attributes:
        strategy: Array of shape ``(K, 2)``; row ``k`` is ``(e_k, c_k)``.
        utilities: Expected utility per type at the equilibrium.
        report: Fixed-point diagnostics.
    """

    strategy: np.ndarray
    utilities: np.ndarray
    report: ConvergenceReport

    @property
    def converged(self) -> bool:
        return self.report.converged

    def request(self, type_index: int) -> Tuple[float, float]:
        e, c = self.strategy[type_index]
        return float(e), float(c)


def solve_bayesian_equilibrium(game: BayesianMinerGame, prices: Prices,
                               tol: float = 2e-5, max_iter: int = 200,
                               damping: float = 0.5,
                               raise_on_failure: bool = False,
                               ) -> BayesianEquilibrium:
    """Damped type-wise best-response iteration to a symmetric BNE."""
    strategy = np.array([[t.budget / (4 * prices.p_e),
                          t.budget / (4 * prices.p_c)]
                         for t in game.types])
    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    alpha = damping
    prev = float("inf")
    stall = 0
    for it in range(max_iter):
        iterations = it + 1
        new = np.empty_like(strategy)
        for k in range(game.num_types):
            new[k] = game.best_response(k, strategy, prices,
                                        multistart=(it == 0))
        updated = (1 - alpha) * strategy + alpha * new
        scale = max(1.0, float(np.max(np.abs(updated))))
        residual = float(np.max(np.abs(updated - strategy))) / scale
        strategy = updated
        if recorder.record(residual):
            converged = True
            break
        if residual >= 0.9 * prev:
            stall += 1
            if stall >= 3:
                alpha = max(0.5 * alpha, 0.05)
                stall = 0
        else:
            stall = 0
        prev = residual
    report = recorder.report(converged, iterations)
    if not converged and raise_on_failure:
        raise ConvergenceError(f"BNE iteration failed: {report}", report)
    utilities = np.array([
        game.expected_utility(k, strategy[k][0], strategy[k][1], strategy,
                              prices)
        for k in range(game.num_types)])
    return BayesianEquilibrium(strategy=strategy, utilities=utilities,
                               report=report)
