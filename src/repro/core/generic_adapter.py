"""Adapter: the miner subgame as a generic :class:`ContinuousGame`.

The specialized solver in :mod:`repro.core.nep` is the fast path; this
adapter plugs the same game into the paper-agnostic machinery of
:mod:`repro.game` (strategy spaces, damped best-response iteration,
projected-gradient fallback). It exists for two reasons:

* **cross-validation** — the generic solver must land on the same unique
  NE as the specialized one (tested), which guards both against
  implementation drift;
* **extensibility** — downstream users with modified miner utilities can
  subclass :class:`MinerPlayer` and reuse every generic solver
  unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..game.best_response import (BestResponseOptions, BestResponseResult,
                                  solve_nash)
from ..game.types import BudgetBox, ContinuousGame, Player
from .miner_best_response import ResponseContext, solve_best_response
from .nep import MinerEquilibrium
from .params import GameParameters, Prices

__all__ = ["MinerPlayer", "OpponentAggregates", "build_miner_game",
           "solve_via_generic"]


@dataclass(frozen=True)
class OpponentAggregates:
    """Opponent context handed to each :class:`MinerPlayer`.

    Attributes:
        e_others: Opponents' total edge units ``ē``.
        s_others: Opponents' total units ``s̄``.
    """

    e_others: float
    s_others: float


class MinerPlayer(Player):
    """One miner as a generic 2-D player over its budget box.

    Args:
        index: Miner index (for labeling only).
        params: Shared game parameters.
        prices: Announced SP prices.
        use_analytic_br: If False, the generic solver falls back to
            projected gradient ascent — exercised by the cross-validation
            tests.
    """

    def __init__(self, index: int, params: GameParameters, prices: Prices,
                 use_analytic_br: bool = True) -> None:
        self.index = index
        self.params = params
        self.prices = prices
        self.use_analytic_br = use_analytic_br
        self.space = BudgetBox(prices.as_array,
                               float(params.budget_array[index]))

    def _pieces(self, own: np.ndarray, others: OpponentAggregates
                ) -> Tuple[float, float, float, float]:
        e_i, c_i = float(own[0]), float(own[1])
        S = others.s_others + e_i + c_i
        E = others.e_others + e_i
        return e_i, c_i, S, E

    def payoff(self, own: np.ndarray, others: OpponentAggregates) -> float:
        e_i, c_i, S, E = self._pieces(own, others)
        beta = self.params.fork_rate
        h = self.params.effective_h
        base = (1.0 - beta) * (e_i + c_i) / S if S > 0 else 0.0
        bonus = beta * h * e_i / E if E > 0 else 0.0
        return self.params.reward * (base + bonus) \
            - self.prices.p_e * e_i - self.prices.p_c * c_i

    def payoff_gradient(self, own: np.ndarray,
                        others: OpponentAggregates) -> np.ndarray:
        e_i, c_i, S, E = self._pieces(own, others)
        beta = self.params.fork_rate
        h = self.params.effective_h
        g_s = self.params.reward * (1.0 - beta) * others.s_others / (S * S) \
            if S > 0 else 0.0
        g_e = self.params.reward * beta * h * others.e_others / (E * E) \
            if E > 0 else 0.0
        return np.array([g_s + g_e - self.prices.p_e,
                         g_s - self.prices.p_c])

    def best_response(self,
                      others: OpponentAggregates) -> Optional[np.ndarray]:
        if not self.use_analytic_br:
            return None
        br = solve_best_response(
            ResponseContext(e_others=max(others.e_others, 0.0),
                            s_others=max(others.s_others,
                                         others.e_others, 0.0)),
            reward=self.params.reward, beta=self.params.fork_rate,
            h=self.params.effective_h, p_e=self.prices.p_e,
            p_c=self.prices.p_c,
            budget=float(self.params.budget_array[self.index]))
        return np.array([br.e, br.c])


def build_miner_game(params: GameParameters, prices: Prices,
                     use_analytic_br: bool = True
                     ) -> Tuple[ContinuousGame,
                                Callable[[List[np.ndarray], int],
                                         OpponentAggregates]]:
    """Construct the generic game and its opponent-context builder.

    Returns:
        ``(game, build_context)`` ready for
        :func:`repro.game.best_response.solve_nash`.
    """
    players = [MinerPlayer(i, params, prices,
                           use_analytic_br=use_analytic_br)
               for i in range(params.n)]
    game = ContinuousGame(players)

    def build_context(profile: List[np.ndarray],
                      i: int) -> OpponentAggregates:
        e_total = sum(float(b[0]) for b in profile)
        s_total = e_total + sum(float(b[1]) for b in profile)
        own = profile[i]
        return OpponentAggregates(
            e_others=e_total - float(own[0]),
            s_others=s_total - float(own[0]) - float(own[1]))

    return game, build_context


def solve_via_generic(params: GameParameters, prices: Prices,
                      options: Optional[BestResponseOptions] = None,
                      use_analytic_br: bool = True) -> MinerEquilibrium:
    """Solve the connected-mode subgame with the generic Nash solver.

    Packs the result as a standard :class:`MinerEquilibrium` so all
    downstream tooling (verification, welfare, experiments) applies.
    """
    game, build_context = build_miner_game(params, prices,
                                           use_analytic_br=use_analytic_br)
    opts = options or BestResponseOptions(tol=1e-9, damping=1.0)
    result: BestResponseResult = solve_nash(game, build_context, opts)
    e = np.array([float(b[0]) for b in result.profile])
    c = np.array([float(b[1]) for b in result.profile])
    return MinerEquilibrium(e=e, c=c, params=params, prices=prices,
                            report=result.report)
