"""Semi-analytic best response of one miner (Section IV-A, Eqs. 12-15).

Each miner solves a 2-variable concave program

    maximize  R (1-β)(e+c)/(s̄+e+c) + R γ e/(ē+e) - q_e e - q_c c
    s.t.      p_e e + p_c c <= B,   e >= 0,   c >= 0

where ``ē``/``s̄`` are the opponents' aggregate edge/total requests,
``γ = β h`` and, in the plain NEP, the *objective* prices ``q`` equal the
*budget* prices ``p``. The distinction matters for the GNEP decomposition of
standalone mode: the shared-capacity multiplier ``ν`` raises the perceived
edge price to ``q_e = p_e + ν`` while the budget is still charged at ``p_e``.

The KKT system is solved exactly:

* for a fixed budget multiplier ``λ``, the stationarity conditions give the
  aggregates in closed form — ``S* = sqrt(R(1-β) s̄ / (q_c + λ p_c))`` and
  ``E* = sqrt(R γ ē / Δ(λ))`` with ``Δ(λ) = (q_e + λ p_e) - (q_c + λ p_c)``
  (Eq. 14 of the paper, generalized) — with corner fallbacks resolved by
  scalar root-finding;
* the complementary-slackness value of ``λ`` is found by bracketing +
  ``brentq`` on the (monotone decreasing) spending curve, the generalized
  form of Eq. (15).

Degenerate pools: when ``ē = 0`` the edge bonus ``β h e/E`` jumps to
``β h`` for any ``e > 0`` (a removable model discontinuity noted in
DESIGN.md). The KKT solution then has ``e = 0``; equilibrium iteration from
interior starting points never reaches this state for ``n >= 2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from scipy.optimize import brentq

from ..exceptions import ConfigurationError

__all__ = ["ResponseContext", "BestResponse", "solve_best_response"]

_TOL = 1e-13


@dataclass(frozen=True)
class ResponseContext:
    """Opponent aggregates seen by one miner.

    Attributes:
        e_others: ``ē = Σ_{j≠i} e_j``.
        s_others: ``s̄ = Σ_{j≠i} (e_j + c_j)``.
    """

    e_others: float
    s_others: float

    def __post_init__(self) -> None:
        if self.e_others < 0 or self.s_others < 0:
            raise ConfigurationError("opponent aggregates must be >= 0")
        if self.e_others > self.s_others + 1e-9:
            raise ConfigurationError(
                f"e_others={self.e_others} cannot exceed "
                f"s_others={self.s_others}")


@dataclass(frozen=True)
class BestResponse:
    """Solution of one miner's optimization problem.

    Attributes:
        e: Optimal ESP request ``e_i*``.
        c: Optimal CSP request ``c_i*``.
        budget_multiplier: KKT multiplier ``λ`` of the budget constraint
            (0 when the budget is slack).
        spending: ``p_e e + p_c c`` at the optimum.
    """

    e: float
    c: float
    budget_multiplier: float
    spending: float

    @property
    def budget_binding(self) -> bool:
        return self.budget_multiplier > 0.0


def _edge_only(reward: float, beta: float, gamma: float, ctx: ResponseContext,
               a_e: float) -> float:
    """Maximize the e-only objective: marginal ``g_S(s̄+e) + g_E(ē+e) = a_e``.

    The left side is strictly decreasing in ``e``; returns the non-negative
    root (0 when even the first unit is unprofitable).
    """
    s_bar, e_bar = ctx.s_others, ctx.e_others

    def marginal(e: float) -> float:
        total = s_bar + e
        g_s = reward * (1.0 - beta) * s_bar / (total * total) \
            if total > 0 else 0.0
        pool = e_bar + e
        g_e = reward * gamma * e_bar / (pool * pool) if pool > 0 else 0.0
        return g_s + g_e

    # Exact opponents-at-origin corner check below.
    if marginal(0.0) <= a_e or (
            s_bar == 0.0 and e_bar == 0.0):  # repro: noqa[RPR002]
        return 0.0
    hi = 1.0
    while marginal(hi) > a_e:
        hi *= 2.0
        if hi > 1e16:
            raise ConfigurationError(
                "edge-only best response diverged; check prices > 0")
    return float(brentq(lambda x: marginal(x) - a_e, 0.0, hi,
                        xtol=1e-14, rtol=8.9e-16))


def _cloud_only(reward: float, beta: float, ctx: ResponseContext,
                a_c: float) -> float:
    """Maximize the c-only objective: ``g_S(s̄+c) = a_c`` in closed form."""
    s_bar = ctx.s_others
    if s_bar <= 0.0:
        return 0.0
    target = math.sqrt(reward * (1.0 - beta) * s_bar / a_c)
    return max(target - s_bar, 0.0)


def _candidate(reward: float, beta: float, gamma: float, ctx: ResponseContext,
               q_e: float, q_c: float, p_e: float, p_c: float,
               lam: float) -> Tuple[float, float]:
    """Stationary point for a fixed budget multiplier ``λ`` (Eq. 14 form)."""
    a_e = q_e + lam * p_e
    a_c = q_c + lam * p_c
    delta = a_e - a_c
    s_bar, e_bar = ctx.s_others, ctx.e_others

    if s_bar <= 0.0:
        # Opponents buy nothing: cloud units yield zero marginal income.
        if e_bar <= 0.0 or gamma <= 0.0:
            return 0.0, 0.0
        return _edge_only(reward, beta, gamma, ctx, a_e), 0.0

    if delta <= 0.0 or gamma <= 0.0 or e_bar <= 0.0:
        if gamma > 0.0 and e_bar > 0.0 and delta <= 0.0:
            # Edge is no pricier than cloud but strictly more valuable:
            # cloud is dominated.
            return _edge_only(reward, beta, gamma, ctx, a_e), 0.0
        # No extra value from the edge pool (γ=0 or ē=0): pick the cheaper
        # objective price for the pure (1-β)/S income stream.
        if a_e < a_c:
            return _edge_only(reward, beta, gamma, ctx, a_e), 0.0
        return 0.0, _cloud_only(reward, beta, ctx, a_c)

    # Mixed interior attempt (Eq. 14): closed-form target aggregates.
    s_target = math.sqrt(reward * (1.0 - beta) * s_bar / a_c)
    e_target = math.sqrt(reward * gamma * e_bar / delta)
    e = e_target - e_bar
    c = (s_target - s_bar) - e
    if e < 0.0:
        return 0.0, _cloud_only(reward, beta, ctx, a_c)
    if c < 0.0:
        return _edge_only(reward, beta, gamma, ctx, a_e), 0.0
    return e, c


def solve_best_response(ctx: ResponseContext, *, reward: float, beta: float,
                        h: float, p_e: float, p_c: float, budget: float,
                        nu: float = 0.0) -> BestResponse:
    """Exact best response of one miner.

    Args:
        ctx: Opponent aggregates ``(ē, s̄)``.
        reward: Mining reward ``R``.
        beta: Fork rate ``β`` in ``[0, 1)``.
        h: Edge satisfaction probability (``γ = β h`` enters the objective).
        p_e: ESP unit price (budget and, plus ``nu``, objective).
        p_c: CSP unit price.
        budget: Miner budget ``B_i``.
        nu: Shared-capacity multiplier of the standalone GNEP decomposition;
            the perceived edge price becomes ``p_e + nu`` while spending is
            still charged at ``p_e``. Zero for the plain NEP.

    Returns:
        The optimal :class:`BestResponse`.
    """
    if p_e <= 0 or p_c <= 0:
        raise ConfigurationError("prices must be positive")
    if budget <= 0:
        raise ConfigurationError("budget must be positive")
    if nu < 0:
        raise ConfigurationError("capacity multiplier nu must be >= 0")
    if not 0.0 <= beta < 1.0:
        raise ConfigurationError("beta must be in [0, 1)")
    gamma = beta * h
    q_e = p_e + nu
    q_c = p_c

    def candidate(lam: float) -> Tuple[float, float]:
        return _candidate(reward, beta, gamma, ctx, q_e, q_c, p_e, p_c, lam)

    def spend(lam: float) -> float:
        e, c = candidate(lam)
        return p_e * e + p_c * c

    e0, c0 = candidate(0.0)
    cost0 = p_e * e0 + p_c * c0
    if cost0 <= budget + _TOL:
        return BestResponse(e=e0, c=c0, budget_multiplier=0.0,
                            spending=cost0)

    # Budget binds: bracket λ and solve spend(λ) = B (Eq. 15, generalized).
    lo, hi = 0.0, 1.0
    while spend(hi) > budget:
        lo = hi
        hi *= 2.0
        if hi > 1e18:
            raise ConfigurationError(
                "budget multiplier bracket diverged; model is degenerate")
    lam = float(brentq(lambda x: spend(x) - budget, lo, hi,
                       xtol=1e-14, rtol=8.9e-16))
    e, c = candidate(lam)
    # Re-scale exactly onto the budget plane to remove root-finding slack.
    cost = p_e * e + p_c * c
    if cost > 0.0:
        scale = budget / cost
        # Only apply when it is a shrink/grow of at most the solver slack.
        if abs(scale - 1.0) < 1e-6:
            e *= scale
            c *= scale
            cost = budget
    return BestResponse(e=e, c=c, budget_multiplier=lam, spending=cost)
