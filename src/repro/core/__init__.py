"""The paper's primary contribution: the multi-leader multi-follower
Stackelberg game for mobile blockchain mining offloading.

Public surface:

* parameters — :class:`GameParameters`, :class:`Prices`, :class:`EdgeMode`;
* winning probabilities (Section III) — :mod:`repro.core.winning`;
* miner subgames — :func:`solve_connected_equilibrium` (NEP, Theorem 2) and
  :func:`solve_standalone_equilibrium` (GNEP variational equilibrium,
  Theorem 5);
* leader stage — :func:`solve_stackelberg` (Algorithms 1 and 2);
* closed forms — Theorems 3/4, Corollary 1, Table II in
  :mod:`repro.core.closed_form`;
* population uncertainty (Section V) — :class:`DynamicGame`,
  :func:`solve_dynamic_equilibrium`;
* verification — :func:`verify_miner_equilibrium`.
"""

from .closed_form import (HomogeneousEquilibrium, SPEquilibrium,
                          binding_budget_threshold, corollary1_interior,
                          csp_best_response_binding,
                          csp_best_response_interior,
                          homogeneous_miner_equilibrium, table2_connected,
                          table2_standalone, theorem3_binding,
                          theorem4_sp_equilibrium)
from .dynamic import DynamicEquilibrium, DynamicGame, \
    solve_dynamic_equilibrium
from .gnep import (edge_demand, solve_standalone_equilibrium,
                   solve_standalone_extragradient)
from .miner_best_response import (BestResponse, ResponseContext,
                                  solve_best_response)
from .nep import MinerEquilibrium, solve_connected_equilibrium
from .bayesian import (BayesianEquilibrium, BayesianMinerGame,
                       BudgetType, solve_bayesian_equilibrium)
from .risk import (RiskAverseEquilibrium, RiskAverseGame,
                   certainty_equivalent, pooled_certainty_equivalent,
                   solve_risk_averse_equilibrium)
from .params import (EdgeMode, GameParameters, Prices, from_calibration,
                     homogeneous, mixed_strategy_price_bound)
from .sp_game import DemandOracle, csp_best_response, esp_best_response
from .stackelberg import (StackelbergEquilibrium, solve_stackelberg,
                          verify_sp_equilibrium)
from .social import (WelfareReport, captured_reward,
                     mining_cost_breakdown, rent_dissipation,
                     social_welfare, welfare_report)
from .verification import (DeviationReport, best_deviation_gain,
                           nikaido_isoda_residual,
                           verify_miner_equilibrium)

__all__ = [
    "HomogeneousEquilibrium",
    "SPEquilibrium",
    "binding_budget_threshold",
    "corollary1_interior",
    "csp_best_response_binding",
    "csp_best_response_interior",
    "homogeneous_miner_equilibrium",
    "table2_connected",
    "table2_standalone",
    "theorem3_binding",
    "theorem4_sp_equilibrium",
    "DynamicEquilibrium",
    "DynamicGame",
    "solve_dynamic_equilibrium",
    "edge_demand",
    "solve_standalone_equilibrium",
    "solve_standalone_extragradient",
    "BestResponse",
    "ResponseContext",
    "solve_best_response",
    "MinerEquilibrium",
    "solve_connected_equilibrium",
    "EdgeMode",
    "GameParameters",
    "Prices",
    "homogeneous",
    "from_calibration",
    "BayesianEquilibrium",
    "BayesianMinerGame",
    "BudgetType",
    "solve_bayesian_equilibrium",
    "RiskAverseEquilibrium",
    "RiskAverseGame",
    "certainty_equivalent",
    "pooled_certainty_equivalent",
    "solve_risk_averse_equilibrium",
    "mixed_strategy_price_bound",
    "DemandOracle",
    "csp_best_response",
    "esp_best_response",
    "StackelbergEquilibrium",
    "solve_stackelberg",
    "verify_sp_equilibrium",
    "DeviationReport",
    "best_deviation_gain",
    "nikaido_isoda_residual",
    "verify_miner_equilibrium",
    "WelfareReport",
    "captured_reward",
    "mining_cost_breakdown",
    "rent_dissipation",
    "social_welfare",
    "welfare_report",
]
