"""Exact closed-form miner demand for homogeneous games.

The leader-stage solvers evaluate the follower equilibrium at hundreds of
price points; for homogeneous miners every regime of that equilibrium has
a closed form (Section IV-B and DESIGN.md §2), so the demand oracle can
answer in O(1) instead of re-running the best-response iteration. The
regime structure, with ``a = 1-β``, ``g = βh``, ``D = a+g``,
``k = R(n-1)/n²``:

* **mixed** (``P_e > P_c`` and ``P_c < a P_e / D``): Theorem 3 if the
  budget binds (``B < kD``), else Corollary 1. The per-miner interior
  spend is exactly ``kD`` in *every* regime below too, which makes the
  binding test uniform.
* **pure edge** (``P_c >= a P_e / D``, or ``P_e <= P_c``): the cloud's
  delay discount cannot compensate its price; symmetric e-only play gives
  ``e* = kD / P_e`` interior, ``B / P_e`` binding.
* **pure cloud** (``βh = 0`` and ``P_e > P_c``): the edge has no latency
  advantage left; ``c* = ka / P_c`` interior, ``B / P_c`` binding.
* **standalone capacity binding**: ``e* = E_max/n`` with the cloud side
  re-solved by its own FOC at ``λ = 0`` or on the budget plane.

Every branch is cross-validated against the iterative solvers in
``tests/core/test_homogeneous_demand.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError
from .params import EdgeMode, GameParameters, Prices

__all__ = ["HomogeneousDemand", "homogeneous_demand"]


@dataclass(frozen=True)
class HomogeneousDemand:
    """Closed-form symmetric demand at one price point.

    Attributes:
        e: Per-miner ESP request.
        c: Per-miner CSP request.
        n: Number of miners.
        regime: Which closed-form branch applied (diagnostic).
        nu: Capacity shadow price (standalone; 0 otherwise).
    """

    e: float
    c: float
    n: int
    regime: str
    nu: float = 0.0

    @property
    def total_edge(self) -> float:
        return self.n * self.e

    @property
    def total_cloud(self) -> float:
        return self.n * self.c

    @property
    def total(self) -> float:
        return self.n * (self.e + self.c)


def _unconstrained(n: int, budget: float, reward: float, beta: float,
                   h: float, prices: Prices) -> HomogeneousDemand:
    """Symmetric equilibrium ignoring any capacity constraint."""
    a = 1.0 - beta
    g = beta * h
    D = a + g
    k = reward * (n - 1) / (n * n)
    p_e, p_c = prices.p_e, prices.p_c

    if g <= 0.0:
        # No latency advantage: miners buy only the cheaper venue.
        if p_e < p_c:
            e = min(k * a / p_e, budget / p_e)
            return HomogeneousDemand(e=e, c=0.0, n=n, regime="pure-edge")
        c = min(k * a / p_c, budget / p_c)
        return HomogeneousDemand(e=0.0, c=c, n=n, regime="pure-cloud")

    mixed = p_e > p_c and p_c < a * p_e / D
    if not mixed:
        # Pure-edge regime: cloud dominated at these prices.
        e = min(k * D / p_e, budget / p_e)
        regime = "pure-edge-binding" if budget < k * D else "pure-edge"
        return HomogeneousDemand(e=e, c=0.0, n=n, regime=regime)

    premium = p_e - p_c
    if budget < k * D:
        # Theorem 3 (budget binding).
        e = budget * g / (D * premium)
        c = budget * (a * premium - g * p_c) / (p_c * D * premium)
        return HomogeneousDemand(e=e, c=c, n=n, regime="binding")
    # Corollary 1 (interior).
    e = k * g / premium
    c = k * a / p_c - e
    return HomogeneousDemand(e=e, c=c, n=n, regime="interior")


def homogeneous_demand(params: GameParameters,
                       prices: Prices) -> HomogeneousDemand:
    """Closed-form symmetric miner demand for a homogeneous game.

    Raises:
        ConfigurationError: If the game is not homogeneous, or the
            parameters land in a corner the closed forms do not cover
            (callers should fall back to the iterative solvers).
    """
    if not params.is_homogeneous:
        raise ConfigurationError("closed-form demand needs homogeneous "
                                 "miners")
    n = params.n
    budget = float(params.budget_array[0])
    beta = params.fork_rate
    h = params.effective_h
    free = _unconstrained(n, budget, params.reward, beta, h, prices)
    if params.mode is not EdgeMode.STANDALONE:
        return free

    e_max = float(params.e_max)
    if free.total_edge <= e_max:
        return free

    # Capacity binds: e* = E_max/n; the cloud request re-solves its FOC.
    a = 1.0 - beta
    k = params.reward * (n - 1) / (n * n)
    e = e_max / n
    p_e, p_c = prices.p_e, prices.p_c
    edge_spend = p_e * e
    if edge_spend > budget:
        # Budget cannot even cover the capacity share — a genuinely mixed
        # budget/capacity corner the closed forms do not resolve.
        raise ConfigurationError(
            "budget/capacity corner: fall back to the iterative solver")
    total_interior = k * a / p_c       # per-miner e + c from the cloud FOC
    c = total_interior - e
    if c < 0.0:
        raise ConfigurationError(
            "capacity-binding corner with c* < 0: fall back to the "
            "iterative solver")
    if edge_spend + p_c * c > budget:
        c = (budget - edge_spend) / p_c
        regime = "capacity+budget"
    else:
        regime = "capacity"
    # Shadow price from the aggregate edge FOC: at the symmetric capacity
    # point, g_e - g_c = (P_e + ν - P_c) with g_e - g_c = βhR(n-1)/(n²e).
    g = beta * h
    nu = max(params.reward * g * (n - 1) / (n * n * e) - (p_e - p_c), 0.0)
    return HomogeneousDemand(e=e, c=c, n=n, regime=regime, nu=nu)
