"""Winning-probability model of Section III.

Implements every variant of the individual winning probability ``W_i``:

* :func:`w_full` — Eq. (6): both requests fully satisfied (``W_i^h``).
* :func:`w_edge_component` / :func:`w_cloud_component` — Eqs. (4)-(5).
* :func:`w_transfer_failure` — Eq. (7): connected-mode overload, the edge
  request is transferred to the cloud.
* :func:`w_reject_failure` — Eq. (8): standalone-mode overload, the edge
  request is rejected.
* :func:`w_connected` — Eq. (9): law-of-total-expectation mixture with
  satisfaction probability ``h``; algebraically equal to
  ``(1-β)(e_i+c_i)/S + β h e_i / E``.
* :func:`w_standalone` — Eq. (23): the ``h = 1`` instance used inside the
  capacity-constrained GNEP.

plus the exact gradients used by the equilibrium solvers. All functions are
vectorized over miners: ``e`` and ``c`` are arrays of shape ``(n,)``.

Theorem 1 (``sum_i W_i == 1`` whenever ``S > 0`` and requests are fully
satisfied) is enforced in the test suite both numerically and symbolically.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "aggregate",
    "w_edge_component",
    "w_cloud_component",
    "w_full",
    "w_transfer_failure",
    "w_reject_failure",
    "w_connected",
    "w_standalone",
    "w_connected_gradients",
]

_EPS = 1e-300  # guards 0/0 in fully-degenerate profiles


def aggregate(e: np.ndarray, c: np.ndarray) -> Tuple[float, float, float]:
    """Aggregate requests ``(E, C, S)`` with ``S = E + C``."""
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E = float(np.sum(e))
    C = float(np.sum(c))
    return E, C, E + C


def _safe_div(num: np.ndarray, den: float) -> np.ndarray:
    """``num / den`` with the convention ``0/0 = 0`` for degenerate pools."""
    if den <= 0.0:
        return np.zeros_like(np.asarray(num, dtype=float))
    return np.asarray(num, dtype=float) / den


def w_edge_component(e: np.ndarray, c: np.ndarray, beta: float) -> np.ndarray:
    """Eq. (4): per-miner winning probability contributed by edge mining.

    ``W_i^e = e_i/S + β e_i (C - c_i) / (E S)`` — the base chance of edge
    mining first, plus the chance that the miner's edge block overtakes a
    conflicting cloud block mined by someone else.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E, C, S = aggregate(e, c)
    base = _safe_div(e, S)
    if E <= 0.0:
        return base
    overtaking = beta * e * (C - c) / (E * S) if S > 0 else np.zeros_like(e)
    return base + overtaking


def w_cloud_component(e: np.ndarray, c: np.ndarray, beta: float) -> np.ndarray:
    """Eq. (5): per-miner winning probability contributed by cloud mining.

    ``W_i^c = c_i/S - β c_i (E - e_i) / (E S)`` — the base chance of cloud
    mining first, discounted by the chance the block is orphaned by a
    conflicting edge block mined by someone else.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E, C, S = aggregate(e, c)
    base = _safe_div(c, S)
    if E <= 0.0:
        # No edge power anywhere: a cloud block can only collide with other
        # cloud blocks, which share its propagation delay and cannot beat it.
        return base
    discount = beta * c * (E - e) / (E * S) if S > 0 else np.zeros_like(c)
    return base - discount


def w_full(e: np.ndarray, c: np.ndarray, beta: float) -> np.ndarray:
    """Eq. (6): ``W_i^h`` when both requests are fully satisfied.

    Equal to ``w_edge_component + w_cloud_component``; computed in the
    simplified form ``(e_i+c_i)/S + β (e_i C - c_i E)/(E S)``.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E, C, S = aggregate(e, c)
    base = _safe_div(e + c, S)
    if E <= 0.0 or S <= 0.0:
        return base
    return base + beta * (e * C - c * E) / (E * S)


def w_transfer_failure(e: np.ndarray, c: np.ndarray,
                       beta: float) -> np.ndarray:
    """Eq. (7): connected-mode overload — ``r_i`` degrades to
    ``[0, e_i + c_i]`` (everything runs in the cloud).

    ``W_i^{1-h} = (1-β)(e_i + c_i)/S``.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    _, _, S = aggregate(e, c)
    return (1.0 - beta) * _safe_div(e + c, S)


def w_reject_failure(e: np.ndarray, c: np.ndarray, beta: float) -> np.ndarray:
    """Eq. (8): standalone-mode overload — the edge request is rejected and
    leaves the pool entirely: ``W_i = (1-β) c_i / (S - e_i)``.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    _, _, S = aggregate(e, c)
    denom = S - e
    out = np.zeros_like(c)
    mask = denom > 0
    out[mask] = (1.0 - beta) * c[mask] / denom[mask]
    return out


def w_connected(e: np.ndarray, c: np.ndarray, beta: float,
                h: float) -> np.ndarray:
    """Eq. (9): expected winning probability in connected mode.

    ``W_i = h W_i^h + (1-h) W_i^{1-h} = (1-β)(e_i+c_i)/S + β h e_i / E``.
    The simplified right-hand side (used by Problem 1a) is exact; the test
    suite checks it against the explicit mixture.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E, _, S = aggregate(e, c)
    base = (1.0 - beta) * _safe_div(e + c, S)
    if E <= 0.0:
        return base
    return base + beta * h * e / E


def w_standalone(e: np.ndarray, c: np.ndarray, beta: float) -> np.ndarray:
    """Eq. (23): winning probability in standalone mode when the shared
    capacity constraint holds (``E <= E_max``). Identical to ``W_i^h``.
    """
    return w_connected(e, c, beta, h=1.0)


def w_connected_gradients(e: np.ndarray, c: np.ndarray, beta: float,
                          h: float) -> Tuple[np.ndarray, np.ndarray]:
    """Exact per-miner partial derivatives of Eq. (9).

    Returns:
        ``(dW_de, dW_dc)`` where ``dW_de[i] = ∂W_i/∂e_i`` and
        ``dW_dc[i] = ∂W_i/∂c_i``:

        ``∂W_i/∂e_i = (1-β) s̄_i / S² + β h ē_i / E²``
        ``∂W_i/∂c_i = (1-β) s̄_i / S²``

        with ``s̄_i = S - e_i - c_i`` (others' total) and
        ``ē_i = E - e_i`` (others' edge total).

    These drive both the VI operator of the GNEP and the projected-gradient
    fallback of the NEP.
    """
    e = np.asarray(e, dtype=float)
    c = np.asarray(c, dtype=float)
    E, _, S = aggregate(e, c)
    s_others = S - e - c
    e_others = E - e
    if S > 0.0:
        cloud_term = (1.0 - beta) * s_others / (S * S)
    else:
        cloud_term = np.zeros_like(e)
    if E > 0.0:
        edge_term = beta * h * e_others / (E * E)
    else:
        edge_term = np.zeros_like(e)
    return cloud_term + edge_term, cloud_term.copy()
