"""Stackelberg-equilibrium solvers: Algorithm 1 and Algorithm 2.

Backward induction ties the two stages together: for any leader price pair,
the follower stage is resolved by the mode-appropriate miner solver; the
leaders then play a non-cooperative pricing game on that induced demand.

* :func:`solve_stackelberg` with ``scheme="best-response"`` implements
  **Algorithm 1** (connected mode) and **Algorithm 2** (standalone mode):
  asynchronous best-response / price-bargaining iteration between the two
  SPs, each move solving the full follower equilibrium. Both algorithms in
  the paper share this loop; the modes differ only in the follower solver.
* ``scheme="esp-anticipates"`` is the sequential refinement used in
  Theorem 4, where the ESP optimizes against the CSP's best-response curve
  ``P_c*(P_e)`` rather than a fixed price.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from ..exceptions import ConvergenceError
from ..game.diagnostics import ConvergenceReport, ResidualRecorder
from ..telemetry import TELEMETRY as _TEL
from .nep import MinerEquilibrium
from .params import GameParameters, Prices
from .sp_game import DemandOracle, csp_best_response, esp_best_response

__all__ = ["StackelbergEquilibrium", "solve_stackelberg",
           "verify_sp_equilibrium"]


@dataclass
class StackelbergEquilibrium:
    """A subgame-perfect equilibrium of the full two-stage game.

    Attributes:
        prices: Leader-stage equilibrium prices ``(P_e*, P_c*)``.
        miners: Follower-stage equilibrium at those prices.
        v_e: ESP profit at equilibrium.
        v_c: CSP profit at equilibrium.
        report: Convergence diagnostics of the leader iteration.
        scheme: Leader-stage solution concept used.
    """

    prices: Prices
    miners: MinerEquilibrium
    v_e: float
    v_c: float
    report: ConvergenceReport
    scheme: str

    @property
    def converged(self) -> bool:
        return self.report.converged

    def summary(self) -> str:
        return (
            f"SE ({self.miners.params.mode.value}, {self.scheme}): "
            f"P_e={self.prices.p_e:.6f}, P_c={self.prices.p_c:.6f}, "
            f"E={self.miners.total_edge:.4f}, "
            f"C={self.miners.total_cloud:.4f}, "
            f"V_e={self.v_e:.4f}, V_c={self.v_c:.4f}; {self.report}"
        )


def _initial_prices(params: GameParameters,
                    initial: Optional[Prices]) -> Prices:
    if initial is not None:
        return initial
    # Start the CSP strictly above BOTH unit costs: while P_c <= C_e the
    # ESP's best response runs to its bracket cap (see esp_best_response).
    p_c = max(2.0 * params.cloud_cost, 1.5 * params.edge_cost,
              params.cloud_cost + 0.1, 0.2)
    p_e = max(2.0 * params.edge_cost, 1.5 * p_c, p_c + 0.1)
    return Prices(p_e=p_e, p_c=p_c)


def solve_stackelberg(params: GameParameters,
                      initial: Optional[Prices] = None,
                      scheme: str = "auto",
                      tol: float = 1e-6,
                      max_iter: int = 200,
                      demand_tol: float = 1e-9,
                      price_xatol: float = 1e-9,
                      damping: float = 1.0,
                      raise_on_failure: bool = False,
                      warm_start: Optional[Prices] = None,
                      warm_profile: Optional[Tuple[np.ndarray,
                                                   np.ndarray]] = None,
                      kernel: str = "scalar",
                      n_types: Optional[int] = None,
                      price_grid: Optional[Sequence[Prices]] = None,
                      ) -> StackelbergEquilibrium:
    """Compute a Stackelberg equilibrium of the full game.

    Args:
        params: Game parameters (either edge operation mode).
        initial: Starting prices for the leader iteration (Algorithm 1/2:
            "choose any feasible starting point").
        scheme: ``"best-response"`` — asynchronous best-response between
            the SPs: the literal Algorithm 1 (connected) / Algorithm 2
            (standalone) loop. ``"esp-anticipates"`` — the ESP maximizes
            against the CSP's reaction curve (Theorem 4's sequential
            concept). ``"auto"`` (default) uses the anticipating scheme:
            the simultaneous leader game generally has **no pure Nash
            equilibrium** — in connected mode the ESP's reply is the
            pure-edge kink ``D·P_c/(1-β)`` which the CSP then undercuts;
            in standalone mode the CSP's reaction jumps at the ESP's
            capacity-clearing price — so Algorithm 1/2 can cycle (the
            solver detects 2-cycles and reports them; see EXPERIMENTS.md).
            Theorem 4's own proof uses the anticipating structure.
        tol: Relative convergence tolerance on price updates.
        max_iter: Maximum leader-stage sweeps.
        demand_tol: Tolerance of the inner follower solves.
        price_xatol: Absolute tolerance of the scalar price optimizations.
        damping: Step of the damped price update in the best-response
            scheme (1.0 = undamped Algorithm 1/2). The CSP's reaction has
            a jump at the ESP's capacity-clearing price; damping settles
            the iteration just below the jump instead of cycling on it.
        raise_on_failure: Raise :class:`ConvergenceError` instead of
            returning a non-converged result.
        warm_start: Equilibrium prices of a *nearby* scenario (e.g. from
            :mod:`repro.serving`). Unlike ``initial`` — which only picks
            the starting point of the best-response iteration — a warm
            start also narrows the anticipating scheme's coarse search
            bracket around the hint, falling back to the full global
            search whenever the localized optimum is not interior.
            ``None`` (the default) keeps every path bit-identical to the
            cold solve.
        warm_profile: Optional miner profile ``(e, c)`` seeding the
            demand oracle's first iterative follower solve.
        kernel: Follower-solver kernel threaded into the demand oracle
            (see :func:`~repro.core.nep.solve_connected_equilibrium`);
            homogeneous games answered by the closed forms ignore it.
        n_types: Compress heterogeneous miners into weighted budget
            types for every follower solve behind the demand oracle
            (certified approximation, :mod:`repro.kernels.typespace`);
            ``None`` keeps the exact per-miner follower solver.
        price_grid: Optional price points to pre-solve into the demand
            oracle's memo cache through one cross-scenario batched
            kernel call (:meth:`DemandOracle.equilibria
            <repro.core.sp_game.DemandOracle.equilibria>`) before the
            leader iteration starts. Useful when the caller knows the
            prices the search will visit (e.g. a fixed evaluation
            grid); each pre-solved point is bit-identical to the solve
            the leader iteration would have triggered, so the result
            is unchanged — only cheaper. ``None`` (default) keeps the
            legacy single-solve path exactly.

    Returns:
        :class:`StackelbergEquilibrium`.
    """
    if scheme == "auto":
        scheme = "esp-anticipates"
    if scheme not in ("best-response", "esp-anticipates"):
        raise ValueError(f"unknown scheme {scheme!r}")
    oracle = DemandOracle(params, tol=demand_tol,
                          warm_profile=warm_profile, kernel=kernel,
                          n_types=n_types)
    if price_grid is not None:
        oracle.equilibria(list(price_grid))
    if initial is None and warm_start is not None:
        initial = warm_start
    prices = _initial_prices(params, initial)

    if scheme == "esp-anticipates":
        with _TEL.span("stackelberg.solve", scheme=scheme,
                       mode=params.mode.value, kernel=kernel) as sp:
            se = _solve_esp_anticipates(params, oracle, prices, tol,
                                        max_iter, price_xatol,
                                        warm=warm_start)
            if _TEL.enabled:
                sp.set(oracle_calls=oracle.evaluations)
                _record_stackelberg(scheme, params, oracle, se)
        return se

    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    message = None
    history = []
    leader_span = _TEL.span("stackelberg.solve", scheme=scheme,
                            mode=params.mode.value, kernel=kernel)
    leader_span.__enter__()
    for it in range(max_iter):
        iterations = it + 1
        # Asynchronous best responses (Algorithm 1 / Algorithm 2 loop).
        p_e_br = esp_best_response(oracle, prices.p_c, xatol=price_xatol)
        p_e_new = (1.0 - damping) * prices.p_e + damping * p_e_br
        p_c_br = csp_best_response(oracle, p_e_new, xatol=price_xatol)
        p_c_new = (1.0 - damping) * prices.p_c + damping * p_c_br
        scale = max(1.0, prices.p_e, prices.p_c)
        residual = max(abs(p_e_new - prices.p_e),
                       abs(p_c_new - prices.p_c)) / scale
        prices = Prices(p_e=p_e_new, p_c=p_c_new)
        history.append(prices)
        if recorder.record(residual):
            converged = True
            break
        # 2-cycle detection: the reaction curves are discontinuous at
        # kink/clearing prices, where the pure leader game has no Nash
        # equilibrium — Algorithm 1/2 then alternates between two points.
        if len(history) >= 3:
            prev2 = history[-3]
            gap2 = max(abs(prices.p_e - prev2.p_e),
                       abs(prices.p_c - prev2.p_c)) / scale
            if gap2 < tol and residual >= tol:
                other = history[-2]
                # Return the cycle point with the larger joint profit.
                if (oracle.esp_profit(other) + oracle.csp_profit(other)
                        > oracle.esp_profit(prices)
                        + oracle.csp_profit(prices)):
                    prices = other
                message = ("2-cycle detected: no pure-strategy leader "
                           "equilibrium at the reaction-curve jump; "
                           "returned the better cycle point")
                break
    report = recorder.report(converged, iterations, message=message)
    leader_span.set(iterations=iterations,
                    oracle_calls=oracle.evaluations)
    leader_span.__exit__(None, None, None)
    if not converged and message is None and raise_on_failure:
        raise ConvergenceError(f"leader iteration failed: {report}", report)

    miners = oracle.equilibrium(prices)
    se = StackelbergEquilibrium(
        prices=prices, miners=miners, v_e=oracle.esp_profit(prices),
        v_c=oracle.csp_profit(prices), report=report, scheme="best-response")
    if _TEL.enabled:
        _TEL.metrics.counter(
            "stackelberg_leader_iterations_total",
            "Leader best-response sweeps across all solves",
            labels={"scheme": "best-response"}).inc(iterations)
        _record_stackelberg("best-response", params, oracle, se)
    return se


def _record_stackelberg(scheme: str, params: GameParameters,
                        oracle: DemandOracle,
                        se: "StackelbergEquilibrium") -> None:
    """Aggregate metrics for one finished leader-stage solve."""
    labels = {"scheme": scheme, "mode": params.mode.value}
    _TEL.metrics.counter("stackelberg_solves_total",
                         "Completed leader-stage solves",
                         labels=labels).inc()
    _TEL.metrics.counter("stackelberg_oracle_calls_total",
                         "Follower demand-oracle evaluations",
                         labels=labels).inc(oracle.evaluations)
    if not se.report.converged:
        _TEL.emit("stackelberg.nonconverged", scheme=scheme,
                  mode=params.mode.value, message=se.report.message)


def _solve_esp_anticipates(params: GameParameters, oracle: DemandOracle,
                           start: Prices, tol: float, max_iter: int,
                           price_xatol: float,
                           warm: Optional[Prices] = None,
                           ) -> StackelbergEquilibrium:
    """ESP maximizes over ``P_e`` with the CSP reaction curve substituted."""

    def esp_profit_anticipating(p_e: float) -> float:
        p_c = csp_best_response(oracle, p_e, xatol=price_xatol)
        return oracle.esp_profit(Prices(p_e=p_e, p_c=p_c))

    lo = max(params.edge_cost, params.cloud_cost) * (1.0 + 1e-7) + 1e-9
    hi = max(4.0 * lo, 2.0 * start.p_e, 1.0)
    best_p_e = None
    if warm is not None:
        # Localized coarse search: a nearby scenario's optimum bounds the
        # bracket, cutting the number of (expensive) reaction-curve
        # evaluations. Accept only an interior optimum — anything pinned
        # to a warm bracket edge falls through to the global search, so a
        # bad hint degrades to the cold path rather than a wrong answer.
        lo_w = max(lo, 0.6 * warm.p_e)
        hi_w = max(1.6 * warm.p_e, 1.5 * lo_w)
        if hi_w > lo_w:
            res = minimize_scalar(
                lambda x: -esp_profit_anticipating(x),
                bounds=(lo_w, hi_w), method="bounded",
                options={"xatol": price_xatol * max(1.0, hi_w)})
            cand = float(res.x)
            margin = 0.01 * (hi_w - lo_w)
            interior_lo = cand > lo_w + margin or lo_w <= lo * (1 + 1e-12)
            if interior_lo and cand < hi_w - margin:
                best_p_e = cand
    if best_p_e is None:
        for _ in range(60):
            res = minimize_scalar(
                lambda x: -esp_profit_anticipating(x),
                bounds=(lo, hi), method="bounded",
                options={"xatol": price_xatol * max(1.0, hi)})
            best_p_e = float(res.x)
            if best_p_e < 0.99 * hi:
                break
            hi *= 2.0
            if _TEL.enabled:
                _TEL.metrics.counter(
                    "stackelberg_bracket_expansions_total",
                    "Price-search bracket doublings in the "
                    "anticipating scheme").inc()
    # Polish pass: the anticipating objective carries inner-optimizer noise
    # and a market-clearing kink in standalone mode; a tighter local search
    # around the coarse optimum recovers the kink accurately.
    span = 0.2 * best_p_e
    res = minimize_scalar(lambda x: -esp_profit_anticipating(x),
                          bounds=(max(lo, best_p_e - span),
                                  best_p_e + span),
                          method="bounded",
                          options={"xatol": price_xatol})
    if -res.fun >= esp_profit_anticipating(best_p_e):
        best_p_e = float(res.x)
    p_c = csp_best_response(oracle, best_p_e, xatol=price_xatol)
    prices = Prices(p_e=best_p_e, p_c=p_c)
    miners = oracle.equilibrium(prices)
    report = ConvergenceReport(converged=True, iterations=1, residual=0.0,
                               tolerance=tol,
                               message="nested scalar optimization")
    return StackelbergEquilibrium(
        prices=prices, miners=miners, v_e=oracle.esp_profit(prices),
        v_c=oracle.csp_profit(prices), report=report,
        scheme="esp-anticipates")


def verify_sp_equilibrium(se: StackelbergEquilibrium,
                          oracle: Optional[DemandOracle] = None,
                          rel_tol: float = 1e-4,
                          grid: int = 41,
                          span: float = 0.5,
                          concept: Optional[str] = None,
                          ) -> Tuple[bool, float]:
    """No-profitable-deviation check for the leader stage.

    Scans a multiplicative price grid around each SP's equilibrium price
    and returns ``(ok, worst_gain)`` where ``worst_gain`` is the largest
    relative profit improvement found (negative or ~0 at an equilibrium).

    The deviation model follows the solution concept (defaults to the one
    ``se`` was solved with):

    * ``"nash"`` — both SPs deviate with the rival's price held fixed
      (matches ``scheme="best-response"``).
    * ``"stackelberg"`` — the CSP deviates with ``P_e`` fixed (it moves
      last); the ESP deviates **along the CSP's reaction curve** (matches
      ``scheme="esp-anticipates"``, where a fixed-price ESP deviation is
      not the relevant counterfactual).
    """
    params = se.miners.params
    if oracle is None:
        oracle = DemandOracle(params)
    if concept is None:
        concept = ("stackelberg" if se.scheme == "esp-anticipates"
                   else "nash")
    if concept not in ("nash", "stackelberg"):
        raise ValueError(f"unknown concept {concept!r}")
    factors = np.linspace(1.0 - span, 1.0 + span, grid)
    v_e_star = oracle.esp_profit(se.prices)
    v_c_star = oracle.csp_profit(se.prices)
    denom_e = max(abs(v_e_star), 1e-12)
    denom_c = max(abs(v_c_star), 1e-12)
    worst = -np.inf
    for f in factors:
        p_e_dev = se.prices.p_e * f
        if p_e_dev > params.edge_cost:
            if concept == "nash":
                if p_e_dev > se.prices.p_c:
                    gain = (oracle.esp_profit(Prices(p_e_dev,
                                                     se.prices.p_c))
                            - v_e_star) / denom_e
                    worst = max(worst, gain)
            else:
                try:
                    p_c_react = csp_best_response(oracle, p_e_dev)
                # Any CSP-reaction failure means "no profitable
                # reaction" for the deviation check, whatever scipy
                # raises. # repro: noqa[RPR007]
                except Exception:  # repro: noqa[RPR007]
                    p_c_react = None
                if p_c_react is not None:
                    gain = (oracle.esp_profit(Prices(p_e_dev, p_c_react))
                            - v_e_star) / denom_e
                    worst = max(worst, gain)
        p_c_dev = se.prices.p_c * f
        if 0 < p_c_dev < se.prices.p_e:
            gain = (oracle.csp_profit(Prices(se.prices.p_e, p_c_dev))
                    - v_c_star) / denom_c
            worst = max(worst, gain)
    return bool(worst <= rel_tol), float(worst)
