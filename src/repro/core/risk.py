"""Risk aversion and mining pools (extension EXT8).

The paper's miners are risk neutral: ``U_i = R W_i - spend`` prices only
the *expected* reward, but a mobile miner's per-round income is a
Bernoulli lottery — win ``R`` with probability ``W_i``, else nothing —
with enormous variance. Under constant absolute risk aversion (CARA,
coefficient ``a``), the certainty equivalent of that lottery is

    CE(W) = -(1/a) · ln( 1 - W + W e^{-a R} )        (< R W for a > 0)

which is increasing in ``W`` and strictly below the risk-neutral line
``R W`` (it is convex in ``W`` with endpoints ``CE(0)=0``, ``CE(1)=R``):
risk-averse miners discount the lottery, and they value **pooling**.
A pool of ``m`` miners shares each member's rewards equally, replacing
the Bernoulli(R, W) lottery with a Binomial-like mixture paying ``R/m``
per pool win with probability ``m·W`` per round (for small per-round
probabilities): less variance, higher certainty equivalent, same mean.

This module provides:

* :func:`certainty_equivalent` — CE of the solo lottery;
* :func:`pooled_certainty_equivalent` — CE when ``m`` symmetric miners
  share rewards;
* :class:`RiskAverseGame` — the symmetric miner subgame under CARA, with
  a numeric best response and damped fixed point;
* experiment EXT8 (:mod:`repro.analysis.extensions`) quantifying how risk
  aversion suppresses offloading demand and how pooling restores it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from ..exceptions import ConfigurationError, ConvergenceError
from ..game.diagnostics import ConvergenceReport, ResidualRecorder
from .params import Prices

__all__ = ["certainty_equivalent", "pooled_certainty_equivalent",
           "RiskAverseGame", "RiskAverseEquilibrium",
           "solve_risk_averse_equilibrium"]


def certainty_equivalent(win_prob: float, reward: float,
                         risk_aversion: float) -> float:
    """CARA certainty equivalent of the Bernoulli mining lottery.

    ``CE = -(1/a) ln(1 - W + W e^{-aR})``; the risk-neutral limit
    ``a -> 0`` recovers ``R W`` (used directly when ``a == 0``).
    """
    if not 0.0 <= win_prob <= 1.0:
        raise ConfigurationError("win_prob must be in [0, 1]")
    if reward < 0:
        raise ConfigurationError("reward must be non-negative")
    if risk_aversion < 0:
        raise ConfigurationError("risk_aversion must be non-negative")
    # Exact zero fast path (closed form). # repro: noqa[RPR002]
    if risk_aversion == 0.0 or reward == 0.0:  # repro: noqa[RPR002]
        return reward * win_prob
    inner = 1.0 - win_prob + win_prob * math.exp(-risk_aversion * reward)
    return -math.log(inner) / risk_aversion


def pooled_certainty_equivalent(win_prob: float, reward: float,
                                risk_aversion: float,
                                pool_size: int) -> float:
    """CE when ``pool_size`` symmetric miners share rewards equally.

    The pool wins a round if any member solves it; each member receives
    ``R/m`` per pool win. For one round the member's lottery pays ``R/m``
    with probability ``min(m·W, 1)`` — same mean ``R W`` (up to the
    clipping), lower variance, hence a higher certainty equivalent for
    any ``a > 0``.
    """
    if pool_size < 1:
        raise ConfigurationError("pool_size must be >= 1")
    pooled_prob = min(pool_size * win_prob, 1.0)
    return certainty_equivalent(pooled_prob, reward / pool_size,
                                risk_aversion)


@dataclass(frozen=True)
class RiskAverseGame:
    """Symmetric CARA miner subgame.

    Attributes:
        n: Number of miners.
        reward: Block reward ``R``.
        fork_rate: Fork rate ``β``.
        h: Edge satisfaction probability.
        budget: Common budget ``B``.
        risk_aversion: CARA coefficient ``a`` (0 = risk neutral).
        pool_size: Reward-sharing pool size ``m`` (1 = solo mining).
            Must divide the conceptual population evenly only in spirit;
            the symmetric analysis needs ``1 <= m <= n``.
    """

    n: int
    reward: float
    fork_rate: float
    h: float
    budget: float
    risk_aversion: float = 0.0
    pool_size: int = 1

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError("need n >= 2 miners")
        if self.reward <= 0 or self.budget <= 0:
            raise ConfigurationError("reward and budget must be positive")
        if not 0.0 <= self.fork_rate < 1.0:
            raise ConfigurationError("fork rate must be in [0, 1)")
        if not 0.0 < self.h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        if self.risk_aversion < 0:
            raise ConfigurationError("risk_aversion must be >= 0")
        if not 1 <= self.pool_size <= self.n:
            raise ConfigurationError("pool_size must be in [1, n]")

    def win_probability(self, e_i: float, c_i: float, e_sym: float,
                        c_sym: float) -> float:
        """Connected-mode ``W_i`` against a symmetric opponent profile."""
        others = self.n - 1
        S = others * (e_sym + c_sym) + e_i + c_i
        E = others * e_sym + e_i
        base = (1.0 - self.fork_rate) * (e_i + c_i) / S if S > 0 else 0.0
        bonus = self.fork_rate * self.h * e_i / E if E > 0 else 0.0
        return base + bonus

    def utility(self, e_i: float, c_i: float, e_sym: float, c_sym: float,
                prices: Prices) -> float:
        """Certainty-equivalent utility: ``CE(W_i) - spend``."""
        w = self.win_probability(e_i, c_i, e_sym, c_sym)
        ce = pooled_certainty_equivalent(w, self.reward,
                                         self.risk_aversion,
                                         self.pool_size)
        return ce - prices.p_e * e_i - prices.p_c * c_i

    def best_response(self, e_sym: float, c_sym: float, prices: Prices,
                      multistart: bool = True) -> Tuple[float, float]:
        """Numeric best response (SLSQP).

        The composed objective is smooth and unimodal on the relevant
        region in practice (not globally concave — CE is convex in W);
        optional multi-start guards boundary optima (used on the first
        fixed-point sweep, single warm starts afterwards).
        """

        def neg(x: np.ndarray) -> float:
            return -self.utility(float(x[0]), float(x[1]), e_sym, c_sym,
                                 prices)

        cons = [{"type": "ineq",
                 "fun": lambda x: self.budget - prices.p_e * x[0]
                 - prices.p_c * x[1]}]
        starts = [np.array([max(e_sym, 0.5), max(c_sym, 0.5)])]
        if multistart:
            starts += [
                np.array([self.budget / (4 * prices.p_e),
                          self.budget / (4 * prices.p_c)]),
                np.array([1e-3, self.budget / (2 * prices.p_c)]),
            ]
        best_val, best_x = -np.inf, starts[0]
        for x0 in starts:
            res = minimize(neg, x0, method="SLSQP",
                           bounds=[(0, None), (0, None)],
                           constraints=cons,
                           options={"maxiter": 200, "ftol": 1e-12})
            if res.success and -res.fun > best_val:
                best_val = -res.fun
                best_x = np.asarray(res.x)
        return float(best_x[0]), float(best_x[1])


@dataclass
class RiskAverseEquilibrium:
    """Symmetric (participation-adjusted) equilibrium of the CARA game.

    Attributes:
        e: Per-active-miner edge request.
        c: Per-active-miner cloud request.
        n_active: Number of miners that participate. Risk aversion can
            make full participation unsustainable — at the interior FOC
            point the certainty equivalent no longer covers the spend and
            the best response is exit — so the equilibrium concept is:
            ``n_active`` symmetric participants with non-negative
            utility, and no profitable entry for an additional miner.
        certainty_equivalent: CE of the equilibrium winning probability.
        utility: Equilibrium per-active-miner utility (``>= 0``).
        entry_blocked: Whether the no-profitable-entry condition was
            confirmed (always True when ``n_active == n``). When False,
            a myopic entrant would profit against the incumbents' soft
            play even though the (n_active+1)-player symmetric outcome is
            unsustainable — the classic free-entry instability; the
            reported point is then the largest *sustainable* symmetric
            participation, not a fully entry-proof equilibrium.
        report: Fixed-point diagnostics of the accepted inner solve.
    """

    e: float
    c: float
    n_active: int
    certainty_equivalent: float
    utility: float
    entry_blocked: bool
    report: ConvergenceReport

    @property
    def converged(self) -> bool:
        return self.report.converged


def _symmetric_fixed_point(game: RiskAverseGame, prices: Prices,
                           tol: float, max_iter: int, damping: float,
                           ) -> Tuple[float, float, ConvergenceReport,
                                      bool]:
    """Inner damped fixed point; flags an exit-collapse (BR -> (0,0))."""
    e = game.budget / (4.0 * prices.p_e)
    c = game.budget / (4.0 * prices.p_c)
    recorder = ResidualRecorder(tol)
    converged = False
    iterations = 0
    alpha = damping
    prev = float("inf")
    stall = 0
    collapsed = False
    for it in range(max_iter):
        iterations = it + 1
        e_br, c_br = game.best_response(e, c, prices,
                                        multistart=(it == 0))
        if e_br + c_br <= 1e-9 and e + c > 1e-6:
            # Participation fails: utility at the candidate is negative
            # and the best response is exit.
            collapsed = True
            break
        e_new = (1 - alpha) * e + alpha * e_br
        c_new = (1 - alpha) * c + alpha * c_br
        scale = max(1.0, abs(e_new), abs(c_new))
        residual = max(abs(e_new - e), abs(c_new - c)) / scale
        e, c = e_new, c_new
        if recorder.record(residual):
            converged = True
            break
        if residual >= 0.9 * prev:
            stall += 1
            if stall >= 3:
                alpha = max(0.5 * alpha, 0.05)
                stall = 0
        else:
            stall = 0
        prev = residual
    report = recorder.report(
        converged, iterations,
        message="exit collapse" if collapsed else None)
    return e, c, report, collapsed


def solve_risk_averse_equilibrium(game: RiskAverseGame, prices: Prices,
                                  tol: float = 2e-5, max_iter: int = 150,
                                  damping: float = 0.5,
                                  ) -> RiskAverseEquilibrium:
    """Participation-adjusted symmetric equilibrium of the CARA game.

    Searches the number of active miners downward from ``n``: for each
    candidate count the symmetric fixed point is solved among the
    participants; the first candidate whose fixed point converges with
    non-negative utility — and for which an additional entrant would not
    profit — is the equilibrium. Risk aversion can thus *shrink* the
    mining population, a phenomenon invisible to the paper's risk-neutral
    model.
    """
    from dataclasses import replace as _replace

    last_report: Optional[ConvergenceReport] = None
    for n_active in range(game.n, 1, -1):
        sub = _replace(game, n=n_active,
                       pool_size=min(game.pool_size, n_active))
        e, c, report, collapsed = _symmetric_fixed_point(
            sub, prices, tol, max_iter, damping)
        last_report = report
        if collapsed:
            continue
        utility = sub.utility(e, c, e, c, prices)
        if utility < -1e-9:
            continue
        entry_blocked = True
        if n_active < game.n:
            entrant = _replace(game, n=n_active + 1,
                               pool_size=min(game.pool_size,
                                             n_active + 1))
            # The entrant faces n_active incumbents playing (e, c).
            be, bc = entrant.best_response(e, c, prices)
            entry_blocked = entrant.utility(be, bc, e, c,
                                            prices) <= 1e-9
        w = sub.win_probability(e, c, e, c)
        ce = pooled_certainty_equivalent(w, game.reward,
                                         game.risk_aversion,
                                         min(game.pool_size, n_active))
        return RiskAverseEquilibrium(
            e=e, c=c, n_active=n_active, certainty_equivalent=ce,
            utility=ce - prices.p_e * e - prices.p_c * c,
            entry_blocked=entry_blocked, report=report)
    raise ConvergenceError(
        "no participation level sustains a symmetric CARA equilibrium "
        f"(searched n = {game.n}..2); report: {last_report}")
