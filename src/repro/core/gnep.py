"""Standalone-mode miner subgame (Problem 1c, GNEP_MINER).

The miners share the hard coupling constraint ``Σ e_i <= E_max``, turning the
subgame into a jointly convex Generalized Nash Equilibrium Problem. Among its
(generally infinite) equilibria we compute the *variational equilibrium* —
the solution singled out by the VI reformulation of Theorem 5 in which every
miner faces the same shadow price ``ν`` for edge capacity.

Two independent solvers are provided and cross-validated in the test suite:

* :func:`solve_standalone_equilibrium` — shadow-price decomposition. For a
  trial ``ν``, miners play the plain NEP with perceived edge price
  ``P_e + ν`` (budget still charged at ``P_e``); the induced edge demand
  ``E(ν)`` is strictly decreasing, so the complementarity condition
  ``ν ⟂ (E_max - E(ν))`` is solved by bracketing + bisection. This mirrors
  the economics of Algorithm 2: the capacity constraint manifests as a price
  mark-up that rations edge demand to exactly ``E_max``.
* :func:`solve_standalone_extragradient` — Korpelevich extragradient on the
  joint VI with a Dykstra projection onto the intersection of per-miner
  budget boxes and the shared half-space.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError
from ..game.projections import dykstra, project_boxes_capacity, \
    project_budget_orthant, project_halfspace
from ..game.vi import VIProblem, solve_vi_adaptive
from . import utility
from .nep import MinerEquilibrium, initial_profile, resolve_kernel, \
    solve_connected_equilibrium
from .params import EdgeMode, GameParameters, Prices

__all__ = ["solve_standalone_equilibrium", "solve_standalone_extragradient",
           "edge_demand"]


def _require_standalone(params: GameParameters) -> float:
    if params.mode is not EdgeMode.STANDALONE:
        raise ConfigurationError(
            "this solver requires standalone-mode parameters "
            f"(got {params.mode})")
    assert params.e_max is not None  # guaranteed by GameParameters
    return float(params.e_max)


def edge_demand(params: GameParameters, prices: Prices, nu: float,
                tol: float = 1e-10, max_iter: int = 3000,
                initial: Optional[Tuple[np.ndarray, np.ndarray]] = None,
                kernel: str = "scalar",
                n_types: Optional[int] = None) -> MinerEquilibrium:
    """Unconstrained miner equilibrium under perceived edge price
    ``P_e + ν`` (budget charged at ``P_e``). Helper of the decomposition.

    Warm starts are rescaled onto the ν-shifted premium: interior edge
    demand scales like ``1/(P_e + ν - P_c)``, and starting far above the
    target risks the absorbing edge collapse documented in
    :mod:`repro.core.nep`.
    """
    if initial is not None and nu > 0.0 and prices.p_e > prices.p_c:
        scale = prices.premium() / (prices.premium() + nu)
        initial = (np.asarray(initial[0], dtype=float) * scale,
                   np.asarray(initial[1], dtype=float))
    return solve_connected_equilibrium(params, prices, tol=tol,
                                       max_iter=max_iter, initial=initial,
                                       _nu=nu, kernel=kernel,
                                       n_types=n_types)


def solve_standalone_equilibrium(params: GameParameters, prices: Prices,
                                 tol: float = 1e-9,
                                 capacity_tol: float = 1e-7,
                                 max_bisect: int = 200,
                                 initial: Optional[Tuple[np.ndarray,
                                                         np.ndarray]] = None,
                                 raise_on_failure: bool = False,
                                 kernel: str = "scalar",
                                 n_types: Optional[int] = None,
                                 ) -> MinerEquilibrium:
    """Variational equilibrium of GNEP_MINER via shadow-price decomposition.

    Args:
        params: Standalone-mode game parameters (``e_max`` set).
        prices: Announced SP prices.
        tol: Tolerance for the inner NEP solves.
        capacity_tol: Relative tolerance on ``|E - E_max|`` when the
            capacity constraint binds.
        max_bisect: Maximum bisection steps on ``ν``.
        initial: Optional warm-start profile ``(e, c)`` for the first
            (unconstrained) inner solve; subsequent ν-evaluations chain
            their own warm starts. ``None`` reproduces the cold path
            bit-identically.
        raise_on_failure: Raise instead of returning a flagged result.
        kernel: Inner NEP kernel — see
            :func:`~repro.core.nep.solve_connected_equilibrium`. The
            ``"vectorized"`` aggregate kernel makes every ν-evaluation
            O(n), which compounds across the shadow-price search.
        n_types: Compress the population into at most this many weighted
            budget types for every inner ν-evaluation (certified
            approximation, see :mod:`repro.kernels.typespace`); ``None``
            solves exactly.

    Returns:
        :class:`MinerEquilibrium` with ``nu`` set to the capacity shadow
        price (0 when the constraint is slack).
    """
    e_max = _require_standalone(params)

    free = edge_demand(params, prices, nu=0.0, tol=tol, initial=initial,
                       kernel=kernel, n_types=n_types)
    if free.total_edge <= e_max * (1.0 + capacity_tol):
        return free

    # Capacity binds: bracket ν so that E(ν_hi) < E_max < E(ν_lo).
    nu_lo, nu_hi = 0.0, max(prices.p_e, 1.0)
    warm = (free.e, free.c)
    eq_hi = edge_demand(params, prices, nu=nu_hi, tol=tol, initial=warm,
                        kernel=kernel, n_types=n_types)
    guard = 0
    while eq_hi.total_edge > e_max:
        nu_lo = nu_hi
        nu_hi *= 2.0
        guard += 1
        if guard > 60:
            raise ConvergenceError(
                "could not bracket the capacity shadow price; edge demand "
                "appears insensitive to price")
        eq_hi = edge_demand(params, prices, nu=nu_hi, tol=tol,
                            initial=warm, kernel=kernel, n_types=n_types)

    # Brentq on the (smooth, strictly decreasing) excess-demand curve is
    # far cheaper than plain bisection; warm starts thread the last
    # profile through consecutive evaluations.
    from scipy.optimize import brentq

    state = {"eq": eq_hi}

    def solve_at(nu: float) -> MinerEquilibrium:
        state["eq"] = edge_demand(params, prices, nu=nu, tol=tol,
                                  initial=(state["eq"].e, state["eq"].c),
                                  kernel=kernel, n_types=n_types)
        return state["eq"]

    def excess(nu: float) -> float:
        return solve_at(nu).total_edge - e_max

    tol_abs = capacity_tol * max(e_max, 1.0)
    f_lo = excess(nu_lo)
    eq_at_lo = state["eq"]
    if abs(f_lo) <= tol_abs or f_lo < 0:
        # The bracket endpoint already sits on (or just inside) capacity —
        # brentq would see no sign change.
        eq = eq_at_lo
    else:
        f_hi = excess(nu_hi)
        if abs(f_hi) <= tol_abs:
            eq = state["eq"]
        else:
            try:
                nu_star = float(brentq(
                    excess, nu_lo, nu_hi,
                    xtol=capacity_tol * max(prices.p_e, 1.0),
                    maxiter=max_bisect))
                eq = solve_at(nu_star)
            except (ValueError, RuntimeError) as ex:
                if raise_on_failure:
                    raise ConvergenceError(
                        f"capacity shadow-price search failed: {ex}") from ex
                eq = state["eq"]

    # Snap the profile exactly onto the capacity plane (uniform shrink of
    # the residual violation, well within capacity_tol).
    if eq.total_edge > e_max and eq.total_edge > 0:
        eq.e = eq.e * (e_max / eq.total_edge)
    return eq


def _joint_projection(params: GameParameters, prices: Prices,
                      e_max: float, kernel: str = "scalar"
                      ) -> Callable[[np.ndarray], np.ndarray]:
    """Projection onto {per-miner budget boxes} ∩ {Σ e_i <= E_max}.

    The joint vector layout is ``x = [e_0..e_{n-1}, c_0..c_{n-1}]``.

    ``kernel="scalar"`` composes per-miner waterfilling with Dykstra's
    alternating projections (the reference path); ``"vectorized"``
    evaluates the joint KKT system directly via
    :func:`repro.game.projections.project_boxes_capacity` — one batched
    box projection per capacity-multiplier bisection step, with no
    per-miner Python in the extragradient loop.
    """
    n = params.n
    budgets = params.budget_array

    if kernel == "vectorized":
        p_e = float(prices.p_e)
        p_c = float(prices.p_c)

        def project_fast(x: np.ndarray) -> np.ndarray:
            e, c = project_boxes_capacity(x[:n], x[n:], p_e, p_c,
                                          budgets, e_max)
            return np.concatenate([e, c])

        return project_fast

    price_vec = prices.as_array
    normal = np.concatenate([np.ones(n), np.zeros(n)])

    def project_boxes(x: np.ndarray) -> np.ndarray:
        out = np.empty_like(x)
        for i in range(n):
            block = np.array([x[i], x[n + i]])
            proj = project_budget_orthant(block, price_vec,
                                          float(budgets[i]))
            out[i] = proj[0]
            out[n + i] = proj[1]
        return out

    def project_capacity(x: np.ndarray) -> np.ndarray:
        return project_halfspace(x, normal, e_max)

    def project(x: np.ndarray) -> np.ndarray:
        return dykstra(x, [project_boxes, project_capacity])

    return project


def solve_standalone_extragradient(params: GameParameters, prices: Prices,
                                   tol: float = 1e-8,
                                   max_iter: int = 50000,
                                   step: float = 1.0,
                                   initial: Optional[Tuple[np.ndarray,
                                                           np.ndarray]] = None,
                                   raise_on_failure: bool = False,
                                   kernel: str = "scalar",
                                   ) -> MinerEquilibrium:
    """Variational equilibrium of GNEP_MINER via extragradient on the VI.

    Slower than the decomposition but assumption-light; used to
    cross-validate :func:`solve_standalone_equilibrium` (ablation ABL1).

    ``kernel`` selects the projection oracle: ``"scalar"`` is the
    Dykstra + per-miner waterfilling reference, ``"vectorized"`` the
    batched joint KKT projection (see :func:`_joint_projection`);
    ``"auto"`` resolves by miner count exactly as in
    :func:`repro.core.nep.resolve_kernel`.
    """
    e_max = _require_standalone(params)
    n = params.n
    kernel = resolve_kernel(kernel, n)

    def operator(x: np.ndarray) -> np.ndarray:
        e = x[:n]
        c = x[n:]
        du_de, du_dc = utility.miner_utility_gradients(e, c, params, prices)
        return -np.concatenate([du_de, du_dc])

    project = _joint_projection(params, prices, e_max, kernel=kernel)
    if initial is None:
        e0, c0 = initial_profile(params, prices)
    else:
        e0, c0 = initial
    x0 = np.concatenate([np.asarray(e0, float), np.asarray(c0, float)])

    problem = VIProblem(operator=operator, project=project, dim=2 * n)
    result = solve_vi_adaptive(problem, x0=x0, step=step, tol=tol,
                               max_iter=max_iter,
                               raise_on_failure=raise_on_failure,
                               kernel=kernel)
    e = result.solution[:n]
    c = result.solution[n:]
    # Recover the capacity shadow price from the aggregate KKT residual of
    # any interior miner (diagnostic only; 0 when capacity is slack).
    nu = 0.0
    if float(np.sum(e)) >= e_max * (1.0 - 1e-6):
        du_de, du_dc = utility.miner_utility_gradients(e, c, params, prices)
        interior = (e > 1e-9) & (c > 1e-9)
        if np.any(interior):
            # For interior miners with slack budget: du_de - nu = 0 and
            # du_dc = 0, hence nu = du_de - du_dc.
            nu = float(np.median(du_de[interior] - du_dc[interior]))
            nu = max(nu, 0.0)
    return MinerEquilibrium(e=e, c=c, params=params, prices=prices,
                            report=result.report, nu=nu)
