"""Fork-rate model (Section III-A, Fig. 2).

The paper adopts Bitcoin's measured behaviour (Decker & Wattenhofer): block
collisions during a propagation window of length ``t`` follow an
exponential law, so the collision PDF is ``f(t) = λ e^{-λt}`` and the split
rate (CDF) ``β(t) = 1 - e^{-λt}``, which is almost linear in the delays of
interest (``λ t << 1``).

:class:`ForkModel` converts between propagation delay and the fork rate
``β`` consumed by the game, and exposes the PDF/CDF used to regenerate
Fig. 2. The default rate is calibrated to Bitcoin: an expected
inter-collision interval of ``1/λ ≈ 12.6`` blocks-seconds reported for the
2013 network measurement study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ForkModel", "BITCOIN_COLLISION_RATE"]

#: Collision rate λ (1/s) calibrated to Bitcoin's measured propagation
#: study: mean time-to-conflict of ~12.6 s.
BITCOIN_COLLISION_RATE = 1.0 / 12.6


@dataclass(frozen=True)
class ForkModel:
    """Exponential block-collision model.

    Attributes:
        collision_rate: Rate ``λ`` of conflicting-block arrivals during
            propagation (1/s).
    """

    collision_rate: float = BITCOIN_COLLISION_RATE

    def __post_init__(self) -> None:
        if self.collision_rate <= 0:
            raise ConfigurationError(
                f"collision_rate must be positive, got {self.collision_rate}")

    def pdf(self, delay: Union[float, np.ndarray]
            ) -> Union[float, np.ndarray]:
        """Collision PDF ``f(t) = λ e^{-λt}`` (vectorized; Fig. 2a)."""
        t = np.asarray(delay, dtype=float)
        out = np.where(t >= 0,
                       self.collision_rate * np.exp(-self.collision_rate
                                                    * np.maximum(t, 0.0)),
                       0.0)
        return out if out.ndim else float(out)

    def fork_rate(self, delay: Union[float, np.ndarray]
                  ) -> Union[float, np.ndarray]:
        """Split-rate CDF ``β(t) = 1 - e^{-λt}`` (vectorized; Fig. 2b)."""
        t = np.asarray(delay, dtype=float)
        out = np.where(t >= 0,
                       1.0 - np.exp(-self.collision_rate
                                    * np.maximum(t, 0.0)),
                       0.0)
        return out if out.ndim else float(out)

    def delay_for_fork_rate(self, beta: float) -> float:
        """Inverse of :meth:`fork_rate`: the delay producing fork rate β."""
        if not 0.0 <= beta < 1.0:
            raise ConfigurationError(f"beta must be in [0, 1), got {beta}")
        return -math.log(1.0 - beta) / self.collision_rate

    def linear_approximation(self, delay: Union[float, np.ndarray]
                             ) -> Union[float, np.ndarray]:
        """Small-delay linearization ``β(t) ≈ λ t`` (the paper's "almost
        linearly proportional" regime)."""
        t = np.asarray(delay, dtype=float)
        out = self.collision_rate * np.maximum(t, 0.0)
        return out if out.ndim else float(out)

    def linearization_error(self, delay: float) -> float:
        """Absolute error of the linear approximation at ``delay``."""
        return abs(float(self.linear_approximation(delay))
                   - float(self.fork_rate(delay)))
