"""Mining simulators that mechanistically validate the Section-III model.

Two granularities:

* :class:`RoundSimulator` — one sample per mining round, drawing the first
  solver proportionally to units and applying the paper's fork semantics
  (a cloud-solved block is orphaned with probability ``β`` by an
  edge-solved conflict attributed ``∝ e_j/E``). Its empirical win shares
  converge to ``W_i`` of Eqs. (6)/(9); the test suite asserts this.
* :class:`EventDrivenSimulator` — continuous time on a real
  :class:`~repro.blockchain.chain.Blockchain`: exponential PoW races,
  cloud blocks exposed for ``D_avg``, conflicts mined by the edge pool
  within the exposure window. Orphan rates here *emerge* from the
  mechanism, validating the :class:`~repro.blockchain.forks.ForkModel`
  calibration rather than assuming it.

Transfer policies for connected mode (``RoundSimulator``):

* ``"none"``        — all requests fully satisfied (validates Eq. 6);
* ``"marginal"``    — only the *measured* miner's edge request is
  transferred w.p. ``1-h`` while the rest stay satisfied: the exact
  law-of-total-expectation semantics behind Eq. (9);
* ``"independent"`` — every miner's edge request independently transfers
  w.p. ``1-h``: the *physical* joint model. Eq. (9) is only the marginal
  approximation of this process; ablation benchmark ABL3 quantifies the
  (small, Jensen-driven) gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .chain import Blockchain, ChainStats
from .node import MinerNode
from .pow import Difficulty, PowOracle
from .propagation import PropagationModel

__all__ = ["RoundSimulator", "RoundTally", "EventDrivenSimulator",
           "EventDrivenResult"]


@dataclass
class RoundTally:
    """Win counts from a batch of simulated mining rounds.

    Attributes:
        wins: Per-miner canonical-block counts.
        rounds: Number of rounds simulated.
        orphaned_cloud_blocks: Cloud-solved first blocks that lost to an
            edge conflict.
    """

    wins: np.ndarray
    rounds: int
    orphaned_cloud_blocks: int

    @property
    def win_rates(self) -> np.ndarray:
        """Empirical per-miner winning probabilities."""
        if self.rounds == 0:
            return np.zeros_like(self.wins, dtype=float)
        return self.wins / self.rounds


class RoundSimulator:
    """Per-round Monte-Carlo sampler of the paper's winning model.

    Args:
        e: Per-miner ESP units (shape ``(n,)``).
        c: Per-miner CSP units (shape ``(n,)``).
        beta: Fork rate ``β`` of the cloud exposure window.
        h: Edge satisfaction probability (connected mode; 1.0 = always
            satisfied).
        seed: RNG seed.
    """

    def __init__(self, e: Sequence[float], c: Sequence[float], beta: float,
                 h: float = 1.0, seed: int = 0) -> None:
        self.e = np.asarray(e, dtype=float)
        self.c = np.asarray(c, dtype=float)
        if self.e.shape != self.c.shape or self.e.ndim != 1:
            raise ConfigurationError("e and c must be 1-D and equal length")
        if np.any(self.e < 0) or np.any(self.c < 0):
            raise ConfigurationError("units must be non-negative")
        if float(np.sum(self.e + self.c)) <= 0:
            raise ConfigurationError("total units must be positive")
        if not 0.0 <= beta < 1.0:
            raise ConfigurationError("beta must be in [0, 1)")
        if not 0.0 < h <= 1.0:
            raise ConfigurationError("h must be in (0, 1]")
        self.beta = beta
        self.h = h
        self._rng = np.random.default_rng(seed)
        self.n = self.e.shape[0]

    def _play_round(self, e: np.ndarray, c: np.ndarray) -> tuple:
        """One round under realized pools; returns ``(winner, orphaned)``."""
        E = float(e.sum())
        S = E + float(c.sum())
        if S <= 0.0:
            raise ConfigurationError(
                "cannot simulate a round with zero total offloaded power")
        pools = np.concatenate([e, c])
        first = int(self._rng.choice(2 * self.n, p=pools / S))
        if first < self.n:
            return first, False  # edge block reaches consensus instantly
        miner = first - self.n
        # Cloud block: exposed for D_avg; conflict w.p. beta, and only an
        # edge-solved conflict (attributed ∝ e_j/E) beats it.
        if E > 0 and self._rng.random() < self.beta:
            conflictor = int(self._rng.choice(self.n, p=e / E))
            if conflictor != miner:
                return conflictor, True
        return miner, False

    def run(self, rounds: int, transfer: str = "none",
            measured: Optional[int] = None,
            vectorized: bool = True) -> RoundTally:
        """Simulate ``rounds`` mining rounds.

        Args:
            rounds: Number of rounds.
            transfer: Connected-mode transfer policy (see module docstring).
            measured: Index of the perspective miner for
                ``transfer="marginal"``.
            vectorized: Use the numpy batch sampler for the ``"none"`` and
                ``"marginal"`` policies (~100x faster; statistically
                identical — the per-round loop remains for
                ``"independent"``, whose pools change every round, and is
                cross-checked against the batch path in the tests).

        Returns:
            :class:`RoundTally` with per-miner win counts.
        """
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        if transfer not in ("none", "marginal", "independent"):
            raise ConfigurationError(f"unknown transfer policy {transfer!r}")
        if transfer == "marginal" and (measured is None
                                       or not 0 <= measured < self.n):
            raise ConfigurationError(
                "transfer='marginal' needs a valid measured miner index")
        if vectorized and transfer in ("none", "marginal"):
            return self._run_vectorized(rounds, transfer, measured)
        wins = np.zeros(self.n, dtype=int)
        orphans = 0
        for _ in range(rounds):
            e = self.e.copy()
            c = self.c.copy()
            if transfer == "marginal":
                if self._rng.random() >= self.h:
                    c[measured] += e[measured]
                    e[measured] = 0.0
            elif transfer == "independent":
                moved = self._rng.random(self.n) >= self.h
                c[moved] += e[moved]
                e[moved] = 0.0
            winner, orphaned = self._play_round(e, c)
            wins[winner] += 1
            orphans += int(orphaned)
        return RoundTally(wins=wins, rounds=rounds,
                          orphaned_cloud_blocks=orphans)

    def _run_batch(self, rounds: int, e: np.ndarray,
                   c: np.ndarray) -> RoundTally:
        """Vectorized rounds under *fixed* realized pools."""
        E = float(e.sum())
        S = E + float(c.sum())
        if S <= 0.0:
            raise ConfigurationError(
                "cannot simulate rounds with zero total offloaded power")
        pools = np.concatenate([e, c])
        first = self._rng.choice(2 * self.n, size=rounds, p=pools / S)
        winners = np.where(first < self.n, first, first - self.n)
        cloud = first >= self.n
        orphaned = np.zeros(rounds, dtype=bool)
        if E > 0:
            conflict = cloud & (self._rng.random(rounds) < self.beta)
            idx = np.flatnonzero(conflict)
            if idx.size:
                conflictors = self._rng.choice(self.n, size=idx.size,
                                               p=e / E)
                takeover = conflictors != winners[idx]
                winners[idx[takeover]] = conflictors[takeover]
                orphaned[idx[takeover]] = True
        wins = np.bincount(winners, minlength=self.n)
        return RoundTally(wins=wins, rounds=rounds,
                          orphaned_cloud_blocks=int(orphaned.sum()))

    def _run_vectorized(self, rounds: int, transfer: str,
                        measured: Optional[int]) -> RoundTally:
        if transfer == "none":
            return self._run_batch(rounds, self.e, self.c)
        # marginal: split the rounds binomially between the satisfied and
        # transferred states of the measured miner.
        satisfied = int(self._rng.binomial(rounds, self.h))
        tallies = []
        if satisfied > 0:
            tallies.append(self._run_batch(satisfied, self.e, self.c))
        if rounds - satisfied > 0:
            e_mod = self.e.copy()
            c_mod = self.c.copy()
            c_mod[measured] += e_mod[measured]
            e_mod[measured] = 0.0
            tallies.append(self._run_batch(rounds - satisfied, e_mod,
                                           c_mod))
        wins = np.sum([t.wins for t in tallies], axis=0).astype(int)
        orphans = int(sum(t.orphaned_cloud_blocks for t in tallies))
        return RoundTally(wins=wins, rounds=rounds,
                          orphaned_cloud_blocks=orphans)


@dataclass
class EventDrivenResult:
    """Outcome of an event-driven mining simulation.

    Attributes:
        chain: The resulting block tree.
        nodes: Miner nodes with their reward ledgers.
        stats: Chain statistics (orphan rate, forks).
        elapsed: Total simulated seconds.
    """

    chain: Blockchain
    nodes: List[MinerNode]
    stats: ChainStats
    elapsed: float

    @property
    def win_shares(self) -> np.ndarray:
        """Canonical-block share per miner."""
        winners = self.chain.winners()
        shares = np.zeros(len(self.nodes))
        for w in winners:
            shares[w] += 1
        total = shares.sum()
        return shares / total if total > 0 else shares


class EventDrivenSimulator:
    """Continuous-time mining on a real block tree.

    Each height is a race: the first solution arrives after an exponential
    time over all ``S`` units, attributed proportionally; a cloud-solved
    block waits out its exposure window during which the edge pool may
    mine a conflicting block that orphans it (first-received rule: the
    conflicting edge block propagates instantly).

    Args:
        nodes: Miner nodes with purchased units.
        difficulty: PoW difficulty (per-unit mean solve time).
        propagation: Venue delay model.
        reward: Mining reward credited per canonical block.
        seed: RNG seed.
    """

    def __init__(self, nodes: Sequence[MinerNode], difficulty: Difficulty,
                 propagation: PropagationModel, reward: float = 1.0,
                 seed: int = 0) -> None:
        if len(nodes) < 1:
            raise ConfigurationError("need at least one miner node")
        if reward <= 0:
            raise ConfigurationError("reward must be positive")
        self.nodes = list(nodes)
        self.difficulty = difficulty
        self.propagation = propagation
        self.reward = reward
        self.oracle = PowOracle(difficulty, seed=seed)

    def run(self, blocks: int) -> EventDrivenResult:
        """Mine until the canonical chain grows by ``blocks`` blocks."""
        if blocks < 1:
            raise ConfigurationError("blocks must be >= 1")
        chain = Blockchain()
        e = np.array([m.edge_units for m in self.nodes])
        c = np.array([m.cloud_units for m in self.nodes])
        E = float(e.sum())
        S = E + float(c.sum())
        if S <= 0:
            raise ConfigurationError("total purchased units must be positive")
        now = 0.0
        n = len(self.nodes)
        pools = np.concatenate([e, c])
        while chain.height < blocks:
            idx, elapsed = self.oracle.race(pools)
            now += elapsed
            venue = "edge" if idx < n else "cloud"
            miner = idx % n
            parent = chain.tip
            block = parent.child(miner, venue, now)
            window = self.propagation.exposure_window(venue)
            if venue == "cloud" and window > 0 and E > 0 and \
                    self.oracle.next_solution_within(E, window):
                # A conflicting edge block is found during the exposure
                # window; it propagates instantly and wins the height.
                t_conflict = now + float(
                    self.oracle.rng.uniform(0.0, window))
                conflictor = int(self.oracle.rng.choice(n, p=e / E))
                rival = parent.child(conflictor, "edge", t_conflict)
                if conflictor != miner:
                    chain.add(rival)
                    chain.add(block)  # arrives later: orphaned sibling
                    self.nodes[conflictor].credit(self.reward)
                    self.nodes[miner].orphan()
                    now = t_conflict
                    continue
            chain.add(block)
            self.nodes[miner].credit(self.reward)
        return EventDrivenResult(chain=chain, nodes=self.nodes,
                                 stats=chain.stats(), elapsed=now)
