"""Transactions, mempool, and fee-aware block packing.

The paper treats the mining reward ``R`` as a constant; on real chains a
block's revenue is subsidy + transaction fees, and fees depend on how
many bytes the miner packs — which in turn slows propagation and raises
the orphan risk the whole game is about. This module supplies the fee
side of that trade-off:

* :class:`Transaction` / :class:`Mempool` — fee-rate-ordered pool with
  greedy block packing (the standard miner policy);
* :class:`TxArrivalProcess` — Poisson arrivals with heavy-tailed fees;
* :func:`simulate_fee_revenue` — expected fees per block as a function of
  the block-size limit, from a seeded simulation.

Experiment EXT7 combines this with the gossip-calibrated orphan
probability to locate the revenue-optimal block size.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Transaction", "Mempool", "TxArrivalProcess",
           "simulate_fee_revenue", "FeeSimulationResult"]


@dataclass(frozen=True)
class Transaction:
    """One pending transaction.

    Attributes:
        tx_id: Unique identifier.
        fee: Total fee offered (currency units).
        size: Serialized size in bytes.
    """

    tx_id: int
    fee: float
    size: float

    def __post_init__(self) -> None:
        if self.fee < 0:
            raise ConfigurationError("fee must be non-negative")
        if self.size <= 0:
            raise ConfigurationError("size must be positive")

    @property
    def fee_rate(self) -> float:
        """Fee per byte — the packing priority."""
        return self.fee / self.size


class Mempool:
    """Fee-rate-ordered transaction pool with greedy packing.

    Uses a max-heap on fee rate; :meth:`pack_block` pops the best-paying
    transactions that fit the byte limit (skipping ones that do not fit,
    up to a bounded lookahead — the standard greedy knapsack
    approximation miners actually run).
    """

    def __init__(self, lookahead: int = 64) -> None:
        if lookahead < 1:
            raise ConfigurationError("lookahead must be >= 1")
        self._heap: List[Tuple[float, int, Transaction]] = []
        self._counter = itertools.count()
        self.lookahead = lookahead

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def total_fees(self) -> float:
        return sum(tx.fee for _, _, tx in self._heap)

    @property
    def total_bytes(self) -> float:
        return sum(tx.size for _, _, tx in self._heap)

    def add(self, tx: Transaction) -> None:
        heapq.heappush(self._heap, (-tx.fee_rate, next(self._counter), tx))

    def pack_block(self, max_bytes: float) -> List[Transaction]:
        """Greedily fill a block up to ``max_bytes``; removes the packed
        transactions from the pool."""
        if max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        packed: List[Transaction] = []
        skipped: List[Tuple[float, int, Transaction]] = []
        remaining = max_bytes
        misses = 0
        while self._heap and misses < self.lookahead:
            entry = heapq.heappop(self._heap)
            tx = entry[2]
            if tx.size <= remaining:
                packed.append(tx)
                remaining -= tx.size
            else:
                skipped.append(entry)
                misses += 1
        for entry in skipped:
            heapq.heappush(self._heap, entry)
        return packed


@dataclass
class TxArrivalProcess:
    """Poisson transaction arrivals with log-normal fee rates.

    Attributes:
        rate: Arrivals per second.
        mean_size: Mean transaction size (bytes, exponential).
        median_fee_rate: Median fee per byte.
        fee_sigma: Log-normal sigma of the fee rate (heavy tail).
        seed: RNG seed.
    """

    rate: float
    mean_size: float = 500.0
    median_fee_rate: float = 1e-5
    fee_sigma: float = 1.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _counter: "itertools.count[int]" = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.mean_size <= 0 or self.median_fee_rate <= 0:
            raise ConfigurationError("sizes and fee rates must be positive")
        if self.fee_sigma < 0:
            raise ConfigurationError("fee_sigma must be non-negative")
        object.__setattr__(self, "_rng", np.random.default_rng(self.seed))
        object.__setattr__(self, "_counter", itertools.count())

    def arrivals(self, duration: float) -> List[Transaction]:
        """Transactions arriving over ``duration`` seconds."""
        if duration < 0:
            raise ConfigurationError("duration must be non-negative")
        count = int(self._rng.poisson(self.rate * duration))
        txs = []
        for _ in range(count):
            size = max(float(self._rng.exponential(self.mean_size)), 64.0)
            fee_rate = self.median_fee_rate * float(
                np.exp(self.fee_sigma * self._rng.standard_normal()))
            txs.append(Transaction(tx_id=next(self._counter),
                                   fee=fee_rate * size, size=size))
        return txs


@dataclass
class FeeSimulationResult:
    """Outcome of a fee-market simulation.

    Attributes:
        fees_per_block: Fee revenue of each simulated block.
        bytes_per_block: Bytes packed into each block.
        backlog: Mempool size (transactions) after the run.
    """

    fees_per_block: np.ndarray
    bytes_per_block: np.ndarray
    backlog: int

    @property
    def mean_fees(self) -> float:
        return float(np.mean(self.fees_per_block)) \
            if len(self.fees_per_block) else 0.0

    @property
    def mean_fill(self) -> float:
        return float(np.mean(self.bytes_per_block)) \
            if len(self.bytes_per_block) else 0.0


def simulate_fee_revenue(process: TxArrivalProcess, block_interval: float,
                         blocks: int, max_block_bytes: float,
                         warmup_blocks: int = 5) -> FeeSimulationResult:
    """Run the fee market for ``blocks`` blocks at a fixed interval.

    Args:
        process: Transaction arrival process.
        block_interval: Seconds between blocks (deterministic here; the
            fee totals concentrate fast and the PoW jitter is orthogonal).
        blocks: Number of measured blocks.
        max_block_bytes: Block-size limit the miner packs against.
        warmup_blocks: Blocks run before measurement starts (fills the
            mempool to steady state).
    """
    if block_interval <= 0 or blocks < 1:
        raise ConfigurationError("need positive interval and >= 1 block")
    mempool = Mempool()
    fees = []
    sizes = []
    for b in range(warmup_blocks + blocks):
        for tx in process.arrivals(block_interval):
            mempool.add(tx)
        packed = mempool.pack_block(max_block_bytes)
        if b >= warmup_blocks:
            fees.append(sum(tx.fee for tx in packed))
            sizes.append(sum(tx.size for tx in packed))
    return FeeSimulationResult(fees_per_block=np.array(fees),
                               bytes_per_block=np.array(sizes),
                               backlog=len(mempool))
