"""Block and header primitives for the PoW mining simulator.

The simulator is used to *mechanistically validate* the paper's winning
probability model (Section III): blocks are mined by abstract computing
units, propagate with delays, and conflict during propagation windows.
Hashes are real (SHA-256) so chain-integrity invariants can be tested, but
the PoW difficulty check is simulated via solve-time sampling — actually
grinding hashes would add nothing to the model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["BlockHeader", "Block", "GENESIS_PARENT"]

#: Parent hash of the genesis block.
GENESIS_PARENT = "0" * 64


@dataclass(frozen=True)
class BlockHeader:
    """Immutable block header.

    Attributes:
        parent_hash: Hex digest of the parent block's header.
        height: Chain height (genesis is 0).
        miner_id: Index of the miner that produced the block (-1 = genesis).
        venue: ``"edge"`` or ``"cloud"`` — where the PoW was solved; decides
            the propagation delay (edge: 0, cloud: ``D_avg``).
        found_at: Simulation time at which the PoW solution was found.
        nonce: Simulated PoW nonce (bookkeeping only).
    """

    parent_hash: str
    height: int
    miner_id: int
    venue: str
    found_at: float
    nonce: int = 0

    def __post_init__(self) -> None:
        if self.venue not in ("edge", "cloud", "genesis"):
            raise ValueError(f"unknown venue {self.venue!r}")
        if self.height < 0:
            raise ValueError("height must be non-negative")

    def digest(self) -> str:
        """Deterministic SHA-256 digest of the header contents."""
        payload = json.dumps({
            "parent": self.parent_hash,
            "height": self.height,
            "miner": self.miner_id,
            "venue": self.venue,
            "found_at": round(self.found_at, 9),
            "nonce": self.nonce,
        }, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclass(frozen=True)
class Block:
    """A mined block: header plus its cached digest.

    Attributes:
        header: The block header.
        hash: Cached header digest (computed at construction).
    """

    header: BlockHeader
    hash: str = field(default="")

    def __post_init__(self) -> None:
        if not self.hash:
            object.__setattr__(self, "hash", self.header.digest())

    @classmethod
    def genesis(cls) -> "Block":
        """The canonical genesis block."""
        header = BlockHeader(parent_hash=GENESIS_PARENT, height=0,
                             miner_id=-1, venue="genesis", found_at=0.0)
        return cls(header=header)

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def miner_id(self) -> int:
        return self.header.miner_id

    @property
    def venue(self) -> str:
        return self.header.venue

    def child(self, miner_id: int, venue: str, found_at: float,
              nonce: int = 0) -> "Block":
        """Construct a valid child of this block."""
        if found_at < self.header.found_at:
            raise ValueError(
                f"child found_at {found_at} precedes parent "
                f"{self.header.found_at}")
        header = BlockHeader(parent_hash=self.hash,
                             height=self.header.height + 1,
                             miner_id=miner_id, venue=venue,
                             found_at=found_at, nonce=nonce)
        return Block(header=header)

    def verify_link(self, parent: "Block") -> bool:
        """Whether this block correctly extends ``parent``."""
        return (self.header.parent_hash == parent.hash
                and self.header.height == parent.header.height + 1
                and self.hash == self.header.digest())
