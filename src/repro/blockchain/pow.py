"""Simulated proof-of-work: exponential solve times per computing unit.

PoW solving is a memoryless search, so the time for a pool of ``u``
computing units to find a solution is exponential with rate ``u * λ_unit``
where ``λ_unit`` is the per-unit hash rate expressed in solutions per
second at the current difficulty. Consequently:

* the *first* solution across all pools arrives at rate ``λ_unit * S``;
* the probability that a given pool wins is proportional to its units —
  exactly the ``e_i/S``-style terms of the paper's Eq. (4)-(6).

:class:`PowOracle` samples winner identities and inter-block times in one
step (competition of exponentials), which is statistically identical to
simulating every pool separately but O(1) per block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["Difficulty", "PowOracle"]


@dataclass(frozen=True)
class Difficulty:
    """PoW difficulty expressed as the expected solve time of one unit.

    Attributes:
        unit_solve_time: Mean seconds for a single computing unit to solve
            the puzzle (e.g. Bitcoin targets 600 s for the whole network;
            per-unit time scales with total units).
    """

    unit_solve_time: float

    def __post_init__(self) -> None:
        if self.unit_solve_time <= 0:
            raise ConfigurationError(
                f"unit_solve_time must be positive, got "
                f"{self.unit_solve_time}")

    @property
    def unit_rate(self) -> float:
        """Per-unit solution rate (solutions per second)."""
        return 1.0 / self.unit_solve_time


class PowOracle:
    """Samples PoW race outcomes for pools of computing units.

    Args:
        difficulty: Puzzle difficulty.
        seed: RNG seed for reproducibility.
    """

    def __init__(self, difficulty: Difficulty, seed: int = 0) -> None:
        self.difficulty = difficulty
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def solve_time(self, units: float) -> float:
        """Sample the time for ``units`` computing units to find a solution."""
        if units <= 0:
            raise ConfigurationError("cannot mine with non-positive units")
        rate = units * self.difficulty.unit_rate
        return float(self._rng.exponential(1.0 / rate))

    def race(self, pools: Sequence[float]) -> Tuple[int, float]:
        """Race several pools; return ``(winner_index, elapsed_time)``.

        Pools with zero units never win. The winner is drawn proportionally
        to pool size and the elapsed time from the aggregate rate — the
        exact distribution of the minimum of independent exponentials.
        """
        pools_arr = np.asarray(pools, dtype=float)
        if np.any(pools_arr < 0):
            raise ConfigurationError("pool sizes must be non-negative")
        total = float(pools_arr.sum())
        if total <= 0:
            raise ConfigurationError("at least one pool must be non-empty")
        elapsed = float(self._rng.exponential(
            self.difficulty.unit_solve_time / total))
        winner = int(self._rng.choice(len(pools_arr), p=pools_arr / total))
        return winner, elapsed

    def next_solution_within(self, units: float, window: float) -> bool:
        """Whether a pool of ``units`` finds a solution within ``window``
        seconds — the conflicting-block event of the fork model."""
        if units <= 0 or window <= 0:
            return False
        rate = units * self.difficulty.unit_rate
        return bool(self._rng.random() < 1.0 - np.exp(-rate * window))
