"""Difficulty retargeting: keeping block intervals stable as demand moves.

The game's equilibria move the total purchased computing power ``S`` with
prices and parameters, but PoW networks hold the *block interval* roughly
constant by retargeting difficulty. This module implements the standard
epoch-based controller (Bitcoin-style: rescale by actual/target epoch
duration, clamped) and a closed-loop simulation that couples it to the
:class:`~repro.blockchain.pow.PowOracle`. It closes the loop between the
economics and the chain: equilibrium demand changes translate into
difficulty, not interval, shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .pow import Difficulty, PowOracle

__all__ = ["RetargetPolicy", "DifficultyAdjuster", "simulate_retargeting"]


@dataclass(frozen=True)
class RetargetPolicy:
    """Epoch-based difficulty retargeting rule.

    Attributes:
        target_interval: Desired seconds between blocks.
        epoch_blocks: Blocks per retargeting epoch (Bitcoin uses 2016).
        max_ratio: Clamp on the per-epoch adjustment factor (Bitcoin
            clamps to 4x in either direction).
    """

    target_interval: float
    epoch_blocks: int = 16
    max_ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.target_interval <= 0:
            raise ConfigurationError("target_interval must be positive")
        if self.epoch_blocks < 1:
            raise ConfigurationError("epoch_blocks must be >= 1")
        if self.max_ratio <= 1.0:
            raise ConfigurationError("max_ratio must exceed 1")

    def adjust(self, difficulty: Difficulty,
               actual_epoch_seconds: float) -> Difficulty:
        """New difficulty after an epoch that took ``actual_epoch_seconds``.

        A fast epoch (actual < target) must *raise* difficulty, i.e.
        increase the per-unit solve time proportionally.
        """
        if actual_epoch_seconds <= 0:
            raise ConfigurationError("epoch duration must be positive")
        target_epoch = self.target_interval * self.epoch_blocks
        ratio = target_epoch / actual_epoch_seconds
        ratio = min(max(ratio, 1.0 / self.max_ratio), self.max_ratio)
        return Difficulty(unit_solve_time=difficulty.unit_solve_time
                          * ratio)


@dataclass
class EpochRecord:
    """One retargeting epoch's outcome."""

    difficulty: float
    mean_interval: float
    total_units: float


class DifficultyAdjuster:
    """Closed-loop difficulty controller over simulated epochs."""

    def __init__(self, policy: RetargetPolicy,
                 initial: Difficulty) -> None:
        self.policy = policy
        self.difficulty = initial
        self.history: List[EpochRecord] = []

    def run_epoch(self, oracle: PowOracle, total_units: float) -> float:
        """Mine one epoch at the current difficulty; retarget afterwards.

        Returns the epoch's mean block interval.
        """
        if total_units <= 0:
            raise ConfigurationError("total_units must be positive")
        oracle.difficulty = self.difficulty
        intervals = [oracle.solve_time(total_units)
                     for _ in range(self.policy.epoch_blocks)]
        duration = float(np.sum(intervals))
        mean_interval = duration / self.policy.epoch_blocks
        self.history.append(EpochRecord(
            difficulty=self.difficulty.unit_solve_time,
            mean_interval=mean_interval,
            total_units=total_units))
        self.difficulty = self.policy.adjust(self.difficulty, duration)
        return mean_interval


def simulate_retargeting(demand_path: Sequence[float],
                         policy: RetargetPolicy,
                         initial: Difficulty,
                         seed: int = 0) -> List[EpochRecord]:
    """Run the controller against a path of total-demand values.

    Args:
        demand_path: Sequence of total purchased units ``S`` per epoch
            (e.g. equilibrium demand under a price trajectory).
        policy: Retargeting rule.
        initial: Starting difficulty.
        seed: RNG seed for the PoW solve times.

    Returns:
        Per-epoch records; after a demand shock the mean interval returns
        to the target within a few epochs (asserted in the tests).
    """
    adjuster = DifficultyAdjuster(policy, initial)
    oracle = PowOracle(initial, seed=seed)
    for units in demand_path:
        adjuster.run_epoch(oracle, float(units))
    return adjuster.history


__all__.append("EpochRecord")
