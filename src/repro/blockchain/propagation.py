"""Propagation-delay model of the two-tier network (Section II-A).

The paper's simplification: ESP <-> miner delay is 0; every path touching
the CSP costs ``D_avg``. Edge-solved blocks therefore reach consensus
immediately, while cloud-solved blocks are exposed for ``D_avg`` during
which a conflicting edge block orphans them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["PropagationModel"]


@dataclass(frozen=True)
class PropagationModel:
    """Venue-dependent propagation delays.

    Attributes:
        cloud_delay: ``D_avg`` in seconds — CSP <-> network delay.
        edge_delay: ESP <-> miner delay (0 in the paper's model, kept as a
            parameter for sensitivity studies).
    """

    cloud_delay: float
    edge_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.cloud_delay < 0 or self.edge_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if self.edge_delay > self.cloud_delay:
            raise ConfigurationError(
                "the model assumes the edge is at least as close as the "
                f"cloud (edge_delay={self.edge_delay} > "
                f"cloud_delay={self.cloud_delay})")

    def delay(self, venue: str) -> float:
        """Propagation delay of a block solved at ``venue``."""
        if venue == "edge":
            return self.edge_delay
        if venue == "cloud":
            return self.cloud_delay
        raise ConfigurationError(f"unknown venue {venue!r}")

    def exposure_window(self, venue: str) -> float:
        """Time during which a block from ``venue`` can be out-raced by a
        zero-delay (edge) block."""
        return max(self.delay(venue) - self.edge_delay, 0.0)
