"""PoW blockchain substrate: blocks, chains, simulated proof-of-work,
propagation delays, fork-rate model, and the mining simulators that
mechanistically validate the paper's winning-probability expressions."""

from .block import GENESIS_PARENT, Block, BlockHeader
from .chain import Blockchain, ChainStats, UnknownParentError
from .difficulty import (DifficultyAdjuster, EpochRecord, RetargetPolicy,
                         simulate_retargeting)
from .forks import BITCOIN_COLLISION_RATE, ForkModel
from .node import MinerNode
from .pow import Difficulty, PowOracle
from .propagation import PropagationModel
from .simulator import (EventDrivenResult, EventDrivenSimulator,
                        RoundSimulator, RoundTally)
from .transactions import (FeeSimulationResult, Mempool, Transaction,
                           TxArrivalProcess, simulate_fee_revenue)

__all__ = [
    "GENESIS_PARENT",
    "Block",
    "BlockHeader",
    "Blockchain",
    "ChainStats",
    "UnknownParentError",
    "DifficultyAdjuster",
    "EpochRecord",
    "RetargetPolicy",
    "simulate_retargeting",
    "BITCOIN_COLLISION_RATE",
    "ForkModel",
    "MinerNode",
    "Difficulty",
    "PowOracle",
    "PropagationModel",
    "EventDrivenResult",
    "EventDrivenSimulator",
    "RoundSimulator",
    "RoundTally",
    "FeeSimulationResult",
    "Mempool",
    "Transaction",
    "TxArrivalProcess",
    "simulate_fee_revenue",
]
