"""Miner nodes: identity, purchased computing power, and reward ledger."""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["MinerNode"]


@dataclass
class MinerNode:
    """One mobile miner participating in the simulated network.

    Attributes:
        miner_id: Stable index of the miner.
        edge_units: Computing units purchased from the ESP (``e_i``).
        cloud_units: Computing units purchased from the CSP (``c_i``).
        blocks_won: Count of canonical blocks credited to this miner.
        blocks_orphaned: Count of this miner's blocks that were orphaned.
        reward_earned: Total mining reward collected.
    """

    miner_id: int
    edge_units: float
    cloud_units: float
    blocks_won: int = 0
    blocks_orphaned: int = 0
    reward_earned: float = 0.0

    def __post_init__(self) -> None:
        if self.miner_id < 0:
            raise ConfigurationError("miner_id must be non-negative")
        if self.edge_units < 0 or self.cloud_units < 0:
            raise ConfigurationError("computing units must be non-negative")

    @property
    def total_units(self) -> float:
        """``e_i + c_i``."""
        return self.edge_units + self.cloud_units

    def credit(self, reward: float) -> None:
        """Record a canonical block win."""
        self.blocks_won += 1
        self.reward_earned += reward

    def orphan(self) -> None:
        """Record an orphaned block."""
        self.blocks_orphaned += 1

    def empirical_win_rate(self) -> float:
        """Observed share of rounds won (wins / attempts recorded)."""
        attempts = self.blocks_won + self.blocks_orphaned
        if attempts == 0:
            return 0.0
        return self.blocks_won / attempts
