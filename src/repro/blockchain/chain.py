"""Block-tree / longest-chain ledger with fork tracking.

Tracks the full tree of mined blocks, resolves the canonical chain by the
longest-chain rule (first-received tie-break, as in Bitcoin), and records
orphaned blocks — the quantity the fork-rate model ``β`` predicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..exceptions import ReproError
from .block import Block

__all__ = ["Blockchain", "ChainStats", "UnknownParentError"]


class UnknownParentError(ReproError, KeyError):
    """A block referenced a parent that is not in the tree."""


@dataclass
class ChainStats:
    """Aggregate statistics of a block tree.

    Attributes:
        total_blocks: All non-genesis blocks ever added.
        canonical_length: Height of the canonical tip.
        orphans: Blocks not on the canonical chain.
        fork_events: Heights at which more than one block exists.
    """

    total_blocks: int
    canonical_length: int
    orphans: int
    fork_events: int

    @property
    def orphan_rate(self) -> float:
        """Fraction of mined blocks that ended up orphaned — the empirical
        counterpart of the model fork rate ``β``."""
        if self.total_blocks == 0:
            return 0.0
        return self.orphans / self.total_blocks


class Blockchain:
    """A block tree with longest-chain canonicalization.

    Blocks are appended with :meth:`add`; the canonical tip is the highest
    block, ties broken by arrival order (first seen wins), matching the
    behaviour that makes propagation delay costly: a later-arriving block
    of equal height is orphaned.
    """

    def __init__(self) -> None:
        genesis = Block.genesis()
        self._genesis_hash = genesis.hash
        self._blocks: Dict[str, Block] = {genesis.hash: genesis}
        self._arrival: Dict[str, int] = {genesis.hash: 0}
        self._children: Dict[str, List[str]] = {genesis.hash: []}
        self._counter = 0
        self._tip = genesis

    @property
    def genesis(self) -> Block:
        return self._blocks[self._genesis_hash]

    @property
    def tip(self) -> Block:
        """Canonical chain tip."""
        return self._tip

    @property
    def height(self) -> int:
        return self._tip.height

    def __contains__(self, block_hash: str) -> bool:
        return block_hash in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_hash: str) -> Block:
        try:
            return self._blocks[block_hash]
        except KeyError:
            raise UnknownParentError(block_hash) from None

    def add(self, block: Block) -> bool:
        """Insert a block; returns True if it became the canonical tip.

        Raises:
            UnknownParentError: If the parent is not in the tree.
            ValueError: If the block does not verify against its parent.
        """
        if block.hash in self._blocks:
            return False
        parent = self.get(block.header.parent_hash)
        if not block.verify_link(parent):
            raise ValueError(
                f"block {block.hash[:12]} does not extend its parent")
        self._counter += 1
        self._blocks[block.hash] = block
        self._arrival[block.hash] = self._counter
        self._children.setdefault(block.hash, [])
        self._children[parent.hash].append(block.hash)
        if block.height > self._tip.height:
            self._tip = block
            return True
        return False

    def canonical_chain(self) -> List[Block]:
        """Canonical chain from genesis to the tip (inclusive)."""
        chain: List[Block] = []
        cursor: Optional[Block] = self._tip
        while cursor is not None:
            chain.append(cursor)
            parent_hash = cursor.header.parent_hash
            cursor = self._blocks.get(parent_hash)
        chain.reverse()
        return chain

    def is_canonical(self, block_hash: str) -> bool:
        """Whether the given block lies on the canonical chain."""
        canonical = {b.hash for b in self.canonical_chain()}
        return block_hash in canonical

    def winners(self) -> List[int]:
        """Miner ids of canonical (reward-winning) non-genesis blocks."""
        return [b.miner_id for b in self.canonical_chain()
                if b.miner_id >= 0]

    def stats(self) -> ChainStats:
        """Aggregate fork/orphan statistics."""
        canonical = {b.hash for b in self.canonical_chain()}
        total = len(self._blocks) - 1  # exclude genesis
        orphans = sum(1 for h, b in self._blocks.items()
                      if b.miner_id >= 0 and h not in canonical)
        heights: Dict[int, int] = {}
        for b in self._blocks.values():
            if b.miner_id >= 0:
                heights[b.height] = heights.get(b.height, 0) + 1
        fork_events = sum(1 for count in heights.values() if count > 1)
        return ChainStats(total_blocks=total,
                          canonical_length=self._tip.height,
                          orphans=orphans, fork_events=fork_events)

    def validate(self) -> bool:
        """Full structural validation of every stored block."""
        for block in self._blocks.values():
            if block.miner_id < 0:
                continue
            parent = self._blocks.get(block.header.parent_hash)
            if parent is None or not block.verify_link(parent):
                return False
        return True

    def common_ancestor(self, hash_a: str, hash_b: str) -> Block:
        """Lowest common ancestor of two blocks in the tree.

        The genesis block is an ancestor of everything, so an LCA always
        exists for blocks that are in the tree.
        """
        ancestors = set()
        cursor: Optional[Block] = self.get(hash_a)
        while cursor is not None:
            ancestors.add(cursor.hash)
            cursor = self._blocks.get(cursor.header.parent_hash)
        cursor = self.get(hash_b)
        while cursor is not None:
            if cursor.hash in ancestors:
                return cursor
            cursor = self._blocks.get(cursor.header.parent_hash)
        raise UnknownParentError(
            "blocks share no ancestor; the tree is corrupt")

    def reorg_depth(self, old_tip_hash: str) -> int:
        """Blocks abandoned when the canonical tip moved from
        ``old_tip_hash`` to the current tip (0 if it is an ancestor).

        The standard safety metric: how many confirmations a fork
        invalidated.
        """
        old_tip = self.get(old_tip_hash)
        ancestor = self.common_ancestor(old_tip.hash, self._tip.hash)
        return old_tip.height - ancestor.height
